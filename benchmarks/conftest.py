"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figures (or inline claims)
and prints a paper-vs-measured table.  ``pytest benchmarks/
--benchmark-only`` therefore doubles as the reproduction report;
``bench_output.txt`` in the repo root is its captured output.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment with a single timed round.

    The experiments are deterministic end-to-end sweeps (seconds each), so
    one round measures them faithfully without multiplying the wall time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
