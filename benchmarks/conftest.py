"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figures (or inline claims)
and prints a paper-vs-measured table.  ``pytest benchmarks/
--benchmark-only`` therefore doubles as the reproduction report;
``bench_output.txt`` in the repo root is its captured output.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Every benchmark carries the ``bench`` marker.

    ``testpaths`` keeps tier-1 runs out of this directory already; the
    marker lets explicit invocations filter with ``-m bench`` /
    ``-m 'not bench'`` when mixing test paths.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment with a single timed round.

    The experiments are deterministic end-to-end sweeps (seconds each), so
    one round measures them faithfully without multiplying the wall time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
