"""§4 design-space ablations.

Quantifies the design choices DESIGN.md calls out:

1. Reflection-coefficient resolution per element (§4.1): the paper
   conjectures "around eight phase values along with the off state may
   provide sufficient resolution".
2. Search strategy (§4.2): solution quality vs number of over-the-air
   measurements, against the exhaustive-sweep optimum.
3. Passive vs active elements (§2/§4.1): only active elements move
   line-of-sight links.
4. Array size: more elements, more control.
"""

import numpy as np
import pytest

from repro.analysis.reporting import ReportTable, format_table
from repro.core import (
    ExhaustiveSearch,
    GeneticSearch,
    GreedyCoordinateDescent,
    MinSnrObjective,
    PressArray,
    RandomSearch,
    SimulatedAnnealing,
    active_state,
    omni_element,
    phase_shifter_states,
)
from repro.experiments import (
    StudyConfig,
    build_los_setup,
    build_nlos_setup,
    used_subcarrier_mask,
)
from repro.sdr.testbed import Testbed

MASK_SLICE = None  # set lazily


def _setup_with_states(placement_seed, states, config=StudyConfig()):
    """The NLoS study setup with every element's state set replaced."""
    setup = build_nlos_setup(placement_seed, config)
    elements = [
        omni_element(
            element.position,
            name=element.name,
            gain_dbi=config.element_gain_dbi,
            states=states,
        )
        for element in setup.array.elements
    ]
    array = PressArray.from_elements(elements)
    testbed = Testbed(scene=setup.testbed.scene, array=array)
    return setup, testbed, array


def _best_min_snr(setup, testbed, array):
    """Exhaustive-search optimum of the min-SNR objective (noiseless)."""
    mask = used_subcarrier_mask()

    def score(configuration):
        obs = testbed.measure_csi(setup.tx_device, setup.rx_device, configuration)
        return float(obs.snr_db[mask].min())

    result = ExhaustiveSearch().search(array.configuration_space(), score)
    return result.best_score


def test_bench_ablation_phase_resolution(once):
    """§4.1: min-SNR gain vs number of phase states per element."""

    def sweep_resolutions():
        rows = {}
        for num_phases in (2, 4, 8, 16):
            states = phase_shifter_states(num_phases, include_off=True)
            scores = []
            for seed in (0, 2, 4):
                setup, testbed, array = _setup_with_states(seed, states)
                scores.append(_best_min_snr(setup, testbed, array))
            rows[num_phases] = float(np.mean(scores))
        return rows

    scores = once(sweep_resolutions)

    rows = [("phase states (+off)", "best min-SNR [dB]", "gain over 2 states")]
    for num_phases, score in scores.items():
        rows.append(
            (str(num_phases), f"{score:.2f}", f"{score - scores[2]:+.2f} dB")
        )
    print()
    print("Ablation — reflection-coefficient resolution (§4.1)")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="Phase-resolution conjecture")
    gain_2_to_8 = scores[8] - scores[2]
    gain_8_to_16 = scores[16] - scores[8]
    table.add(
        "more phase states help",
        "finer phases raise achievable effect",
        f"2->8 states: {gain_2_to_8:+.2f} dB",
        scores[8] >= scores[2],
    )
    table.add(
        "~8 states suffice (diminishing returns)",
        "8 + off 'may provide sufficient resolution'",
        f"8->16 states: {gain_8_to_16:+.2f} dB",
        gain_8_to_16 <= max(gain_2_to_8, 0.5),
    )
    print(table.render())
    assert table.all_hold()


def test_bench_ablation_search_strategies(once):
    """§4.2: heuristic searches vs the exhaustive M^N sweep."""

    def run_searchers():
        setup = build_nlos_setup(4)
        mask = used_subcarrier_mask()

        def score(configuration):
            obs = setup.testbed.measure_csi(
                setup.tx_device, setup.rx_device, configuration
            )
            return float(obs.snr_db[mask].min())

        space = setup.array.configuration_space()
        searchers = {
            "exhaustive": ExhaustiveSearch(),
            "greedy": GreedyCoordinateDescent(restarts=2),
            "annealing": SimulatedAnnealing(budget=40, seed=1),
            "genetic": GeneticSearch(population=8, generations=4, seed=1),
            "random-16": RandomSearch(budget=16, seed=1),
        }
        return {
            name: searcher.search(space, score) for name, searcher in searchers.items()
        }

    results = once(run_searchers)

    optimum = results["exhaustive"].best_score
    rows = [("searcher", "measurements", "best min-SNR [dB]", "optimality gap")]
    for name, result in results.items():
        rows.append(
            (
                name,
                str(result.num_evaluations),
                f"{result.best_score:.2f}",
                f"{optimum - result.best_score:.2f} dB",
            )
        )
    print()
    print("Ablation — search strategies (§4.2)")
    print(format_table(rows, header_rule=True))

    greedy = results["greedy"]
    assert greedy.num_evaluations < results["exhaustive"].num_evaluations
    assert greedy.best_score >= optimum - 3.0
    # Every heuristic at least matches a single random draw's expectation.
    assert all(r.best_score > optimum - 15.0 for r in results.values())


def test_bench_ablation_passive_vs_active(once):
    """§2/§4.1: active elements reach line-of-sight links; passive cannot."""

    def run_both():
        mask = used_subcarrier_mask()
        passive_states = phase_shifter_states(4, include_off=True)
        active_states = tuple(
            active_state(gain_db=25.0, phase_rad=2 * np.pi * k / 4) for k in range(4)
        ) + (passive_states[-1],)
        swings = {}
        for tag, states in (("passive", passive_states), ("active", active_states)):
            setup = build_los_setup(0)
            elements = [
                omni_element(e.position, name=e.name, gain_dbi=0.0, states=states)
                for e in setup.array.elements
            ]
            array = PressArray.from_elements(elements)
            testbed = Testbed(scene=setup.testbed.scene, array=array)
            snrs = np.array(
                [
                    testbed.measure_csi(
                        setup.tx_device, setup.rx_device, config
                    ).snr_db[mask]
                    for config in array.configuration_space().all_configurations()
                ]
            )
            swings[tag] = float((snrs.max(axis=0) - snrs.min(axis=0)).max())
        return swings

    swings = once(run_both)

    table = ReportTable(title="Ablation — passive vs active elements on a LoS link")
    table.add(
        "passive elements on LoS",
        "< 2 dB effect",
        f"{swings['passive']:.2f} dB",
        swings["passive"] < 2.0,
    )
    table.add(
        "active elements on LoS",
        "active radios can alter the channel (PhyCloak)",
        f"{swings['active']:.1f} dB",
        swings["active"] > 5.0,
    )
    print()
    print(table.render())
    assert table.all_hold()


def test_bench_ablation_array_size(once):
    """More elements give the controller more leverage over the channel."""

    def sweep_sizes():
        mask = used_subcarrier_mask()
        results = {}
        for num_elements in (1, 2, 3):
            config = StudyConfig(num_elements=num_elements)
            setup = build_nlos_setup(4, config)
            snrs = np.array(
                [
                    setup.testbed.measure_csi(
                        setup.tx_device, setup.rx_device, c
                    ).snr_db[mask]
                    for c in setup.array.configuration_space().all_configurations()
                ]
            )
            results[num_elements] = float((snrs.max(axis=0) - snrs.min(axis=0)).max())
        return results

    swings = once(sweep_sizes)

    rows = [("elements", "configs", "max per-subcarrier swing [dB]")]
    for n, swing in swings.items():
        rows.append((str(n), str(4**n), f"{swing:.1f}"))
    print()
    print("Ablation — array size")
    print(format_table(rows, header_rule=True))

    assert swings[3] > swings[1]
