"""§2 timing / §4.2 control-plane reproduction.

The paper's constraints: the measure -> search -> actuate loop must finish
within the channel coherence time (~89 ms stationary, ~7 ms at running
speed), and packet-timescale switching wants 1-2 ms reconfiguration.  This
benchmark puts numbers behind each candidate control medium and checks the
prototype's own 5-second sweep against them.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.control.latency import compare_links
from repro.control.links import (
    sub_ghz_ism_link,
    ultrasound_link,
    wifi_inband_link,
    wired_bus_link,
)
from repro.em.channel import coherence_time_s
from repro.sdr.timesync import SweepTiming


def test_bench_control_plane_latency(once):
    links = [wired_bus_link(), sub_ghz_ism_link(), wifi_inband_link(), ultrasound_link()]
    reports = once(compare_links, links, 16)

    rows = [
        (
            "medium",
            "actuation",
            "trials @0.5 mph",
            "trials @6 mph",
            "packet-scale",
            "in-band",
        )
    ]
    for report in reports:
        rows.append(
            (
                report.link_name,
                f"{report.actuation_s * 1e3:.2f} ms",
                str(report.budget_stationary),
                str(report.budget_running),
                "yes" if report.packet_timescale_capable else "no",
                "yes" if report.interferes_with_data_plane else "no",
            )
        )
    print()
    print("Control-plane latency budgets (16-element array)")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="§2 timing constraints")
    coherence_stationary = coherence_time_s(0.5)
    coherence_running = coherence_time_s(6.0)
    table.add(
        "coherence time, almost stationary (0.5 mph)",
        "ca. 80 ms",
        f"{coherence_stationary * 1e3:.0f} ms",
        60e-3 <= coherence_stationary <= 120e-3,
    )
    table.add(
        "coherence time, running speed (6 mph)",
        "ca. 6 ms",
        f"{coherence_running * 1e3:.1f} ms",
        4e-3 <= coherence_running <= 10e-3,
    )
    prototype = SweepTiming()  # 64 configs in ~5 s
    table.add(
        "prototype 64-config sweep vs coherence",
        "5 s >> coherence (needs 10-sweep averaging)",
        f"{prototype.sweep_duration_s:.1f} s, exceeds={prototype.exceeds_coherence(coherence_stationary)}",
        prototype.exceeds_coherence(coherence_stationary),
    )
    by_name = {report.link_name: report for report in reports}
    # A greedy coordinate-descent sweep over 16 four-state elements costs
    # 16 x 3 + 1 = 49 over-the-air trials (§4.2's pruning heuristic).
    greedy_sweep_cost = 16 * 3 + 1
    table.add(
        "a deployable medium fits a greedy sweep at 0.5 mph",
        "closed-loop optimisation within coherence",
        f"wired budget {by_name['wired bus'].budget_stationary} trials"
        f" >= {greedy_sweep_cost}",
        by_name["wired bus"].budget_stationary >= greedy_sweep_cost,
    )
    table.add(
        "only in-band Wi-Fi control disturbs the data plane",
        "control plane must not interfere (§2)",
        ", ".join(r.link_name for r in reports if r.interferes_with_data_plane),
        sum(r.interferes_with_data_plane for r in reports) == 1,
    )
    print(table.render())
    assert table.all_hold()
