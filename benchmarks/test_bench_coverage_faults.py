"""§1's first question measured room-wide, plus array maintenance (§2).

* Coverage: a grid of client positions behind the blocker, before/after
  PRESS — dead-zone elimination as a site survey would report it.
* Maintenance: stuck/dead elements injected; the 2-soundings-per-element
  detector finds them and re-optimisation recovers what the surviving
  elements allow.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.core import (
    ArrayConfiguration,
    ExhaustiveSearch,
    detect_unresponsive_elements,
    with_faults,
)
from repro.experiments import build_nlos_setup, run_coverage, used_subcarrier_mask
from repro.sdr.testbed import Testbed


def test_bench_coverage_map(once):
    coverage = once(run_coverage, grid_shape=(5, 7))

    rows = [("map", "worst spot [dB]", "mean [dB]", "below 20 dB")]
    for which in ("baseline", "joint", "per-position"):
        grid = {
            "baseline": coverage.baseline_db,
            "joint": coverage.joint_db,
            "per-position": coverage.per_position_db,
        }[which]
        rows.append(
            (
                which,
                f"{coverage.worst_db(which):.1f}",
                f"{grid.mean():.1f}",
                f"{100 * coverage.fraction_below(20.0, which):.0f}%",
            )
        )
    print()
    print("Coverage over a 5x7 client grid behind the blocker")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="§1: dead-zone elimination, room-wide")
    gain = coverage.worst_db("joint") - coverage.worst_db("baseline")
    table.add(
        "one joint configuration lifts the worst spot",
        "dead zones are a multipath artefact PRESS can move",
        f"{coverage.worst_db('baseline'):.1f} -> {coverage.worst_db('joint'):.1f} dB "
        f"({gain:+.1f} dB)",
        gain > 2.0,
    )
    table.add(
        "per-position switching adds more on top",
        "the §2 agile extreme",
        f"worst {coverage.worst_db('per-position'):.1f} dB",
        coverage.worst_db("per-position") >= coverage.worst_db("joint") - 1e-9,
    )
    print(table.render())
    assert table.all_hold()


def test_bench_fault_tolerance(once):
    def run():
        setup = build_nlos_setup(2)
        mask = used_subcarrier_mask()

        def best_score(array):
            testbed = Testbed(scene=setup.testbed.scene, array=array)

            def score(configuration):
                return float(
                    testbed.measure_csi(
                        setup.tx_device, setup.rx_device, configuration
                    ).snr_db[mask].min()
                )

            return ExhaustiveSearch().search(
                array.configuration_space(), score
            ).best_score

        healthy_score = best_score(setup.array)
        faulty = with_faults(setup.array, stuck={0: 2}, dead=[1])
        faulty_score = best_score(faulty)
        testbed = Testbed(scene=setup.testbed.scene, array=faulty)

        def measure_cfr(configuration):
            return testbed.channel(
                setup.tx_device, setup.rx_device, configuration
            ).cfr()[mask]

        detected = detect_unresponsive_elements(faulty, measure_cfr)
        soundings = 2 * faulty.num_elements
        return healthy_score, faulty_score, detected, soundings

    healthy_score, faulty_score, detected, soundings = once(run)

    table = ReportTable(title="§2 maintenance: faults detected and tolerated")
    table.add(
        "maintenance sweep finds the broken elements",
        "stuck switch + dead antenna injected",
        f"detected elements {detected} with {soundings} soundings",
        detected == [0, 1],
    )
    table.add(
        "re-optimisation degrades gracefully",
        "surviving elements still searched",
        f"best min-SNR {healthy_score:.1f} -> {faulty_score:.1f} dB",
        faulty_score > healthy_score - 15.0,
    )
    print()
    print(table.render())
    assert table.all_hold()
