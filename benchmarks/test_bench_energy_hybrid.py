"""§4.1 deployment economics: energy budgets and tiered grouping.

"Power issues for the active elements could be addressed with energy
harvesting devices.  Further, we might divide the elements into groups ...
analogous to how Hekaton groups antennas."  This benchmark prices passive
vs active elements against harvesting income, and measures how much search
quality tiered grouping trades for its exponentially smaller space.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.control.energy import (
    ElementPowerModel,
    EnergyBudget,
    indoor_light_harvester,
)
from repro.core import (
    ExhaustiveSearch,
    GroupedConfigurationSpace,
    PressArray,
    omni_element,
    tiered_groups,
)
from repro.em.geometry import Point
from repro.experiments import StudyConfig, build_nlos_setup, used_subcarrier_mask
from repro.sdr.testbed import Testbed


def test_bench_energy_budgets(once):
    def run():
        harvester = indoor_light_harvester(area_cm2=25.0)
        passive = ElementPowerModel()
        active = ElementPowerModel(active_w=100e-3)
        rows = []
        for name, model, duty in (
            ("passive, idle", passive, 0.0),
            ("passive, 100 switches/s", passive, 0.0),
            ("active, 10% duty", active, 0.1),
            ("active, 50% duty", active, 0.5),
        ):
            rate = 100.0 if "100" in name else 1.0
            budget = EnergyBudget(element=model, harvester=harvester)
            rows.append(
                (
                    name,
                    budget.is_sustainable(rate, duty),
                    budget.lifetime_s(rate, duty),
                    budget.max_sustainable_switch_rate(duty),
                )
            )
        return rows

    rows = once(run)

    printable = [("element / workload", "sustainable", "battery lifetime", "max switch rate")]
    for name, sustainable, lifetime, rate in rows:
        lifetime_text = "inf" if lifetime == float("inf") else f"{lifetime / 60:.1f} min"
        printable.append(
            (
                name,
                "yes" if sustainable else "no",
                lifetime_text,
                f"{rate:.0f}/s" if rate != float("inf") else "inf",
            )
        )
    print()
    print("Energy budgets — 25 cm^2 indoor-light harvester per element")
    print(format_table(printable, header_rule=True))

    table = ReportTable(title="§4.1 energy-harvesting claim")
    passive_ok = rows[0][1] and rows[1][1]
    active_ok = not rows[3][1]
    table.add(
        "passive elements run on harvested light",
        "harvesting addresses power issues",
        "sustainable at 100 switches/s",
        passive_ok,
    )
    table.add(
        "continuously-active elements cannot",
        "actives are 'relatively expensive and power-hungry' (§2)",
        f"50% duty drains the battery in {rows[3][2] / 60:.0f} min",
        active_ok,
    )
    print(table.render())
    assert table.all_hold()


def test_bench_tiered_grouping(once):
    def run():
        # A 6-element array: raw space 4^6 = 4096; grouped (3 groups of 2,
        # 1 off + up to 3 profiles each) = 4^3 = 64.
        setup = build_nlos_setup(2, StudyConfig())
        base = setup.array.elements[0].position
        elements = [
            omni_element(
                Point(base.x + 0.35 * i, base.y + 0.15 * (i % 2)),
                name=f"e{i}",
                gain_dbi=-1.5,
            )
            for i in range(6)
        ]
        array = PressArray.from_elements(elements)
        testbed = Testbed(scene=setup.testbed.scene, array=array)
        mask = used_subcarrier_mask()

        def min_snr(config):
            observation = testbed.measure_csi(
                setup.tx_device, setup.rx_device, config
            )
            return float(observation.snr_db[mask].min())

        groups = tiered_groups(array, group_size=2)
        grouped = GroupedConfigurationSpace(array, groups)
        grouped_best = max(
            (min_snr(config) for config in grouped.all_configurations()),
        )
        grouped_cost = grouped.size
        # Raw-space reference: greedy coordinate descent (full enumeration
        # of 4096 would dominate the benchmark run time).
        from repro.core import GreedyCoordinateDescent

        raw = GreedyCoordinateDescent(restarts=2).search(
            array.configuration_space(), min_snr
        )
        return grouped_best, grouped_cost, raw.best_score, raw.num_evaluations, array

    grouped_best, grouped_cost, raw_best, raw_cost, array = once(run)

    table = ReportTable(title="Hekaton-style tiered grouping (6-element array)")
    table.add(
        "grouped space is exponentially smaller",
        "4^3 decisions vs 4^6 raw configurations",
        f"{grouped_cost} vs {array.configuration_space().size}",
        grouped_cost * 16 <= array.configuration_space().size,
    )
    table.add(
        "grouping keeps most of the achievable quality",
        "diversity within groups, multiplexing across",
        f"grouped {grouped_best:.2f} dB vs raw-search {raw_best:.2f} dB",
        grouped_best >= raw_best - 4.0,
    )
    print()
    print(table.render())
    print(f"(grouped sweep: {grouped_cost} soundings; raw greedy: {raw_cost})")
    assert table.all_hold()
