"""Figure 4 reproduction: per-subcarrier SNR, largest-difference config pairs.

Paper (§3.2.1): eight random element placements; for each, the two
configurations with the largest single-subcarrier SNR difference are
plotted.  Headlines: largest mean-SNR change 18.6 dB; largest change within
one repetition 26 dB.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.experiments import run_fig4


def test_bench_fig4_link_enhancement(once):
    result = once(run_fig4, num_placements=8, repetitions=10)

    table = ReportTable(title="Figure 4 — link enhancement (8 placements x 64 configs x 10 reps)")
    mean_change = result.largest_mean_change_db
    single_rep = result.largest_single_rep_change_db
    table.add(
        "largest mean-SNR change on a subcarrier",
        "18.6 dB",
        f"{mean_change:.1f} dB",
        10.0 <= mean_change <= 40.0,
    )
    table.add(
        "largest single-repetition SNR change",
        "26 dB",
        f"{single_rep:.1f} dB",
        15.0 <= single_rep <= 55.0,
    )
    table.add(
        "single-rep change exceeds mean change",
        "26 > 18.6",
        f"{single_rep:.1f} > {mean_change:.1f}",
        single_rep > mean_change,
    )
    print()
    print(table.render())

    rows = [("placement", "pair (low)", "pair (high)", "gap [dB]")]
    for placement in result.placements:
        rows.append(
            (
                chr(ord("a") + placement.placement_seed),
                placement.label_low,
                placement.label_high,
                f"{placement.mean_gap_db:.1f}",
            )
        )
    print(format_table(rows, header_rule=True))

    assert table.all_hold()
    # Every placement must show a meaningful configuration effect (the
    # paper's panels all have visibly separated curves).
    assert all(p.mean_gap_db > 3.0 for p in result.placements)
