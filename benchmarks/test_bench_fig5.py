"""Figure 5 reproduction: CCDF of null movement between configuration pairs.

Paper (§3.2.1): at placement (e), over all 64^2 configuration pairs that
exhibit a null, most pairs move the most-significant null by 0-1
subcarriers, a few by more than three; the abstract headlines "shifting
frequency 'nulls' by nine Wi-Fi subcarriers".
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.experiments import run_fig5


def test_bench_fig5_null_movement(once):
    result = once(run_fig5, repetitions=10)

    pooled = result.pooled
    frac_le_1 = float(np.mean(pooled <= 1)) if pooled.size else 1.0
    frac_gt_3 = result.fraction_moving_more_than(3)
    table = ReportTable(title="Figure 5 — null movement CCDF (placement e, 10 reps)")
    table.add(
        "movement mass concentrated at 0-1 subcarriers",
        "majority at 0-1",
        f"{100 * frac_le_1:.0f}% at 0-1",
        frac_le_1 > 0.2,
    )
    frac_gt_8 = result.fraction_moving_more_than(8)
    table.add(
        "CCDF decays steeply toward the tail",
        "10^0 -> 10^-2 over the x-range",
        f"P(>1)={result.fraction_moving_more_than(1):.2f},"
        f" P(>8)={frac_gt_8:.3f}",
        frac_gt_8 < 0.2 * max(result.fraction_moving_more_than(1), 1e-9),
    )
    table.add(
        "a few pairs move it > 3 subcarriers",
        "small tail",
        f"{100 * frac_gt_3:.0f}% > 3",
        0.0 < frac_gt_3 < 0.5,
    )
    table.add(
        "maximum observed movement",
        "~9 subcarriers",
        f"{result.max_movement} subcarriers",
        5 <= result.max_movement <= 18,
    )
    print()
    print(table.render())

    # CCDF series (pooled), the Figure 5 axes.
    rows = [("movement >", "CCDF")]
    for threshold in (0, 1, 2, 3, 5, 8):
        rows.append((str(threshold), f"{result.fraction_moving_more_than(threshold):.3f}"))
    print(format_table(rows, header_rule=True))

    assert table.all_hold()
    # Per-repetition curves exist (the paper draws one per repetition).
    assert len(result.ccdf_curves()) >= 5
