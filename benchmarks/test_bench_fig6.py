"""Figure 6 reproduction: min-SNR change CCDF and min-SNR CCDF.

Paper (§3.2.1): "Around 38% of the configuration changes cause a 10 dB SNR
change on at least one subcarrier, and less than 9% of the configurations
show a worst subcarrier channel gain below 20 dB."
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.analysis.stats import EmpiricalDistribution
from repro.experiments import run_fig6


def test_bench_fig6_snr_distributions(once):
    result = once(run_fig6, repetitions=10)

    table = ReportTable(title="Figure 6 — min-SNR distributions (placement e, 10 reps)")
    frac10 = result.fraction_pairs_10db_change
    below20 = result.fraction_configs_below_20db
    table.add(
        "config changes causing >=10 dB on some subcarrier",
        "~38%",
        f"{100 * frac10:.0f}%",
        0.05 <= frac10 <= 0.6,
    )
    table.add(
        "configs with worst subcarrier below 20 dB",
        "< 9%",
        f"{100 * below20:.0f}%",
        below20 <= 0.25,
    )
    print()
    print(table.render())

    # Left panel: CCDF of |delta min-SNR| between config pairs.
    dist = EmpiricalDistribution.from_samples(result.min_snr_change_pairs)
    rows = [("min-SNR change >", "CCDF")]
    for threshold in (2.0, 5.0, 10.0, 15.0, 20.0):
        rows.append((f"{threshold:.0f} dB", f"{dist.ccdf_at(threshold):.3f}"))
    print(format_table(rows, header_rule=True))

    # Right panel: CCDF of per-config min SNR.
    minima = np.concatenate(result.min_snr_per_trial)
    dist_min = EmpiricalDistribution.from_samples(minima)
    rows = [("min SNR >", "CCDF")]
    for threshold in (8.0, 15.0, 22.0, 29.0, 36.0):
        rows.append((f"{threshold:.0f} dB", f"{dist_min.ccdf_at(threshold):.3f}"))
    print(format_table(rows, header_rule=True))

    assert table.all_hold()
    # The change distribution must have a heavy tail (some pairs barely
    # differ, some differ by tens of dB), as in the paper's left panel.
    assert dist.ccdf_at(1.0) > dist.ccdf_at(10.0)
    assert result.min_snr_change_pairs.max() > 10.0
