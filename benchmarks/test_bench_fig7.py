"""Figure 7 reproduction: opposite frequency selectivity (harmonization).

Paper (§3.2.2): two USRP N210s, two 4-phase PRESS elements with no
absorptive load; "two of the PRESS element configurations exhibit clear and
opposite frequency selectivity; each one favors its own half of the band."
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.experiments import run_fig7
from repro.net.harmonization import HarmonizationPlan, best_partition, partitioned_sum_rate_bits


def test_bench_fig7_harmonization(once):
    result = once(run_fig7)

    table = ReportTable(title="Figure 7 — network harmonization (2 elements x 4 phases)")
    table.add(
        "two configs with opposite selectivity",
        "each favours its own half-band",
        f"contrasts {result.contrast_a_db:+.1f} / {result.contrast_b_db:+.1f} dB",
        result.is_opposite,
    )
    table.add(
        "selectivity is clear (not noise)",
        "clearly separated curves",
        f"total contrast {result.total_contrast_db:.1f} dB",
        result.total_contrast_db >= 4.0,
    )
    print()
    print(table.render())

    rows = [("config", "lower-half mean SNR", "upper-half mean SNR")]
    half = result.snr_a.size // 2
    for label, snr in ((result.label_a, result.snr_a), (result.label_b, result.snr_b)):
        rows.append(
            (
                label,
                f"{np.mean(snr[:half]):.1f} dB",
                f"{np.mean(snr[half:]):.1f} dB",
            )
        )
    print(format_table(rows, header_rule=True))

    # Spectrum-partitioning payoff (the Figure 2 motivation): assigning each
    # network the half its configuration favours beats the swap.
    lower_lover = result.snr_a if result.contrast_a_db < 0 else result.snr_b
    upper_lover = result.snr_b if result.contrast_a_db < 0 else result.snr_a
    plan = HarmonizationPlan(boundary=half)
    matched = partitioned_sum_rate_bits(lower_lover, upper_lover, plan)
    swapped = partitioned_sum_rate_bits(upper_lover, lower_lover, plan)
    print(
        f"partitioned sum rate: matched {matched:.2f} vs swapped {swapped:.2f} bits/s/Hz"
    )

    assert table.all_hold()
    assert matched > swapped
