"""Figure 8 reproduction: 2x2 MIMO condition-number CDF per configuration.

Paper (§3.2.3): per-configuration CDFs of the channel-matrix condition
number across subcarriers, each from the mean of 50 channel measurements;
"particular PRESS configurations have a substantial impact"; abstract:
"changing the 2x2 MIMO channel condition number by 1.5 dB."
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.analysis.stats import EmpiricalDistribution
from repro.experiments import run_fig8


def test_bench_fig8_mimo_conditioning(once):
    result = once(run_fig8, measurements_per_config=50)

    gap = result.median_gap_db
    medians = result.medians_db
    table = ReportTable(title="Figure 8 — 2x2 MIMO conditioning (64 configs x 50 measurements)")
    table.add(
        "best-to-worst median condition number gap",
        "~1.5 dB",
        f"{gap:.2f} dB",
        0.7 <= gap <= 3.0,
    )
    table.add(
        "condition numbers in the Figure 8 x-range",
        "0-15 dB",
        f"{medians.min():.1f}-{medians.max():.1f} dB",
        medians.min() >= 0.0 and medians.max() <= 15.0,
    )
    print()
    print(table.render())

    best = result.best_configuration
    worst = result.worst_configuration
    rows = [("config", "median cond [dB]", "p10", "p90")]
    for index, tag in ((best, "best"), (worst, "worst")):
        dist = EmpiricalDistribution.from_samples(result.condition_db[index])
        rows.append(
            (
                f"{result.labels[index]} ({tag})",
                f"{dist.median():.2f}",
                f"{dist.quantile(0.1):.2f}",
                f"{dist.quantile(0.9):.2f}",
            )
        )
    print(format_table(rows, header_rule=True))

    assert table.all_hold()
    # The best and worst CDFs must be distinguishable across most of their
    # range, like the highlighted red/blue curves in the paper.
    best_dist = EmpiricalDistribution.from_samples(result.condition_db[best])
    worst_dist = EmpiricalDistribution.from_samples(result.condition_db[worst])
    assert worst_dist.median() > best_dist.median()
