"""Abstract headline numbers, aggregated across the figure experiments.

"Preliminary experiments demonstrate the efficacy of using passive elements
to change the wireless channel, shifting frequency 'nulls' by nine Wi-Fi
subcarriers, changing the 2x2 MIMO channel condition number by 1.5 dB, and
attenuating or enhancing signal strength by up to 26 dB."
"""

from repro.analysis.reporting import ReportTable
from repro.experiments import run_fig4, run_fig5, run_fig8


def test_bench_abstract_headlines(once):
    def run_all():
        fig4 = run_fig4(num_placements=8, repetitions=10)
        fig5 = run_fig5(repetitions=10)
        fig8 = run_fig8(measurements_per_config=50)
        return fig4, fig5, fig8

    fig4, fig5, fig8 = once(run_all)

    table = ReportTable(title="Abstract headlines — paper vs measured")
    table.add(
        "null shift",
        "9 subcarriers",
        f"{fig5.max_movement} subcarriers",
        5 <= fig5.max_movement <= 18,
    )
    table.add(
        "2x2 MIMO condition number change",
        "1.5 dB",
        f"{fig8.median_gap_db:.2f} dB",
        0.7 <= fig8.median_gap_db <= 3.0,
    )
    table.add(
        "signal attenuation/enhancement",
        "up to 26 dB",
        f"up to {fig4.largest_single_rep_change_db:.1f} dB",
        15.0 <= fig4.largest_single_rep_change_db <= 55.0,
    )
    print()
    print(table.render())
    assert table.all_hold()
