"""Multi-tenant joint optimisation benchmark: ``BENCH_joint.json``.

Three measurements pin the multi-link scaling story:

1. Delta-vs-callback joint scoring at N=256, L=3: a random flip sequence
   scored by the :class:`~repro.core.basis.MultiLinkDeltaEvaluator`
   (O(K·L) per flip) versus naively re-evaluating every link's full CFR
   (O(N·K·L) — what the callback path pays per probe).  Acceptance:
   >= 5x at N=256 (measured ~16x; the ratio grows with N), with
   per-flip aggregate agreement <= 1e-9.
2. The joint/hybrid strategies themselves on the wall-sized array with
   both delta-capable searchers — the runs the callback path cannot even
   enumerate (2^256 configurations).  Joint must land one shared
   configuration; recorded aggregate/worst/soundings feed the report.
3. Admission rate versus user count: tenants arrive one at a time at a
   :class:`~repro.core.tenancy.MultiTenantController` with floors set to
   their solo optimum minus 3 dB — the §2 graceful-degradation curve.

``REPRO_BENCH_SMOKE=1`` shrinks N and the user counts, skips the
acceptance assertions and leaves ``BENCH_joint.json`` untouched — the CI
tier-1 smoke mode.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import ReportTable
from repro.core import MultiLinkDeltaEvaluator, MultiTenantController
from repro.experiments import build_large_array_setup
from repro.experiments.large_array import make_searcher
from repro.experiments.multi_user import build_user_links

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_ELEMENTS = 32 if SMOKE else 256
NUM_LINKS = 3
NUM_FLIPS = 16 if SMOKE else 128
USER_COUNTS = (2, 3) if SMOKE else (2, 4, 8)
FLOOR_HEADROOM_DB = 3.0
DELTA_SPEEDUP_FLOOR = 5.0
PARITY_ATOL = 1e-9


def test_bench_joint(once):
    setup = build_large_array_setup(0, num_elements=N_ELEMENTS)
    links = build_user_links(setup, NUM_LINKS, placement_seed=0)
    evaluators = [link.evaluator for link in links]

    # -- 1. delta vs callback joint scoring -----------------------------
    space = evaluators[0].basis.space
    rng = np.random.default_rng(0)
    flips = []
    for _ in range(NUM_FLIPS):
        element = int(rng.integers(0, space.num_elements))
        flips.append(
            (element, int(rng.integers(0, space.state_counts[element])))
        )

    multi = MultiLinkDeltaEvaluator(evaluators)
    start = time.perf_counter()
    delta_scores = [multi.flip(element, state) for element, state in flips]
    delta_s = time.perf_counter() - start

    def _callback_path():
        configuration = multi.committed_configuration
        scores = []
        for element, state in flips:
            configuration = configuration.with_element_state(element, state)
            per_link = [evaluator(configuration) for evaluator in evaluators]
            scores.append(float(np.mean(per_link)))
        return scores

    multi.revert()
    start = time.perf_counter()
    callback_scores = once(_callback_path)
    callback_s = time.perf_counter() - start

    delta_speedup = callback_s / delta_s
    parity = float(
        np.max(np.abs(np.array(delta_scores) - np.array(callback_scores)))
    )

    # -- 2. joint strategies on the unenumerable array ------------------
    from repro.core.joint import optimize_hybrid, optimize_joint

    strategy_rows = []
    for name in ("greedy", "rfocus"):
        searcher = make_searcher(name, 0)
        start = time.perf_counter()
        joint = optimize_joint(links, searcher=searcher)
        joint_s = time.perf_counter() - start
        hybrid = optimize_hybrid(links, searcher=searcher)
        assert joint.num_distinct_configurations == 1
        strategy_rows.append(
            {
                "searcher": name,
                "joint_aggregate_db": joint.aggregate_score(links),
                "joint_worst_db": joint.worst_link_score(),
                "joint_soundings": joint.num_measurements,
                "joint_wall_s": joint_s,
                "hybrid_aggregate_db": hybrid.aggregate_score(links),
                "hybrid_distinct": hybrid.num_distinct_configurations,
                "hybrid_soundings": hybrid.num_measurements,
            }
        )

    # -- 3. admission rate vs user count --------------------------------
    admission_rows = []
    for count in USER_COUNTS:
        users = build_user_links(setup, count, placement_seed=0)
        controller = MultiTenantController(searcher=make_searcher("greedy", 1))
        admitted = 0
        for index, link in enumerate(users):
            solo = make_searcher("greedy", 2 + index).search_basis(
                link.evaluator.basis,
                link.evaluator.objective,
                tx_power_dbm=link.evaluator.tx_power_dbm,
                noise_figure_db=link.evaluator.noise_figure_db,
                mask=link.evaluator.mask,
            )
            decision = controller.admit(
                link, snr_floor_db=solo.best_score - FLOOR_HEADROOM_DB
            )
            admitted += int(decision.admitted)
        admission_rows.append(
            {
                "num_links": count,
                "admitted": admitted,
                "admission_rate": admitted / count,
                "total_measurements": controller.total_measurements,
            }
        )

    table = ReportTable(
        title=(
            f"Multi-tenant joint optimisation — N={N_ELEMENTS}, L={NUM_LINKS}"
            + (" [SMOKE]" if SMOKE else "")
        )
    )
    table.add(
        f"delta vs callback speedup ({NUM_FLIPS} joint probes)",
        f">= {DELTA_SPEEDUP_FLOOR:.0f}x",
        f"{delta_speedup:.0f}x "
        f"({1e3 * callback_s:.0f} -> {1e3 * delta_s:.1f} ms)",
        SMOKE or delta_speedup >= DELTA_SPEEDUP_FLOOR,
    )
    table.add(
        "delta vs callback |daggregate|",
        "<= 1e-9",
        f"{parity:.2e}",
        parity <= PARITY_ATOL,
    )
    for row in strategy_rows:
        table.add(
            f"{row['searcher']} joint (N={N_ELEMENTS})",
            "1 shared config",
            f"{row['joint_aggregate_db']:.1f} dB aggregate in "
            f"{row['joint_soundings']} soundings",
            True,
        )
        table.add(
            f"{row['searcher']} hybrid (N={N_ELEMENTS})",
            f"<= {NUM_LINKS} configs",
            f"{row['hybrid_distinct']} configs, "
            f"{row['hybrid_aggregate_db']:.1f} dB aggregate",
            row["hybrid_distinct"] <= NUM_LINKS,
        )
    for row in admission_rows:
        table.add(
            f"admission rate (L={row['num_links']}, "
            f"floor=solo-{FLOOR_HEADROOM_DB:.0f}dB)",
            "recorded",
            f"{100 * row['admission_rate']:.0f}% "
            f"({row['admitted']}/{row['num_links']}), "
            f"{row['total_measurements']} soundings",
            True,
        )
    print()
    print(table.render())

    if not SMOKE:
        payload = {
            "delta_vs_callback": {
                "num_elements": N_ELEMENTS,
                "num_links": NUM_LINKS,
                "num_flips": NUM_FLIPS,
                "callback_s": callback_s,
                "delta_s": delta_s,
                "speedup": delta_speedup,
                "speedup_floor": DELTA_SPEEDUP_FLOOR,
                "max_abs_aggregate_deviation": parity,
            },
            "strategies": strategy_rows,
            "admission_vs_user_count": admission_rows,
            "floor_headroom_db": FLOOR_HEADROOM_DB,
        }
        out = Path(__file__).resolve().parent.parent / "BENCH_joint.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")

    assert table.all_hold()
