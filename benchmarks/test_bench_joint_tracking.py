"""§2 extensions: joint multi-link optimisation and time-varying tracking.

Quantifies the two dynamics questions §2 raises: the agility-vs-
optimisation spectrum (per-link / hybrid / joint strategies) and how
re-optimisation policies fare when a person walks through the space.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.core import LinkObjective, MinSnrObjective, compare_strategies
from repro.experiments import build_nlos_setup, run_tracking, used_subcarrier_mask
from repro.sdr.device import warp_v3
from repro.em.geometry import Point


def test_bench_joint_multilink(once):
    def run():
        setup = build_nlos_setup(2)
        mask = used_subcarrier_mask()
        # Three clients scattered around the blocked region.
        offsets = [(0.0, 0.0), (0.5, 0.4), (-0.3, 0.6)]
        links = []
        for index, (dx, dy) in enumerate(offsets):
            rx = warp_v3(
                f"client-{index}",
                Point(
                    setup.rx_device.position.x + dx,
                    setup.rx_device.position.y + dy,
                ),
            )

            def measure(config, rx=rx):
                return setup.testbed.measure_csi(
                    setup.tx_device, rx, config
                ).snr_db[mask]

            links.append(
                LinkObjective(
                    name=f"link-{index}", measure=measure, objective=MinSnrObjective()
                )
            )
        results = compare_strategies(
            links, setup.array.configuration_space(), tolerance=2.0
        )
        return links, results

    links, results = once(run)

    rows = [("strategy", "aggregate [dB]", "worst link [dB]", "distinct configs", "soundings")]
    for name in ("per-link", "hybrid", "joint"):
        result = results[name]
        rows.append(
            (
                name,
                f"{result.aggregate_score(links):.2f}",
                f"{result.worst_link_score():.2f}",
                str(result.num_distinct_configurations),
                str(result.num_measurements),
            )
        )
    print()
    print("Joint multi-link optimisation — the §2 agility/optimisation spectrum")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="Agility vs optimisation")
    per_link = results["per-link"]
    joint = results["joint"]
    hybrid = results["hybrid"]
    table.add(
        "per-link quality >= joint quality",
        "dedicated configs can only help",
        f"{per_link.aggregate_score(links):.2f} vs {joint.aggregate_score(links):.2f} dB",
        per_link.aggregate_score(links) >= joint.aggregate_score(links) - 1e-9,
    )
    table.add(
        "joint needs no switching",
        "one configuration serves all links",
        f"{joint.num_distinct_configurations} configuration",
        joint.num_distinct_configurations == 1,
    )
    table.add(
        "hybrid sits between the extremes",
        "\"hybrid tradeoffs and dynamic strategies\"",
        f"{hybrid.num_distinct_configurations} configs, "
        f"{hybrid.aggregate_score(links):.2f} dB",
        joint.num_distinct_configurations
        <= hybrid.num_distinct_configurations
        <= per_link.num_distinct_configurations
        and hybrid.aggregate_score(links) >= joint.aggregate_score(links) - 1e-9,
    )
    print(table.render())
    assert table.all_hold()


def test_bench_tracking_policies(once):
    result = once(
        run_tracking,
        duration_s=30.0,
        step_s=0.5,
        reoptimize_interval_s=2.0,
        walker_speed_mph=1.0,
    )

    rows = [("policy", "mean min-SNR [dB]", "worst instant [dB]", "soundings")]
    for policy in ("static", "periodic", "model-based", "bandit"):
        rows.append(
            (
                policy,
                f"{result.mean_min_snr_db(policy):.2f}",
                f"{result.min_snr_db[policy].min():.1f}",
                str(result.measurements[policy]),
            )
        )
    print()
    print("Tracking a walking person — re-optimisation policies (30 s run)")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="Time-varying channel tracking")
    table.add(
        "periodic re-optimisation >= static",
        "adaptation tracks the walker",
        f"{result.mean_min_snr_db('periodic'):.2f} vs "
        f"{result.mean_min_snr_db('static'):.2f} dB",
        result.mean_min_snr_db("periodic") >= result.mean_min_snr_db("static") - 0.2,
    )
    savings = result.measurements["periodic"] / max(
        result.measurements["model-based"], 1
    )
    table.add(
        "model-based matches periodic at a fraction of the soundings",
        "identification beats sweeping",
        f"{result.mean_min_snr_db('model-based'):.2f} dB with {savings:.0f}x fewer",
        result.mean_min_snr_db("model-based")
        >= result.mean_min_snr_db("periodic") - 0.5
        and savings >= 4,
    )
    table.add(
        "one-sounding-per-step bandit trades quality for cost",
        "exploration is visible in the worst instants",
        f"{result.mean_min_snr_db('bandit'):.2f} dB mean",
        result.mean_min_snr_db("bandit") <= result.mean_min_snr_db("periodic"),
    )
    print(table.render())
    assert table.all_hold()
