"""RFocus-scale search benchmark: ``BENCH_largearray.json``.

Three measurements pin the scaling story:

1. Delta-scoring at N=1024: a random flip sequence scored incrementally
   (O(K) per flip) versus full re-evaluation (the O(N*K) per-candidate
   path a naive searcher pays).  Acceptance: >= 50x, with per-flip score
   agreement <= 1e-9.
2. Search quality at N=3: greedy coordinate descent and RFocus majority
   voting versus the vectorized exhaustive optimum.  Acceptance: within
   1 dB (the space is enumerable there, so ground truth is exact).
3. The wall-array sweep itself (N in {256, 1024}): SNR gain and
   soundings per scalable searcher, recorded for the report.

``REPRO_BENCH_SMOKE=1`` shrinks N, skips the acceptance assertions and
leaves ``BENCH_largearray.json`` untouched — the CI tier-1 smoke mode.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import ReportTable
from repro.core import (
    ArrayConfiguration,
    GreedyCoordinateDescent,
    MeanSnrObjective,
    RFocusMajoritySearch,
    exhaustive_argmax,
)
from repro.experiments import (
    build_large_array_setup,
    build_nlos_setup,
    run_large_array,
    used_subcarrier_mask,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_DELTA = 64 if SMOKE else 1024
NUM_FLIPS = 20 if SMOKE else 200
SWEEP_COUNTS = (48,) if SMOKE else (256, 1024)
DELTA_SPEEDUP_FLOOR = 50.0
QUALITY_GAP_DB = 1.0


def _evaluator(setup):
    basis = setup.testbed.basis_for(setup.tx_device, setup.rx_device)
    return basis.evaluator(
        MeanSnrObjective(),
        tx_power_dbm=setup.tx_device.tx_power_dbm,
        noise_figure_db=setup.rx_device.noise_figure_db,
        mask=used_subcarrier_mask(),
    )


def test_bench_large_array(once):
    # -- 1. delta vs full re-evaluation on the wall-sized array ---------
    setup = build_large_array_setup(0, num_elements=N_DELTA)
    evaluator = _evaluator(setup)
    space = evaluator.basis.space
    rng = np.random.default_rng(0)
    flips = []
    for _ in range(NUM_FLIPS):
        element = int(rng.integers(0, space.num_elements))
        flips.append(
            (element, int(rng.integers(0, space.state_counts[element])))
        )

    delta = evaluator.delta()
    start = time.perf_counter()
    delta_scores = [delta.flip(element, state) for element, state in flips]
    delta_s = time.perf_counter() - start

    def _full_path():
        configuration = ArrayConfiguration(tuple([0] * space.num_elements))
        scores = []
        for element, state in flips:
            configuration = configuration.with_element_state(element, state)
            scores.append(evaluator(configuration))
        return scores

    start = time.perf_counter()
    full_scores = once(_full_path)
    full_s = time.perf_counter() - start

    delta_speedup = full_s / delta_s
    score_deviation = float(
        np.max(np.abs(np.array(delta_scores) - np.array(full_scores)))
    )

    # -- 2. scalable searchers vs exhaustive ground truth at N=3 --------
    small = build_nlos_setup(0)
    small_basis = small.testbed.basis_for(small.tx_device, small.rx_device)
    kwargs = {
        "tx_power_dbm": small.tx_device.tx_power_dbm,
        "noise_figure_db": small.rx_device.noise_figure_db,
        "mask": used_subcarrier_mask(),
    }
    _, optimum_db = exhaustive_argmax(small_basis, MeanSnrObjective(), **kwargs)
    gaps = {}
    for name, searcher in (
        ("greedy", GreedyCoordinateDescent(seed=0)),
        ("rfocus", RFocusMajoritySearch(seed=0)),
    ):
        result = searcher.search_basis(small_basis, MeanSnrObjective(), **kwargs)
        gaps[name] = optimum_db - result.best_score

    # -- 3. the wall-array sweep (recorded, not asserted) ---------------
    sweep = run_large_array(
        element_counts=SWEEP_COUNTS, searchers=("greedy", "rfocus")
    )

    table = ReportTable(
        title=(
            f"RFocus-scale search — N={N_DELTA}, {NUM_FLIPS} flips"
            + (" [SMOKE]" if SMOKE else "")
        )
    )
    table.add(
        f"delta-scoring speedup (N={N_DELTA})",
        f">= {DELTA_SPEEDUP_FLOOR:.0f}x",
        f"{delta_speedup:.0f}x ({1e3 * full_s:.0f} -> {1e3 * delta_s:.1f} ms)",
        SMOKE or delta_speedup >= DELTA_SPEEDUP_FLOOR,
    )
    table.add(
        "delta vs full |dscore|",
        "<= 1e-9",
        f"{score_deviation:.2e}",
        score_deviation <= 1e-9,
    )
    for name, gap in gaps.items():
        table.add(
            f"{name} gap to exhaustive (N=3)",
            f"<= {QUALITY_GAP_DB:.0f} dB",
            f"{gap:.3f} dB",
            SMOKE or gap <= QUALITY_GAP_DB,
        )
    for cell in sweep.cells:
        table.add(
            f"{cell.searcher} gain (N={cell.num_elements})",
            "recorded",
            f"{cell.gain_db:+.1f} dB in {cell.soundings} soundings",
            True,
        )
    print()
    print(table.render())

    if not SMOKE:
        payload = {
            "delta_scoring": {
                "num_elements": N_DELTA,
                "num_flips": NUM_FLIPS,
                "full_s": full_s,
                "delta_s": delta_s,
                "speedup": delta_speedup,
                "speedup_floor": DELTA_SPEEDUP_FLOOR,
                "max_abs_score_deviation": score_deviation,
            },
            "quality_vs_exhaustive": {
                "num_elements": 3,
                "gap_bound_db": QUALITY_GAP_DB,
                "gaps_db": {name: float(gap) for name, gap in gaps.items()},
            },
            "wall_array_sweep": [
                {
                    "num_elements": cell.num_elements,
                    "searcher": cell.searcher,
                    "baseline_db": cell.baseline_db,
                    "best_db": cell.best_db,
                    "gain_db": cell.gain_db,
                    "soundings": cell.soundings,
                }
                for cell in sweep.cells
            ],
        }
        out = Path(__file__).resolve().parent.parent / "BENCH_largearray.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")

    assert table.all_hold()
