"""§3 line-of-sight control reproduction.

Paper: "the effect of the PRESS element configurations on the per-subcarrier
SNR is limited to less than 2 dB" with the direct path present; passive
arrays are "best suited to improving non-line-of-sight links".
"""

from repro.analysis.reporting import ReportTable
from repro.experiments import run_los_study


def test_bench_los_vs_nlos(once):
    result = once(run_los_study, repetitions=5)

    table = ReportTable(title="§3 LoS control — passive PRESS effect, LoS vs NLoS")
    table.add(
        "max per-subcarrier effect with LoS",
        "< 2 dB",
        f"{result.los_swing_db:.2f} dB",
        result.los_swing_db < 2.0,
    )
    table.add(
        "max effect with LoS blocked",
        "up to 26 dB",
        f"{result.nlos_swing_db:.1f} dB",
        result.nlos_swing_db > 8.0,
    )
    table.add(
        "passive PRESS suits NLoS links",
        "NLoS >> LoS",
        f"ratio {result.nlos_swing_db / max(result.los_swing_db, 0.01):.0f}x",
        result.passive_best_for_nlos,
    )
    print()
    print(table.render())
    assert table.all_hold()
