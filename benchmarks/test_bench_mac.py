"""Figure 7 carried to the MAC: harmonization as deliverable throughput.

§1 frames harmonization against "many [networks] operating in close
proximity".  This benchmark prices the three regimes with the slotted
CSMA/CA simulator: hidden-terminal co-channel contention, a static
half-band split, and the PRESS-harmonized split.
"""

from repro.analysis.reporting import ReportTable, format_table
from repro.experiments import run_mac_harmonization


def test_bench_mac_harmonization(once):
    result = once(run_mac_harmonization, duration_s=2.0)

    rows = [("regime", "sum throughput [Mbps]")]
    rows.append(("co-channel (hidden terminals)", f"{result.co_channel_mbps:.1f}"))
    rows.append(("static half-band split", f"{result.static_split_mbps:.1f}"))
    rows.append(("PRESS-harmonized split", f"{result.harmonized_mbps:.1f}"))
    print()
    print("MAC-level harmonization payoff (two saturated networks, 2 s)")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="Figure 7 at the MAC layer")
    table.add(
        "splitting ends hidden-terminal collisions",
        "frequency division removes contention (§1)",
        f"{result.co_channel_mbps:.1f} -> {result.static_split_mbps:.1f} Mbps",
        result.static_split_mbps > result.co_channel_mbps,
    )
    table.add(
        "PRESS shaping makes the split worth more",
        "each network gets its favoured half-band",
        f"{result.static_split_mbps:.1f} -> {result.harmonized_mbps:.1f} Mbps",
        result.harmonized_mbps > result.static_split_mbps,
    )
    table.add(
        "total harmonization gain",
        "harmonized vs co-channel",
        f"{result.harmonization_gain:.2f}x",
        result.harmonization_gain > 1.2,
    )
    print(table.render())
    assert table.all_hold()
