"""§1's remaining applications, quantified end to end.

* Multi-user MIMO spatial multiplexing: PRESS re-conditions the correlated
  user channel of two closely-spaced clients and the ZF sum rate follows.
* Interference alignment: PRESS aligns two interferers at a two-antenna
  bystander so a single spatial null removes both.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.experiments import run_alignment_study, run_mu_mimo


def test_bench_mu_mimo_sum_rate(once):
    result = once(run_mu_mimo)

    best = result.best_configuration
    worst = result.worst_configuration
    rows = [("config", "ZF sum rate [bits/s/Hz]", "median cond [dB]")]
    for tag, index in (("best", best), ("worst", worst)):
        rows.append(
            (
                f"{result.labels[index]} ({tag})",
                f"{result.sum_rate_bits[index]:.2f}",
                f"{result.median_condition_db[index]:.1f}",
            )
        )
    print()
    print("MU-MIMO downlink — 2-antenna AP, two clients at lambda/2 spacing")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="§1: spatial multiplexing via the environment")
    correlation = result.conditioning_rate_correlation()
    table.add(
        "conditioning predicts the ZF sum rate",
        "condition number is 'critically important to capacity'",
        f"corr(-cond, rate) = {correlation:.2f}",
        correlation > 0.7,
    )
    table.add(
        "PRESS moves the sum rate",
        "restore performance 'without additional AP processing'",
        f"best/worst = {result.rate_gain:.2f}x "
        f"({result.sum_rate_bits.min():.1f} -> {result.sum_rate_bits.max():.1f})",
        result.rate_gain > 1.1,
    )
    print(table.render())
    assert table.all_hold()


def test_bench_interference_alignment(once):
    result = once(run_alignment_study)

    rows = [("config", "alignment cosine", "post-null INR [dB]")]
    for tag, index in (
        ("best aligned", result.best_configuration),
        ("worst aligned", result.worst_configuration),
    ):
        rows.append(
            (
                f"{result.labels[index]} ({tag})",
                f"{result.alignment[index]:.3f}",
                f"{result.residual_inr_db[index]:.1f}",
            )
        )
    print()
    print("Interference alignment — two APs at a 2-antenna bystander (NLoS)")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="§1: aligning interference in one nulling step")
    table.add(
        "PRESS controls the alignment",
        "environment steers the interference subspace",
        f"cosine spread {result.alignment_spread:.3f}",
        result.alignment_spread > 0.03,
    )
    table.add(
        "alignment cuts the residual after one null",
        "one nulling step removes both interferers",
        f"{result.inr_improvement_db:.1f} dB lower residual INR",
        result.inr_improvement_db > 3.0,
    )
    # Alignment and post-null residual must agree in direction.
    correlation = float(
        np.corrcoef(result.alignment, result.residual_inr_db)[0, 1]
    )
    table.add(
        "alignment metric tracks residual INR",
        "collinear interference leaks nothing",
        f"corr = {correlation:.2f}",
        correlation < -0.5,
    )
    print(table.render())
    assert table.all_hold()
