"""Multi-channel operation: stub phases are frequency dependent.

The prototype's waveguide stubs are cut for channel 11 (2.462 GHz); their
reflection phases are delays, so the same switch setting produces different
phases on channels 1 (2.412 GHz) and 6 (2.437 GHz).  This benchmark
quantifies the cross-channel transfer penalty — how much a configuration
optimised on one Wi-Fi channel loses when the link hops to another — and
the ideal-phase-shifter comparison that §4.1's "continuously-variable phase
shifting hardware" would enable.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.constants import CARRIER_FREQUENCY_HZ
from repro.core import ExhaustiveSearch
from repro.experiments import StudyConfig, build_nlos_setup, used_subcarrier_mask
from repro.sdr.testbed import Testbed

WIFI_CHANNELS = {1: 2.412e9, 6: 2.437e9, 11: CARRIER_FREQUENCY_HZ}


def test_bench_cross_channel_transfer(once):
    def run():
        setup = build_nlos_setup(2)
        mask = used_subcarrier_mask()
        space = setup.array.configuration_space()
        testbeds = {
            channel: Testbed(
                scene=setup.testbed.scene,
                array=setup.array,
                frequency_hz=frequency,
            )
            for channel, frequency in WIFI_CHANNELS.items()
        }

        def min_snr(channel, config):
            observation = testbeds[channel].measure_csi(
                setup.tx_device, setup.rx_device, config
            )
            return float(observation.snr_db[mask].min())

        optima = {}
        for channel in WIFI_CHANNELS:
            optima[channel] = ExhaustiveSearch().search(
                space, lambda c, ch=channel: min_snr(ch, c)
            )
        transfer = {}
        for source in WIFI_CHANNELS:
            for target in WIFI_CHANNELS:
                transfer[(source, target)] = min_snr(target, optima[source].best)
        return optima, transfer

    optima, transfer = once(run)

    rows = [("optimised on", "ch 1", "ch 6", "ch 11")]
    for source in (1, 6, 11):
        rows.append(
            (
                f"channel {source}",
                f"{transfer[(source, 1)]:.1f}",
                f"{transfer[(source, 6)]:.1f}",
                f"{transfer[(source, 11)]:.1f}",
            )
        )
    print()
    print("Cross-channel transfer — min-SNR [dB] of each channel's optimum elsewhere")
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="Frequency dependence of stub configurations")
    own = np.mean([transfer[(ch, ch)] for ch in WIFI_CHANNELS])
    cross = np.mean(
        [
            transfer[(s, t)]
            for s in WIFI_CHANNELS
            for t in WIFI_CHANNELS
            if s != t
        ]
    )
    table.add(
        "native optimisation beats transferred configs",
        "stub phases are delays, not flat phases",
        f"own {own:.1f} dB vs transferred {cross:.1f} dB",
        own >= cross,
    )
    worst_penalty = max(
        transfer[(t, t)] - transfer[(s, t)]
        for s in WIFI_CHANNELS
        for t in WIFI_CHANNELS
        if s != t
    )
    table.add(
        "worst cross-channel penalty",
        "re-optimise after a channel hop",
        f"{worst_penalty:.1f} dB",
        worst_penalty >= 0.0,
    )
    print(table.render())
    assert table.all_hold()
