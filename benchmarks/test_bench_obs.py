"""Observability overhead A/B benchmark: ``BENCH_obs.json``.

Runs ``run_fig6`` twice — observability enabled vs disabled — and checks
that (1) the results are bit-identical (instruments never touch RNG
streams or reorder work) and (2) the enabled run costs < 3% extra
wall-clock.  Each arm takes the minimum of several repeats so scheduler
noise does not masquerade as instrument cost.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import ReportTable
from repro.em import global_trace_cache
from repro.experiments import run_fig6
from repro.obs import reset_observability, set_enabled

REPETITIONS = 24
REPEATS = 5
MAX_OVERHEAD = 0.03


def _timed_fig6():
    global_trace_cache().clear()
    reset_observability()
    start = time.perf_counter()
    result = run_fig6(repetitions=REPETITIONS, jobs=1)
    return time.perf_counter() - start, result


def test_bench_obs_overhead():
    set_enabled(True)
    on_times = []
    on_result = None
    for _ in range(REPEATS):
        elapsed, on_result = _timed_fig6()
        on_times.append(elapsed)
    on_s = min(on_times)

    previous = set_enabled(False)
    try:
        off_times = []
        off_result = None
        for _ in range(REPEATS):
            elapsed, off_result = _timed_fig6()
            off_times.append(elapsed)
        off_s = min(off_times)
    finally:
        set_enabled(previous)
        reset_observability()

    overhead = on_s / off_s - 1.0

    identical = (
        np.array_equal(
            on_result.min_snr_change_pairs, off_result.min_snr_change_pairs
        )
        and all(
            np.array_equal(a, b)
            for a, b in zip(
                on_result.min_snr_per_trial, off_result.min_snr_per_trial
            )
        )
        and on_result.fraction_pairs_10db_change
        == off_result.fraction_pairs_10db_change
        and on_result.fraction_configs_below_20db
        == off_result.fraction_configs_below_20db
    )

    table = ReportTable(
        title=(
            f"Observability A/B — run_fig6 x{REPETITIONS} reps, "
            f"min of {REPEATS} repeats"
        )
    )
    table.add(
        "results obs on vs off",
        "bit-identical",
        "identical" if identical else "DIVERGED",
        identical,
    )
    table.add(
        "wall-clock overhead",
        f"< {MAX_OVERHEAD:.0%}",
        f"{overhead:+.2%} ({off_s:.2f} -> {on_s:.2f} s)",
        overhead < MAX_OVERHEAD,
    )
    print()
    print(table.render())

    payload = {
        "experiment": "fig6",
        "repetitions": REPETITIONS,
        "repeats": REPEATS,
        "obs_on_s": on_s,
        "obs_off_s": off_s,
        "obs_on_times_s": on_times,
        "obs_off_times_s": off_times,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "bit_identical": identical,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    assert table.all_hold()
