"""Model-based channel prediction vs exhaustive sweeping (§2 extensions).

§2's actuation tasks — gather channel information and navigate the search
space — both collapse when the controller exploits the linearity of the
PRESS channel in the element reflection coefficients.  This benchmark
measures how many over-the-air soundings that saves and how little quality
it costs, against the §3.2-style exhaustive sweep.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.core import (
    ExhaustiveSearch,
    MinSnrObjective,
    fit_channel_model,
    identification_configurations,
    optimize_phases,
    predict_and_pick,
)
from repro.experiments import build_nlos_setup, used_subcarrier_mask


def test_bench_model_based_prediction(once):
    def run():
        rows = []
        for seed in (0, 2, 4, 6):
            setup = build_nlos_setup(seed)
            mask = used_subcarrier_mask()
            schedule = identification_configurations(setup.array)
            cfrs = [
                setup.testbed.channel(setup.tx_device, setup.rx_device, c).cfr()[mask]
                for c in schedule
            ]
            model = fit_channel_model(
                setup.array, schedule, cfrs, setup.testbed.frequency_hz
            )
            # Prediction error over unmeasured configurations.
            errors = []
            for rank in range(0, 64, 7):
                config = setup.array.configuration_space().configuration_at(rank)
                predicted = model.predict_cfr(setup.array, config)
                actual = setup.testbed.channel(
                    setup.tx_device, setup.rx_device, config
                ).cfr()[mask]
                errors.append(
                    float(np.linalg.norm(predicted - actual) / np.linalg.norm(actual))
                )

            def true_min(config):
                return float(
                    setup.testbed.measure_csi(
                        setup.tx_device, setup.rx_device, config
                    ).snr_db[mask].min()
                )

            predicted_best, _ = predict_and_pick(
                setup.array, model, MinSnrObjective()
            )
            truth = ExhaustiveSearch().search(
                setup.array.configuration_space(), true_min
            )
            relax = optimize_phases(setup.array, model, restarts=6)
            rows.append(
                {
                    "seed": seed,
                    "measurements": len(schedule),
                    "exhaustive": truth.num_evaluations,
                    "pred_error": float(np.median(errors)),
                    "gap_db": truth.best_score - true_min(predicted_best),
                    "continuous_bonus_db": relax.continuous_min_db
                    - (truth.best_score - true_min(predicted_best)),
                }
            )
        return rows

    rows = once(run)

    printable = [("placement", "soundings", "vs exhaustive", "median pred err", "optimality gap")]
    for row in rows:
        printable.append(
            (
                str(row["seed"]),
                str(row["measurements"]),
                str(row["exhaustive"]),
                f"{100 * row['pred_error']:.1f}%",
                f"{row['gap_db']:.2f} dB",
            )
        )
    print()
    print("Model-based prediction — identify with N+1 soundings, predict all 64")
    print(format_table(printable, header_rule=True))

    table = ReportTable(title="Prediction vs exhaustive sweep")
    worst_gap = max(row["gap_db"] for row in rows)
    worst_err = max(row["pred_error"] for row in rows)
    savings = rows[0]["exhaustive"] / rows[0]["measurements"]
    table.add(
        "measurement savings",
        "O(N) identification vs O(M^N) sweep",
        f"{savings:.0f}x fewer soundings",
        savings >= 8,
    )
    table.add(
        "prediction accuracy",
        "linear model exact up to stub dispersion",
        f"median error <= {100 * worst_err:.1f}%",
        worst_err < 0.05,
    )
    table.add(
        "optimality of predicted best",
        "near-exhaustive quality",
        f"worst gap {worst_gap:.2f} dB",
        worst_gap <= 1.0,
    )
    print(table.render())
    assert table.all_hold()
