"""Scaling study: search cost vs array size (§4.2's core concern).

"With N PRESS elements, each having M possible reflection coefficients,
enumerating the M^N possibilities in the search space for the optimal
configuration becomes impractical."  This benchmark grows the array from 2
to 5 elements and compares, per method, the over-the-air soundings needed
and the quality reached:

* exhaustive enumeration (the gold standard, exponential cost);
* greedy coordinate descent (linear per sweep);
* cross-entropy search (population-based);
* model-based prediction (N+1 soundings, then free).
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.core import (
    CrossEntropySearch,
    ExhaustiveSearch,
    GreedyCoordinateDescent,
    MinSnrObjective,
    PressArray,
    fit_channel_model,
    identification_configurations,
    omni_element,
    predict_and_pick,
)
from repro.em.geometry import Point
from repro.experiments import StudyConfig, build_nlos_setup, used_subcarrier_mask
from repro.sdr.testbed import Testbed


def _grown_setup(num_elements: int):
    """The study scenario with the array grown to ``num_elements``."""
    config = StudyConfig()
    setup = build_nlos_setup(2, config)
    base = setup.array.elements
    elements = list(base)
    anchor = base[0].position
    rng = np.random.default_rng(99)
    while len(elements) < num_elements:
        index = len(elements)
        elements.append(
            omni_element(
                Point(
                    anchor.x + float(rng.uniform(-1.2, 1.2)),
                    anchor.y + float(rng.uniform(0.0, 1.2)),
                ),
                name=f"x{index}",
                gain_dbi=config.element_gain_dbi,
            )
        )
    array = PressArray.from_elements(elements[:num_elements])
    testbed = Testbed(scene=setup.testbed.scene, array=array)
    return setup, testbed, array


def test_bench_search_scaling(once):
    def run():
        mask = used_subcarrier_mask()
        rows = []
        for num_elements in (2, 3, 4, 5):
            setup, testbed, array = _grown_setup(num_elements)
            space = array.configuration_space()

            def min_snr(configuration):
                observation = testbed.measure_csi(
                    setup.tx_device, setup.rx_device, configuration
                )
                return float(observation.snr_db[mask].min())

            exhaustive = ExhaustiveSearch().search(space, min_snr)
            greedy = GreedyCoordinateDescent(restarts=2).search(space, min_snr)
            cem = CrossEntropySearch(population=16, iterations=6, seed=1).search(
                space, min_snr
            )
            schedule = identification_configurations(array)
            cfrs = [
                testbed.channel(
                    setup.tx_device, setup.rx_device, configuration
                ).cfr()[mask]
                for configuration in schedule
            ]
            model = fit_channel_model(
                array, schedule, cfrs, testbed.frequency_hz
            )
            predicted_best, _ = predict_and_pick(array, model, MinSnrObjective())
            rows.append(
                {
                    "n": num_elements,
                    "space": space.size,
                    "exhaustive": (exhaustive.num_evaluations, exhaustive.best_score),
                    "greedy": (greedy.num_evaluations, greedy.best_score),
                    "cem": (cem.num_evaluations, cem.best_score),
                    "model": (len(schedule), min_snr(predicted_best)),
                }
            )
        return rows

    rows = once(run)

    printable = [
        ("N", "space", "exhaustive", "greedy", "cross-entropy", "model-based")
    ]
    for row in rows:
        printable.append(
            (
                str(row["n"]),
                str(row["space"]),
                f"{row['exhaustive'][0]} -> {row['exhaustive'][1]:.1f}",
                f"{row['greedy'][0]} -> {row['greedy'][1]:.1f}",
                f"{row['cem'][0]} -> {row['cem'][1]:.1f}",
                f"{row['model'][0]} -> {row['model'][1]:.1f}",
            )
        )
    print()
    print("Search scaling — soundings -> best min-SNR [dB] per method")
    print(format_table(printable, header_rule=True))

    table = ReportTable(title="§4.2: navigating the M^N space")
    largest = rows[-1]
    optimum = largest["exhaustive"][1]
    table.add(
        "exhaustive cost explodes",
        "M^N becomes impractical",
        f"{rows[0]['exhaustive'][0]} -> {largest['exhaustive'][0]} soundings (N=2 -> 5)",
        largest["exhaustive"][0] >= 32 * rows[0]["exhaustive"][0],
    )
    table.add(
        "model-based stays O(N) and near-optimal",
        "channel is linear in the coefficients",
        f"{largest['model'][0]} soundings, gap "
        f"{optimum - largest['model'][1]:.2f} dB at N=5",
        largest["model"][0] <= 8
        and largest["model"][1] >= optimum - 1.0,
    )
    table.add(
        "heuristics stay within a few dB",
        "pruning heuristics (§4.2)",
        f"greedy gap {optimum - largest['greedy'][1]:.2f} dB, "
        f"CEM gap {optimum - largest['cem'][1]:.2f} dB",
        largest["greedy"][1] >= optimum - 4.0,
    )
    print(table.render())
    assert table.all_hold()
