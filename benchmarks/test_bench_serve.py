"""Serving-layer benchmark: ``BENCH_serve.json``.

Three phases over the asyncio front end (:mod:`repro.serve`):

1. **Headline throughput** — a wall-sized-array evaluate workload at
   concurrency 32, served per-request (``max_batch=1``, the serial
   baseline: every request pays its own basis evaluation) versus
   micro-batched (``max_batch=64``: concurrent same-scenario requests
   coalesce into one vectorized evaluation).  Acceptance: batched
   throughput >= 5x serial at >= 2 CPUs, responses bit-identical always.
   On single-core boxes the ratio is recorded but not asserted, matching
   ``BENCH_trace.json`` — though batching is a vectorization win, not a
   parallelism win, so the recorded single-core ratio typically clears
   the bar anyway.
2. **Skewed scenario mix** — a seeded Zipf-popularity workload over
   several study scenes through the session layer.  The session cache
   must absorb it: per-request hit rate >= 0.9.
3. **Open loop** — seeded Poisson arrivals against a bounded queue sized
   for the offered load; below the overload threshold nothing may be
   shed (rejections are a backpressure signal, not a steady-state tax).
4. **Tracing overhead** — the phase-1 batched workload re-run twice:
   with request tracing off (``trace_sample=0``, everything else hot) to
   isolate the span-machinery tax, which must stay < 3% of batched
   throughput at the default sample rate; and with observability off
   entirely (``set_enabled(False)``) to record the full instrumentation
   tax.  Responses must be bit-identical in all three modes.

``REPRO_BENCH_SMOKE=1`` shrinks the workload to CI scale (~50 mixed
requests), keeps the structural assertions (bit-identical responses,
zero rejections below overload, run-record round-trip), and skips the
performance assertions and the JSON write.
"""

import asyncio
import json
import os
import time
from pathlib import Path

from repro.analysis.reporting import ReportTable
from repro.em import trace_cache
from repro.experiments.runner import available_cpus
from repro.obs import global_registry
from repro.obs.metrics import set_enabled
from repro.obs.records import RunRecorder, read_records, validate_record
from repro.serve import (
    EnvironmentService,
    EvaluateRequest,
    ScenarioSpec,
    ServiceConfig,
    mixed_requests,
    run_closed_loop,
    run_open_loop,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

CONCURRENCY = 32
HEADLINE_ELEMENTS = 32 if SMOKE else 256
HEADLINE_CONFIGS = 2
HEADLINE_REQUESTS = 64 if SMOKE else 512
HEADLINE_REPEATS = 1 if SMOKE else 3
MIX_SCENARIOS = 4 if SMOKE else 8
MIX_REQUESTS = 50 if SMOKE else 400
MIX_SEED = 7
MIX_SKEW = 1.5
OPEN_RATE_HZ = 500.0 if SMOKE else 2000.0


def _headline_requests():
    """Seeded evaluate-only workload on one wall-sized-array scenario."""
    import numpy as np

    spec = ScenarioSpec(kind="large", placement=0, num_elements=HEADLINE_ELEMENTS)
    rng = np.random.default_rng(11)
    requests = []
    for _ in range(HEADLINE_REQUESTS):
        rows = rng.integers(0, 4, size=(HEADLINE_CONFIGS, HEADLINE_ELEMENTS))
        requests.append(
            EvaluateRequest(
                scenario=spec,
                configurations=tuple(tuple(int(x) for x in row) for row in rows),
            )
        )
    return requests


async def _drive(config, requests, concurrency, timer=None):
    """One service lifetime: warm the session, then run the closed loop."""
    async with EnvironmentService(config) as service:
        await service.submit(requests[0])  # session build outside the timing
        start = time.perf_counter()
        load = await run_closed_loop(
            service.submit, requests, concurrency, timer=timer
        )
        elapsed = time.perf_counter() - start
    return load, elapsed


def _counters(*names):
    registry = global_registry()
    return {name: registry.counter(name).value for name in names}


def test_bench_serve(tmp_path):
    cpus = available_cpus()
    trace_cache.reset()

    # Phase 1: headline batched-vs-serial throughput at concurrency 32.
    requests = _headline_requests()
    serial_config = ServiceConfig(
        batch_window_s=0.0, max_batch=1, max_pending=4 * HEADLINE_REQUESTS
    )
    batched_config = ServiceConfig(
        batch_window_s=0.0, max_batch=64, max_pending=4 * HEADLINE_REQUESTS
    )
    serial_s = batched_s = float("inf")
    serial_load = batched_load = None
    batch_counters = {}
    for _ in range(HEADLINE_REPEATS):
        serial_load, elapsed = asyncio.run(
            _drive(serial_config, requests, CONCURRENCY, timer=time.perf_counter)
        )
        serial_s = min(serial_s, elapsed)
        before = _counters("serve.batches", "serve.batched_requests")
        batched_load, elapsed = asyncio.run(
            _drive(batched_config, requests, CONCURRENCY, timer=time.perf_counter)
        )
        if elapsed < batched_s:
            batched_s = elapsed
            after = _counters("serve.batches", "serve.batched_requests")
            batch_counters = {
                name: after[name] - before[name] for name in before
            }
    throughput_ratio = serial_s / batched_s
    serial_rps = HEADLINE_REQUESTS / serial_s
    batched_rps = HEADLINE_REQUESTS / batched_s
    responses_identical = serial_load.responses == batched_load.responses
    latency = batched_load.latency_percentiles()
    # The warm-up submit forms a 1-request batch inside _drive; subtract
    # nothing — it is part of the measured service lifetime, and at 512
    # requests it shifts the mean batch size by < 1%.
    mean_batch = batch_counters["serve.batched_requests"] / max(
        batch_counters["serve.batches"], 1
    )

    # Phase 4 (measured here, reported below).  Phase 1's batched run had
    # request tracing live at the default sample rate; re-running with
    # trace_sample=0 (counters/histograms still hot) isolates the span
    # machinery, and re-running with observability off entirely records
    # the full instrumentation tax.
    notrace_config = ServiceConfig(
        batch_window_s=0.0,
        max_batch=64,
        max_pending=4 * HEADLINE_REQUESTS,
        trace_sample=0,
    )
    notrace_s = obs_off_s = float("inf")
    notrace_load = obs_off_load = None
    for _ in range(HEADLINE_REPEATS):
        notrace_load, elapsed = asyncio.run(
            _drive(notrace_config, requests, CONCURRENCY, timer=time.perf_counter)
        )
        notrace_s = min(notrace_s, elapsed)
    previous_enabled = set_enabled(False)
    try:
        for _ in range(HEADLINE_REPEATS):
            obs_off_load, elapsed = asyncio.run(
                _drive(
                    batched_config, requests, CONCURRENCY, timer=time.perf_counter
                )
            )
            obs_off_s = min(obs_off_s, elapsed)
    finally:
        set_enabled(previous_enabled)
    tracing_overhead = batched_s / notrace_s - 1.0
    obs_overhead = batched_s / obs_off_s - 1.0
    untraced_identical = (
        notrace_load.responses == batched_load.responses
        and obs_off_load.responses == batched_load.responses
    )

    # Phase 2: skewed scenario mix through the session layer.  max_batch=1
    # makes session lookups per-request, so the hit rate below is a pure
    # function of the seeded workload, not of batch formation timing.
    scenarios = [
        ScenarioSpec(kind="nlos", placement=p) for p in range(MIX_SCENARIOS)
    ]
    mix = mixed_requests(
        scenarios, num_requests=MIX_REQUESTS, seed=MIX_SEED, skew=MIX_SKEW
    )
    mix_config = ServiceConfig(
        batch_window_s=0.0,
        max_batch=1,
        max_pending=4 * MIX_REQUESTS,
        session_capacity=MIX_SCENARIOS,
    )
    hits_before = _counters("serve.session_hits", "serve.session_misses")
    record_path = tmp_path / "serve_record.jsonl"
    with RunRecorder(
        "bench_serve_mix",
        config={
            "requests": MIX_REQUESTS,
            "scenarios": MIX_SCENARIOS,
            "skew": MIX_SKEW,
            "concurrency": 16,
        },
        seeds={"workload": MIX_SEED},
        path=record_path,
    ) as recorder:
        mix_load, mix_s = asyncio.run(
            _drive(mix_config, mix, 16, timer=time.perf_counter)
        )
    hits_after = _counters("serve.session_hits", "serve.session_misses")
    session_hits = hits_after["serve.session_hits"] - hits_before["serve.session_hits"]
    session_misses = (
        hits_after["serve.session_misses"] - hits_before["serve.session_misses"]
    )
    session_hit_rate = session_hits / max(session_hits + session_misses, 1)
    cache = trace_cache.global_trace_cache()

    # Run-record round-trip: the mix phase's record must validate after a
    # disk round-trip (the CI smoke contract).
    records = read_records(record_path)
    assert len(records) == 1
    assert validate_record(records[0]) == []
    assert records[0]["experiment"] == "bench_serve_mix"

    # Phase 3: open-loop arrivals below the overload threshold.  The
    # queue bound exceeds the total request count, so zero rejections is
    # a structural guarantee here, not a timing accident.
    open_config = ServiceConfig(
        batch_window_s=0.0, max_batch=64, max_pending=4 * MIX_REQUESTS
    )

    async def _open():
        async with EnvironmentService(open_config) as service:
            await service.submit(mix[0])
            start = time.perf_counter()
            load = await run_open_loop(
                service.submit,
                mix,
                rate_hz=OPEN_RATE_HZ,
                seed=MIX_SEED,
                timer=time.perf_counter,
            )
            elapsed = time.perf_counter() - start
        return load, elapsed

    open_load, open_s = asyncio.run(_open())
    open_latency = open_load.latency_percentiles()

    enough_cpus = cpus >= 2
    table = ReportTable(
        title=(
            f"Serving layer — {HEADLINE_REQUESTS} evaluate requests @ "
            f"concurrency {CONCURRENCY}, {MIX_REQUESTS} mixed, {cpus} CPU(s)"
        )
    )
    table.add(
        f"batched vs per-request throughput @ {CONCURRENCY}",
        ">= 5x" if enough_cpus and not SMOKE else "recorded only",
        f"{throughput_ratio:.2f}x ({serial_rps:.0f} -> {batched_rps:.0f} req/s)",
        throughput_ratio >= 5.0 if enough_cpus and not SMOKE else True,
    )
    table.add(
        "concurrent vs serial responses",
        "bit-identical",
        "identical" if responses_identical else "DIVERGED",
        responses_identical,
    )
    table.add(
        "batched p50 / p95 / p99 latency",
        "recorded",
        f"{1e3 * latency['p50']:.2f} / {1e3 * latency['p95']:.2f} / "
        f"{1e3 * latency['p99']:.2f} ms",
        True,
    )
    table.add(
        "batching efficiency (requests per batch)",
        ">= 2" if not SMOKE else "recorded only",
        f"{mean_batch:.1f}",
        mean_batch >= 2.0 if not SMOKE else True,
    )
    table.add(
        f"session hit rate (skew={MIX_SKEW} mix)",
        ">= 0.9",
        f"{session_hit_rate:.3f} ({session_hits} hits, {session_misses} misses)",
        session_hit_rate >= 0.9,
    )
    table.add(
        "request-tracing overhead (default sampling vs trace_sample=0)",
        "< 3%" if enough_cpus and not SMOKE else "recorded only",
        f"{100 * tracing_overhead:+.2f}% "
        f"({batched_s:.3f}s traced vs {notrace_s:.3f}s untraced)",
        tracing_overhead < 0.03 if enough_cpus and not SMOKE else True,
    )
    table.add(
        "full observability overhead (obs on vs off)",
        "recorded",
        f"{100 * obs_overhead:+.2f}% ({obs_off_s:.3f}s with obs off)",
        True,
    )
    table.add(
        "responses with tracing / obs off",
        "bit-identical",
        "identical" if untraced_identical else "DIVERGED",
        untraced_identical,
    )
    table.add(
        "mix + open-loop shed/failed requests",
        "== 0 below overload",
        f"{mix_load.rejected + open_load.rejected} shed, "
        f"{mix_load.failed + open_load.failed} failed",
        mix_load.rejected == open_load.rejected == 0
        and mix_load.failed == open_load.failed == 0,
    )
    print()
    print(table.render())

    payload = {
        "cpu_count": cpus,
        "headline": {
            "num_requests": HEADLINE_REQUESTS,
            "concurrency": CONCURRENCY,
            "num_elements": HEADLINE_ELEMENTS,
            "configurations_per_evaluate": HEADLINE_CONFIGS,
            "serial_s": serial_s,
            "batched_s": batched_s,
            "serial_rps": serial_rps,
            "batched_rps": batched_rps,
            "throughput_ratio": throughput_ratio,
            "ratio_asserted": bool(enough_cpus and throughput_ratio >= 5.0),
            "responses_identical": responses_identical,
            "latency_s": latency,
            "batches": batch_counters.get("serve.batches", 0),
            "batched_requests": batch_counters.get("serve.batched_requests", 0),
            "mean_batch_size": mean_batch,
        },
        "skewed_mix": {
            "num_requests": MIX_REQUESTS,
            "scenarios": MIX_SCENARIOS,
            "skew": MIX_SKEW,
            "seed": MIX_SEED,
            "wall_s": mix_s,
            "throughput_rps": mix_load.completed / mix_s,
            "session_hit_rate": session_hit_rate,
            "session_hits": session_hits,
            "session_misses": session_misses,
            "trace_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "entries": len(cache),
            },
            "latency_s": mix_load.latency_percentiles(),
            "rejected": mix_load.rejected,
            "failed": mix_load.failed,
            "record_wall_s": recorder.record["wall_s"],
        },
        "tracing_overhead": {
            "traced_s": batched_s,
            "untraced_s": notrace_s,
            "obs_off_s": obs_off_s,
            "trace_sample": ServiceConfig().trace_sample,
            "overhead_fraction": tracing_overhead,
            "obs_overhead_fraction": obs_overhead,
            "overhead_asserted": bool(
                enough_cpus and tracing_overhead < 0.03
            ),
            "responses_identical": untraced_identical,
        },
        "open_loop": {
            "rate_hz": OPEN_RATE_HZ,
            "num_requests": MIX_REQUESTS,
            "wall_s": open_s,
            "throughput_rps": open_load.completed / open_s,
            "latency_s": open_latency,
            "rejected": open_load.rejected,
            "failed": open_load.failed,
        },
    }
    if not SMOKE:
        out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
        # Like BENCH_trace.json: a 1-core run records its ratio but must
        # not clobber a record measured with real cores.
        existing_cpus = 0
        if out.exists():
            try:
                existing_cpus = int(json.loads(out.read_text()).get("cpu_count", 0))
            except (ValueError, TypeError):
                existing_cpus = 0
        if cpus < 2 and existing_cpus >= 2:
            print(
                f"BENCH_serve.json kept: existing record is {existing_cpus}-core, "
                f"this run has {cpus} CPU(s)"
            )
        else:
            out.write_text(json.dumps(payload, indent=2) + "\n")

    trace_cache.reset()
    assert table.all_hold()
