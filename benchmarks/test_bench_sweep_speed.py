"""Sweep fast-path micro-benchmark: legacy vs channel-basis wall time.

The Fig. 4 workload — 3 elements, 64 configurations, 10 repetitions — is
the inner loop of every experiment.  The legacy route re-traces the
element paths for each of the 640 measurements; the basis route traces
geometry once and evaluates the whole sweep as vectorized numpy.  This
benchmark records both wall times (and the drifted/noisy variant) to
``BENCH_sweep.json`` and asserts the >= 10x speedup plus numerical
agreement with the legacy route.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import ReportTable
from repro.experiments import build_nlos_setup

REPETITIONS = 10


def _timed_sweep(testbed, tx, rx, mode, seed=None):
    rng = None if seed is None else np.random.default_rng(seed)
    start = time.perf_counter()
    result = testbed.sweep(tx, rx, repetitions=REPETITIONS, rng=rng, mode=mode)
    return time.perf_counter() - start, result


def test_bench_sweep_speed(once):
    setup = build_nlos_setup(2)
    testbed = setup.testbed
    tx, rx = setup.tx_device, setup.rx_device
    # Warm the trace caches so both modes time steady-state sweep work.
    testbed.environment_paths(tx, rx)
    testbed.basis_for(tx, rx)

    legacy_s, legacy = _timed_sweep(testbed, tx, rx, "legacy")
    basis_s, fast = once(_timed_sweep, testbed, tx, rx, "basis")
    deviation = float(np.max(np.abs(fast.snr_db - legacy.snr_db)))
    speedup = legacy_s / basis_s

    noisy_legacy_s, noisy_legacy = _timed_sweep(testbed, tx, rx, "legacy", seed=7)
    noisy_basis_s, noisy_fast = _timed_sweep(testbed, tx, rx, "basis", seed=7)
    noisy_deviation = float(np.max(np.abs(noisy_fast.snr_db - noisy_legacy.snr_db)))
    noisy_speedup = noisy_legacy_s / noisy_basis_s

    num_configs = legacy.num_configurations
    table = ReportTable(
        title=(
            f"Sweep fast path — {testbed.array.num_elements} elements, "
            f"{num_configs} configs, {REPETITIONS} reps"
        )
    )
    table.add(
        "exact sweep speedup (basis vs legacy)",
        ">= 10x",
        f"{speedup:.0f}x ({1e3 * legacy_s:.0f} -> {1e3 * basis_s:.1f} ms)",
        speedup >= 10.0,
    )
    table.add(
        "exact sweep max |dSNR|",
        "<= 1e-9 dB",
        f"{deviation:.2e} dB",
        deviation <= 1e-9,
    )
    table.add(
        "drift+noise sweep speedup",
        "> 1x",
        f"{noisy_speedup:.1f}x ({1e3 * noisy_legacy_s:.0f} -> {1e3 * noisy_basis_s:.0f} ms)",
        noisy_speedup > 1.0,
    )
    table.add(
        "drift+noise sweep max |dSNR|",
        "<= 1e-9 dB",
        f"{noisy_deviation:.2e} dB",
        noisy_deviation <= 1e-9,
    )
    print()
    print(table.render())

    payload = {
        "workload": {
            "elements": testbed.array.num_elements,
            "configurations": num_configs,
            "repetitions": REPETITIONS,
            "subcarriers": testbed.num_subcarriers,
        },
        "exact": {
            "legacy_s": legacy_s,
            "basis_s": basis_s,
            "speedup": speedup,
            "max_abs_snr_deviation_db": deviation,
        },
        "drift_noise": {
            "legacy_s": noisy_legacy_s,
            "basis_s": noisy_basis_s,
            "speedup": noisy_speedup,
            "max_abs_snr_deviation_db": noisy_deviation,
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    assert table.all_hold()
