"""Batched geometry + parallel runner benchmark: ``BENCH_trace.json``.

Two measurements make geometry the fast axis:

1. A 400-position receiver grid traced scalar (one ``trace`` call per
   point) versus batched (one ``trace_batch`` call) — the coverage-map
   inner loop.  Acceptance: >= 10x, with per-point numerical agreement.
2. ``run_fig4(num_placements=8)`` serial versus ``jobs=4`` — the
   placement axis through the process-pool runner, bit-identical output.
   Bases are traced in the parent and shipped to workers, and the worker
   pool persists across calls, so a parallel run pays startup once per
   session instead of once per figure.  The >1x wall-clock acceptance
   needs real cores; on single-core boxes the ratios are recorded but
   not asserted (process pools cannot beat serial on one core, and the
   ~tens-of-ms fork saving drowns in scheduler noise there).  The
   pool-reuse amortisation — cold first call versus warm steady state —
   is measured separately so the fix is visible even where the serial
   comparison is not meaningful.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import ReportTable
from repro.em import global_trace_cache
from repro.em.geometry import Point
from repro.experiments import build_nlos_setup, run_fig4
from repro.experiments.runner import (
    available_cpus,
    shutdown_shared_pools,
    warm_pool,
)

GRID_POINTS = 400
FIG4_PLACEMENTS = 8
FIG4_JOBS = 4


def _grid(center: Point, count: int) -> list[Point]:
    side = int(np.sqrt(count))
    xs = np.linspace(center.x - 1.2, center.x + 1.2, side)
    ys = np.linspace(center.y - 0.9, center.y + 0.9, count // side)
    return [Point(float(x), float(y)) for y in ys for x in xs]


def test_bench_trace_speed(once):
    setup = build_nlos_setup(2)
    tracer = setup.testbed.tracer
    tx_chain = setup.tx_device.chains[0]
    rx_chain = setup.rx_device.chains[0]
    points = _grid(rx_chain.position, GRID_POINTS)

    start = time.perf_counter()
    scalar_paths = [
        tracer.trace(tx_chain.position, point, tx_chain.antenna, rx_chain.antenna)
        for point in points
    ]
    scalar_s = time.perf_counter() - start

    def _batch():
        return tracer.trace_batch(
            tx_chain.position, points, tx_chain.antenna, rx_chain.antenna
        )

    start = time.perf_counter()
    batch = once(_batch)
    batch_s = time.perf_counter() - start
    trace_speedup = scalar_s / batch_s

    deviation = 0.0
    for index, scalar in enumerate(scalar_paths):
        gains, delays = batch.point_arrays(index)
        assert len(gains) == len(scalar)
        deviation = max(
            deviation,
            float(np.max(np.abs(gains - np.array([p.gain for p in scalar])), initial=0.0)),
            float(np.max(np.abs(delays - np.array([p.delay_s for p in scalar])), initial=0.0)),
        )

    # Placement-axis parallelism.  Clear the process-wide trace cache
    # before each run so no route times against warm geometry.  The first
    # parallel call is timed cold (no pool yet, like a fresh session); the
    # steady-state call is timed against the persistent pool — the regime
    # every figure run after the first actually sees.
    cpus = available_cpus()
    shutdown_shared_pools()
    global_trace_cache().clear()
    start = time.perf_counter()
    serial = run_fig4(num_placements=FIG4_PLACEMENTS)
    serial_s = time.perf_counter() - start
    global_trace_cache().clear()
    start = time.perf_counter()
    parallel_cold = run_fig4(num_placements=FIG4_PLACEMENTS, jobs=FIG4_JOBS)
    parallel_cold_s = time.perf_counter() - start
    warm_pool(FIG4_JOBS)
    parallel_s = float("inf")
    for _ in range(2):  # min-of-2: damp scheduler jitter on loaded boxes
        global_trace_cache().clear()
        start = time.perf_counter()
        parallel = run_fig4(num_placements=FIG4_PLACEMENTS, jobs=FIG4_JOBS)
        parallel_s = min(parallel_s, time.perf_counter() - start)
    fig4_speedup = serial_s / parallel_s
    pool_reuse_speedup = parallel_cold_s / parallel_s
    fig4_deviation = max(
        abs(a.mean_gap_db - b.mean_gap_db)
        + abs(a.max_single_rep_gap_db - b.max_single_rep_gap_db)
        for a, b in zip(serial.placements, parallel.placements)
    )
    cold_deviation = max(
        abs(a.mean_gap_db - b.mean_gap_db)
        + abs(a.max_single_rep_gap_db - b.max_single_rep_gap_db)
        for a, b in zip(parallel_cold.placements, parallel.placements)
    )
    fig4_deviation = max(fig4_deviation, cold_deviation)

    table = ReportTable(
        title=(
            f"Batched trace + parallel runner — {len(points)} grid points, "
            f"{FIG4_PLACEMENTS} placements, {cpus} CPU(s)"
        )
    )
    table.add(
        "trace_batch speedup (400 points)",
        ">= 10x",
        f"{trace_speedup:.0f}x ({1e3 * scalar_s:.0f} -> {1e3 * batch_s:.1f} ms)",
        trace_speedup >= 10.0,
    )
    table.add(
        "trace_batch max |dgain|, |ddelay|",
        "<= 1e-12",
        f"{deviation:.2e}",
        deviation <= 1e-12,
    )
    enough_cpus = cpus >= 2
    table.add(
        f"fig4 jobs={FIG4_JOBS} warm speedup ({cpus} CPUs)",
        "> 1x" if enough_cpus else "recorded only (1 CPU)",
        f"{fig4_speedup:.2f}x ({serial_s:.2f} -> {parallel_s:.2f} s)",
        fig4_speedup > 1.0 if enough_cpus else True,
    )
    table.add(
        "fig4 pool reuse (cold -> warm parallel)",
        "> 1x" if enough_cpus else "recorded only (1 CPU)",
        f"{pool_reuse_speedup:.2f}x ({parallel_cold_s:.2f} -> {parallel_s:.2f} s)",
        pool_reuse_speedup > 1.0 if enough_cpus else True,
    )
    table.add(
        "fig4 serial vs parallel |ddB|",
        "== 0",
        f"{fig4_deviation:.2e} dB",
        fig4_deviation == 0.0,
    )
    print()
    print(table.render())

    payload = {
        "cpu_count": cpus,
        "trace": {
            "grid_points": len(points),
            "scalar_s": scalar_s,
            "batch_s": batch_s,
            "speedup": trace_speedup,
            "max_abs_deviation": deviation,
        },
        "fig4_parallel": {
            "placements": FIG4_PLACEMENTS,
            "jobs": FIG4_JOBS,
            "serial_s": serial_s,
            "parallel_cold_s": parallel_cold_s,
            "parallel_s": parallel_s,
            "speedup": fig4_speedup,
            "pool_reuse_speedup": pool_reuse_speedup,
            "speedup_asserted": bool(enough_cpus and fig4_speedup > 1.0),
            "pool_reuse_asserted": bool(enough_cpus and pool_reuse_speedup > 1.0),
            # Timed states: serial/cold run against no pool, the warm
            # figure against the persistent pre-started pool.
            "pool_warm": {
                "serial": False,
                "parallel_cold": False,
                "parallel": True,
            },
            "max_abs_deviation_db": fig4_deviation,
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
    # A 1-core run must not clobber a record measured with real cores:
    # the fig4 ratios are only meaningful (and only asserted) at >= 2
    # CPUs, so the multi-core record is the durable one.
    existing_cpus = 0
    if out.exists():
        try:
            existing_cpus = int(json.loads(out.read_text()).get("cpu_count", 0))
        except (ValueError, TypeError):
            existing_cpus = 0
    if cpus < 2 and existing_cpus >= 2:
        print(
            f"BENCH_trace.json kept: existing record is {existing_cpus}-core, "
            f"this run has {cpus} CPU(s)"
        )
    else:
        out.write_text(json.dumps(payload, indent=2) + "\n")

    assert table.all_hold()
