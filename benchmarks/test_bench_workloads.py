"""§2 dynamic strategies: traffic-driven configuration switching.

"PRESS will very likely reap additional performance benefits from
switching strategies on packet-level timescales ... as the set of senders
and receivers changes. ... One can imagine hybrid tradeoffs and dynamic
strategies that leverage these extreme positions."

Three clients with on/off traffic share one array; the benchmark races
static-joint vs reactive-joint vs cached (memoised per active set)
strategies over a 2-minute traffic trace.
"""

import numpy as np

from repro.analysis.reporting import ReportTable, format_table
from repro.core import LinkObjective, MinSnrObjective
from repro.em.geometry import Point
from repro.experiments import (
    build_nlos_setup,
    evaluate_dynamic_strategies,
    generate_traffic,
    used_subcarrier_mask,
)
from repro.sdr.device import warp_v3


def test_bench_dynamic_traffic_strategies(once):
    def run():
        setup = build_nlos_setup(2)
        mask = used_subcarrier_mask()
        links = []
        for index, (dx, dy) in enumerate([(0.0, 0.0), (0.5, 0.4), (-0.3, 0.6)]):
            rx = warp_v3(
                f"client-{index}",
                Point(
                    setup.rx_device.position.x + dx,
                    setup.rx_device.position.y + dy,
                ),
            )

            def measure(config, rx=rx):
                return setup.testbed.measure_csi(
                    setup.tx_device, rx, config
                ).snr_db[mask]

            links.append(
                LinkObjective(
                    name=f"client-{index}",
                    measure=measure,
                    objective=MinSnrObjective(),
                )
            )
        rng = np.random.default_rng(7)
        epochs = generate_traffic([l.name for l in links], 120.0, rng)
        results = evaluate_dynamic_strategies(
            links, setup.array.configuration_space(), epochs
        )
        return epochs, results

    epochs, results = once(run)

    rows = [("strategy", "time-weighted score [dB]", "searches", "soundings")]
    for name in ("static-joint", "reactive-joint", "cached"):
        result = results[name]
        rows.append(
            (
                name,
                f"{result.time_weighted_score:.2f}",
                str(result.num_searches),
                str(result.num_measurements),
            )
        )
    print()
    print(
        f"Dynamic traffic strategies — {len(epochs)} epochs, "
        f"{len({e.active_links for e in epochs})} distinct active sets"
    )
    print(format_table(rows, header_rule=True))

    table = ReportTable(title="§2 dynamic switching strategies")
    table.add(
        "adapting to the active set helps",
        "per-traffic-pattern switching pays",
        f"reactive {results['reactive-joint'].time_weighted_score:.2f} vs "
        f"static {results['static-joint'].time_weighted_score:.2f} dB",
        results["reactive-joint"].time_weighted_score
        >= results["static-joint"].time_weighted_score - 1e-9,
    )
    savings = results["reactive-joint"].num_measurements / max(
        results["cached"].num_measurements, 1
    )
    table.add(
        "caching per active set amortises the search",
        "optimise over likely link sets once (§2)",
        f"same score, {savings:.0f}x fewer soundings",
        results["cached"].time_weighted_score
        >= results["reactive-joint"].time_weighted_score - 1e-9
        and savings >= 3,
    )
    print(table.render())
    assert table.all_hold()
