#!/usr/bin/env python3
"""Channel prediction: measure 6 configurations, know all 64.

The PRESS channel is linear in the element reflection coefficients, so a
controller that measures the all-terminated configuration plus one
configuration per element can solve for the environment response and each
element's contribution — then *predict* every other configuration's channel
without touching the air.  This example identifies the model, validates its
predictions, picks the predicted-best switch setting, and compares the
whole exercise against the 64-measurement exhaustive sweep of §3.2.

Run:  python examples/channel_prediction.py
"""

import numpy as np

from repro.core import (
    ExhaustiveSearch,
    MinSnrObjective,
    fit_channel_model,
    identification_configurations,
    optimize_phases,
    predict_and_pick,
)
from repro.experiments import build_nlos_setup, used_subcarrier_mask


def main():
    setup = build_nlos_setup(placement_seed=2)
    array = setup.array
    mask = used_subcarrier_mask()

    schedule = identification_configurations(array)
    print(f"Identification schedule: {len(schedule)} configurations")
    for config in schedule:
        print(f"  measure {array.describe(config)}")

    cfrs = [
        setup.testbed.channel(setup.tx_device, setup.rx_device, c).cfr()[mask]
        for c in schedule
    ]
    model = fit_channel_model(array, schedule, cfrs, setup.testbed.frequency_hz)

    # Validate on configurations the model never saw.
    errors = []
    for rank in range(0, 64, 5):
        config = array.configuration_space().configuration_at(rank)
        predicted = model.predict_cfr(array, config)
        actual = setup.testbed.channel(
            setup.tx_device, setup.rx_device, config
        ).cfr()[mask]
        errors.append(np.linalg.norm(predicted - actual) / np.linalg.norm(actual))
    print(f"\nPrediction error on unseen configurations: "
          f"median {100 * np.median(errors):.2f}%, worst {100 * max(errors):.2f}%")

    # Pick the best configuration from predictions alone.
    predicted_best, _ = predict_and_pick(array, model, MinSnrObjective())

    def true_min(config):
        return float(
            setup.testbed.measure_csi(setup.tx_device, setup.rx_device, config)
            .snr_db[mask]
            .min()
        )

    truth = ExhaustiveSearch().search(array.configuration_space(), true_min)
    print(f"\npredicted best {array.describe(predicted_best)}: "
          f"{true_min(predicted_best):.2f} dB min-SNR "
          f"({len(schedule)} soundings)")
    print(f"exhaustive best {array.describe(truth.best)}: "
          f"{truth.best_score:.2f} dB min-SNR "
          f"({truth.num_evaluations} soundings)")
    print(f"-> {truth.num_evaluations / len(schedule):.0f}x fewer measurements, "
          f"{truth.best_score - true_min(predicted_best):.2f} dB quality gap")

    # What would continuous phase shifters buy (§4.1)?
    relaxed = optimize_phases(array, model)
    print(f"\ncontinuous-phase upper bound: {relaxed.continuous_min_db:.2f} dB "
          f"min channel gain\nrounded to SP4T states:      "
          f"{relaxed.quantized_min_db:.2f} dB "
          f"(quantisation loss {relaxed.quantization_loss_db:.2f} dB)")


if __name__ == "__main__":
    main()
