#!/usr/bin/env python3
"""Control-plane timing: can PRESS act inside the channel coherence time?

§2's core constraint: measure, search and actuate must all finish before
the channel decorrelates (~89 ms almost stationary, ~7 ms at running
speed), and packet-timescale switching wants 1-2 ms reconfiguration.  This
example prices each §4.2 control medium against those budgets and builds a
per-link packet-timescale switching schedule.

Run:  python examples/control_plane_timing.py
"""

from repro.analysis.reporting import format_table
from repro.control import (
    analyze_link,
    sub_ghz_ism_link,
    ultrasound_link,
    wifi_inband_link,
    wired_bus_link,
)
from repro.core import TimingModel, packet_timescale_schedule, pick_searcher
from repro.core.configuration import ConfigurationSpace
from repro.em.channel import coherence_time_s
from repro.sdr.timesync import SweepTiming


def main():
    num_elements = 16
    links = [wired_bus_link(), sub_ghz_ism_link(), wifi_inband_link(), ultrasound_link()]

    print(f"Control-plane latency budgets ({num_elements}-element array)\n")
    rows = [("medium", "actuation", "trials @0.5mph", "trials @6mph", "packet-scale")]
    reports = {}
    for link in links:
        report = analyze_link(link, num_elements)
        reports[link.name] = report
        rows.append(
            (
                report.link_name,
                f"{report.actuation_s * 1e3:.2f} ms",
                str(report.budget_stationary),
                str(report.budget_running),
                "yes" if report.packet_timescale_capable else "no",
            )
        )
    print(format_table(rows, header_rule=True))

    # What search strategy fits each budget for a 16-element, 4-state array?
    space = ConfigurationSpace(tuple([4] * num_elements))
    print(f"\nSearch strategy fitting each budget (space size {space.size:.2e}):")
    for name, report in reports.items():
        searcher = pick_searcher(space, max(report.budget_stationary, 1))
        print(f"  {name:12s} -> {type(searcher).__name__}")

    # The paper prototype's sweep vs coherence time.
    prototype = SweepTiming()
    stationary = coherence_time_s(0.5)
    print(f"\nPrototype sweep: {prototype.sweep_duration_s:.1f} s for 64 configs "
          f"vs {stationary * 1e3:.0f} ms coherence -> "
          f"{'exceeds' if prototype.exceeds_coherence(stationary) else 'fits'} "
          f"(hence the paper's 10-sweep averaging)")

    # Packet-timescale switching for three links sharing the array.  Only
    # the elements in each link's vicinity are switched per slot (§2
    # suggests focusing control on the elements near the receivers), so the
    # actuation cost is that of a 3-element group, not the full array.
    wired_actuation = analyze_link(wired_bus_link(), num_elements=3).actuation_s
    schedule = packet_timescale_schedule(
        ["link-A", "link-B", "link-C"],
        configuration_ranks=[3, 17, 42],
        slot_duration_s=1.5e-3,
        timing=TimingModel(actuation_latency_s=wired_actuation),
    )
    print(f"\nPacket-timescale schedule over the wired bus "
          f"(period {schedule.period_s * 1e3:.1f} ms, "
          f"feasible: {schedule.feasible}):")
    for slot in schedule.slots:
        print(f"  {slot.start_s * 1e3:5.2f} ms  {slot.link_name}  "
              f"-> configuration #{slot.configuration_rank}")


if __name__ == "__main__":
    main()
