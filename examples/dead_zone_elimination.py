#!/usr/bin/env python3
"""Dead-zone elimination: fixing the worst client position in a room.

§1 motivates PRESS with Wi-Fi "dead zones" — spots where destructive
multipath kills the link.  This example walks a client across the room,
finds the dead spot (lowest predicted goodput), then lets the PRESS
controller re-shape the channel for that spot and for every other position,
showing that the environment — not the endpoints — fixes the dead zone.

Run:  python examples/dead_zone_elimination.py
"""

import numpy as np

from repro.core import ArrayConfiguration, ExhaustiveSearch, ThroughputObjective
from repro.em.geometry import Point
from repro.experiments import StudyConfig, build_nlos_setup, used_subcarrier_mask
from repro.phy import expected_throughput_mbps
from repro.sdr.device import warp_v3


def main():
    config = StudyConfig(tx_power_dbm=0.0)
    setup = build_nlos_setup(placement_seed=2, config=config)
    mask = used_subcarrier_mask()
    space = setup.array.configuration_space()
    baseline_config = ArrayConfiguration((0, 0, 0))

    # Walk the client along a line on the far side of the blocker.
    rx0 = setup.rx_device.position
    positions = [Point(rx0.x + dx, rx0.y) for dx in np.linspace(-0.6, 0.6, 7)]

    print("Dead-zone elimination — goodput across client positions")
    print(f"  TX at ({setup.tx_device.position.x:.1f}, {setup.tx_device.position.y:.1f}),"
          f" blocked link, {setup.array.num_elements} PRESS elements\n")
    print(f"  {'client x':>9}  {'baseline':>9}  {'optimised':>9}  {'config':>14}")

    worst_before = None
    for position in positions:
        client = warp_v3("client", position)

        def measure(configuration):
            obs = setup.testbed.measure_csi(setup.tx_device, client, configuration)
            return obs.snr_db[mask]

        baseline_tput = expected_throughput_mbps(measure(baseline_config))
        objective = ThroughputObjective()
        result = ExhaustiveSearch().search(
            space, lambda cfg: objective(measure(cfg))
        )
        print(
            f"  {position.x:9.2f}  {baseline_tput:7.1f} M  {result.best_score:7.1f} M"
            f"  {setup.array.describe(result.best):>14}"
        )
        if worst_before is None or baseline_tput < worst_before[1]:
            worst_before = (position, baseline_tput, result.best_score)

    position, before, after = worst_before
    print(f"\n  dead zone at x = {position.x:.2f}: "
          f"{before:.1f} -> {after:.1f} Mbps ({after / max(before, 0.1):.1f}x)")
    print("  The radio endpoints never changed — only the walls did.")


if __name__ == "__main__":
    main()
