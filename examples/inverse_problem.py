#!/usr/bin/env python3
"""The §2 inverse problem, solved end to end.

Forward models predict the channel from path parameters; "PRESS demands the
inverse direction of this calculation".  This example runs both inverse
tools on the study scenario:

1. **Element-coefficient synthesis** — ask for the ambient null to be
   filled (target magnitude clamped to a floor, phases kept), solve the
   least-squares reflection coefficients, quantise onto the SP4T states,
   and compare ideal vs quantised spectra against the ambient one.
2. **Path-parameter recovery** — decompose a wideband (80 MHz) sounding of
   the ambient channel into discrete {gain, delay} paths by matching
   pursuit and check them against the ray tracer's ground truth.

Run:  python examples/inverse_problem.py
"""

import numpy as np

from repro.analysis.viz import render_profiles
from repro.core import (
    element_basis,
    matching_pursuit_paths,
    solve_element_coefficients,
    synthesize_configuration,
)
from repro.em.channel import subcarrier_frequencies
from repro.em.paths import paths_to_cfr
from repro.experiments import build_nlos_setup, used_subcarrier_mask


def main():
    setup = build_nlos_setup(placement_seed=2)
    mask = used_subcarrier_mask()
    freqs = subcarrier_frequencies()[mask]
    tracer = setup.testbed.tracer
    tx = setup.tx_device.position
    rx = setup.rx_device.position
    tx_antenna = setup.tx_device.chains[0].antenna
    rx_antenna = setup.rx_device.chains[0].antenna
    environment = tracer.trace(tx, rx, tx_antenna, rx_antenna)
    env_cfr = paths_to_cfr(environment, freqs)

    # --- 1. synthesise a null-free channel -------------------------------
    env_mag = np.abs(env_cfr)
    floor = np.median(env_mag) * 10 ** (-6.0 / 20.0)  # allow dips to -6 dB
    target = np.maximum(env_mag, floor) * np.exp(1j * np.angle(env_cfr))
    solution = synthesize_configuration(
        setup.array,
        target,
        environment,
        tx,
        rx,
        tracer,
        freqs,
        tx_antenna=tx_antenna,
        rx_antenna=rx_antenna,
    )
    basis = element_basis(
        setup.array, tx, rx, tracer, freqs, tx_antenna, rx_antenna
    )
    coefficients = solve_element_coefficients(target, env_cfr, basis)
    ideal_cfr = env_cfr + basis @ coefficients
    env_db = 20 * np.log10(env_mag)
    ideal_db = 20 * np.log10(np.maximum(np.abs(ideal_cfr), 1e-12))
    quantised_db = 20 * np.log10(np.maximum(np.abs(solution.achieved_cfr), 1e-12))
    offset = np.median(env_db)
    print("Inverse problem 1 — fill the ambient null (target: dips clamped to -6 dB):")
    print(render_profiles(
        [
            ("ambient  ", env_db - offset),
            ("ideal    ", ideal_db - offset),
            ("quantised", quantised_db - offset),
        ],
        lo=-20.0, hi=10.0,
    ))
    print(f"  worst-subcarrier gain vs median: ambient {env_db.min() - offset:.1f} dB"
          f" -> ideal {ideal_db.min() - offset:.1f} dB"
          f" -> quantised to {setup.array.describe(solution.configuration)}:"
          f" {quantised_db.min() - offset:.1f} dB")

    # --- 2. recover the path parameters ---------------------------------
    # Path recovery needs delay resolution ~1/bandwidth; the 16 MHz used
    # band cannot separate 21 ns from 35 ns, so sound over 80 MHz (a
    # wideband probe, as a deployment's occasional calibration sweep).
    wide_freqs = np.linspace(-40e6, 40e6, 256)
    wide_cfr = paths_to_cfr(environment, wide_freqs)
    recovered = matching_pursuit_paths(wide_cfr, wide_freqs, num_paths=6)
    truth = sorted(environment, key=lambda p: -p.power)[:4]
    print("\nInverse problem 2 — matching-pursuit path recovery:")
    print("  ground truth (top ray-traced paths):")
    for path in truth:
        print(f"    {1e9 * path.delay_s:7.1f} ns   "
              f"{10 * np.log10(path.power):6.1f} dB   {path.kind}")
    print("  recovered from the CFR alone:")
    for path in recovered[:4]:
        print(f"    {1e9 * path.delay_s:7.1f} ns   "
              f"{10 * np.log10(max(path.power, 1e-30)):6.1f} dB")
    residual = wide_cfr - paths_to_cfr(recovered, wide_freqs)
    print(f"  residual energy: "
          f"{100 * np.sum(np.abs(residual) ** 2) / np.sum(np.abs(wide_cfr) ** 2):.1f}%"
          f" of the input")


if __name__ == "__main__":
    main()
