#!/usr/bin/env python3
"""Large-MIMO conditioning: re-shaping the 2x2 channel matrix (§3.2.3).

Sweeps the 64 PRESS configurations of the MIMO study, then quantifies what
the Figure 8 condition-number change is worth in throughput-facing terms:
equal-power capacity and the zero-forcing power penalty.

Run:  python examples/mimo_conditioning.py
"""

import numpy as np

from repro.experiments import build_mimo_setup, run_fig8, used_subcarrier_mask
from repro.mimo import ofdm_capacity_bits, precoding_power_penalty_db


def main():
    print("Sweeping 64 PRESS configurations over the 2x2 MIMO link "
          "(50 averaged measurements each)...")
    result = run_fig8(measurements_per_config=50)

    best = result.best_configuration
    worst = result.worst_configuration
    print(f"  best conditioned:  {result.labels[best]}  "
          f"median {result.medians_db[best]:.2f} dB")
    print(f"  worst conditioned: {result.labels[worst]}  "
          f"median {result.medians_db[worst]:.2f} dB")
    print(f"  median gap: {result.median_gap_db:.2f} dB "
          f"(paper reports 1.5 dB)\n")

    # What the conditioning gap buys: capacity and ZF power penalty at the
    # two extreme configurations, on the exact (noiseless) channel.
    setup = build_mimo_setup(0)
    mask = used_subcarrier_mask()
    space = setup.array.configuration_space()
    snr_linear = 10.0 ** (20.0 / 10.0)  # 20 dB reference SNR
    for tag, index in (("best", best), ("worst", worst)):
        configuration = space.configuration_at(index)
        h = setup.testbed.mimo_matrices(setup.tx_device, setup.rx_device, configuration)
        h = h[mask]
        h_norm = h / np.sqrt(np.mean(np.abs(h) ** 2))
        capacity = ofdm_capacity_bits(h_norm, snr_linear)
        penalty = float(
            np.mean([precoding_power_penalty_db(matrix) for matrix in h_norm])
        )
        print(f"  {tag:5s} config: {capacity:.2f} bits/s/Hz equal-power capacity, "
              f"{penalty:.2f} dB mean ZF inversion penalty")

    print("\n  A lower condition number means less transmit power burned "
          "inverting the channel\n  — capacity recovered by the walls, not "
          "by more AP processing (§1).")


if __name__ == "__main__":
    main()
