#!/usr/bin/env python3
"""Network harmonization: splitting the band between two networks (§3.2.2).

Reproduces the Figure 7 workflow: find two PRESS configurations with
opposite frequency selectivity, then show the spectrum-partitioning payoff
of Figure 2 — each network keeps the half-band its configuration favours,
and the partitioned sum rate beats both the swapped assignment and the
unharmonized channel.

Run:  python examples/network_harmonization.py
"""

import numpy as np

from repro.experiments import run_fig7
from repro.net.harmonization import (
    HarmonizationPlan,
    best_partition,
    partitioned_sum_rate_bits,
)


def half_band_means(snr_db):
    half = snr_db.size // 2
    return float(np.mean(snr_db[:half])), float(np.mean(snr_db[half:]))


def main():
    print("Searching for an opposite-selectivity configuration pair "
          "(two 4-phase elements, no load)...")
    result = run_fig7()
    print(f"  scenario seed {result.placement_seed}, configurations "
          f"{result.label_a} and {result.label_b}\n")

    for name, snr, contrast in (
        ("A", result.snr_a, result.contrast_a_db),
        ("B", result.snr_b, result.contrast_b_db),
    ):
        lower, upper = half_band_means(snr)
        side = "upper" if contrast > 0 else "lower"
        print(f"  config {name}: lower half {lower:5.1f} dB, upper half "
              f"{upper:5.1f} dB  -> favours the {side} half")

    # Assign each network the half its configuration favours.
    lower_cfg = result.snr_a if result.contrast_a_db < 0 else result.snr_b
    upper_cfg = result.snr_b if result.contrast_a_db < 0 else result.snr_a
    half = lower_cfg.size // 2
    plan = HarmonizationPlan(boundary=half)
    matched = partitioned_sum_rate_bits(lower_cfg, upper_cfg, plan)
    swapped = partitioned_sum_rate_bits(upper_cfg, lower_cfg, plan)
    optimal_plan, optimal = best_partition(lower_cfg, upper_cfg)

    print(f"\n  partitioned sum rate (half-band split): {matched:.2f} bits/s/Hz")
    print(f"  ... with the assignment swapped:         {swapped:.2f} bits/s/Hz")
    print(f"  ... with the best split (boundary at subcarrier "
          f"{optimal_plan.boundary}): {optimal:.2f} bits/s/Hz")
    print(f"\n  harmonization gain over the swapped assignment: "
          f"{100 * (matched / swapped - 1):.0f}%")


if __name__ == "__main__":
    main()
