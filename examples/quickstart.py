#!/usr/bin/env python3
"""Quickstart: optimise one NLoS link with a PRESS array.

Builds the paper's §3 exploratory-study scenario (a blocked 2.5 m link in a
simulated lab, three SP4T-switched passive elements), runs the controller's
measure -> search -> actuate loop, and reports the link improvement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ArrayConfiguration,
    ExhaustiveSearch,
    PressController,
    ThroughputObjective,
)
from repro.experiments import StudyConfig, build_nlos_setup, used_subcarrier_mask
from repro.phy import expected_throughput_mbps, select_mcs


def ascii_profile(snr_db, width=52, lo=-5.0, hi=40.0):
    """One-line ASCII rendering of a per-subcarrier SNR profile."""
    glyphs = " .:-=+*#%@"
    span = hi - lo
    chars = []
    for value in snr_db:
        level = int((min(max(value, lo), hi) - lo) / span * (len(glyphs) - 1))
        chars.append(glyphs[level])
    return "".join(chars)


def main():
    # Placement 2 starts with a deep ambient null; 5 dBm TX power keeps the
    # link in the regime where the MCS ladder responds to the improvement.
    setup = build_nlos_setup(placement_seed=2, config=StudyConfig(tx_power_dbm=5.0))
    mask = used_subcarrier_mask()

    def measure(configuration):
        observation = setup.testbed.measure_csi(
            setup.tx_device, setup.rx_device, configuration
        )
        return observation.snr_db[mask]

    # Baseline: all stubs at phase 0.
    baseline_config = ArrayConfiguration((0, 0, 0))
    baseline = measure(baseline_config)

    controller = PressController(setup.array, measure, ThroughputObjective())
    decision = controller.optimize(searcher=ExhaustiveSearch())
    optimised = measure(decision.configuration)

    print("PRESS quickstart — enhancing a blocked (NLoS) link")
    print(f"  array: {setup.array.num_elements} passive elements, "
          f"{setup.array.configuration_space().size} configurations")
    print(f"  baseline config  {setup.array.describe(baseline_config)}")
    print(f"  optimised config {setup.array.describe(decision.configuration)} "
          f"({decision.search.num_evaluations} measurements, "
          f"{1e3 * decision.elapsed_s:.1f} ms, "
          f"within coherence: {decision.within_coherence})")
    print()
    print(f"  baseline  |{ascii_profile(baseline)}|  min {baseline.min():5.1f} dB")
    print(f"  optimised |{ascii_profile(optimised)}|  min {optimised.min():5.1f} dB")
    print()
    print(f"  worst-subcarrier SNR: {baseline.min():.1f} -> {optimised.min():.1f} dB "
          f"({optimised.min() - baseline.min():+.1f} dB)")
    print(f"  selected MCS: {select_mcs(baseline).data_rate_mbps:.0f} -> "
          f"{select_mcs(optimised).data_rate_mbps:.0f} Mbps")
    print(f"  predicted goodput: {expected_throughput_mbps(baseline):.1f} -> "
          f"{expected_throughput_mbps(optimised):.1f} Mbps")


if __name__ == "__main__":
    main()
