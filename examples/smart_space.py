#!/usr/bin/env python3
"""Capstone: a whole smart space, end to end.

One PRESS array serves three clients behind a blocker while traffic comes
and goes and a person walks through the room.  The run exercises the full
stack the way a deployment would:

1. render the floor plan;
2. identify the linear channel model per client (N+1 soundings each);
3. pick per-link configurations from predictions, cluster them into a
   hybrid plan, and build the packet-timescale switching schedule;
4. check the schedule against the control plane's actuation latency and
   each element's energy budget;
5. generate an on/off traffic trace and compare dynamic strategies.

Run:  python examples/smart_space.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.viz import render_scene
from repro.control import analyze_link, wired_bus_link
from repro.control.energy import (
    ElementPowerModel,
    EnergyBudget,
    indoor_light_harvester,
)
from repro.core import (
    LinkObjective,
    MinSnrObjective,
    TimingModel,
    fit_channel_model,
    identification_configurations,
    optimize_hybrid,
    predict_and_pick,
)
from repro.em.geometry import Point
from repro.experiments import (
    build_nlos_setup,
    evaluate_dynamic_strategies,
    generate_traffic,
    used_subcarrier_mask,
)
from repro.sdr.device import warp_v3


def main():
    setup = build_nlos_setup(placement_seed=2)
    mask = used_subcarrier_mask()
    array = setup.array
    space = array.configuration_space()

    clients = {
        f"client-{index}": warp_v3(
            f"client-{index}",
            Point(
                setup.rx_device.position.x + dx,
                setup.rx_device.position.y + dy,
            ),
        )
        for index, (dx, dy) in enumerate([(0.0, 0.0), (0.5, 0.4), (-0.3, 0.6)])
    }

    markers = {"T": setup.tx_device.position}
    for index, client in enumerate(clients.values()):
        markers[str(index)] = client.position
    print("Floor plan (T = AP, digits = clients, o = scatterers, X = blocker):")
    print(render_scene(setup.testbed.scene, markers=markers, width=56, height=18))

    # --- model-based per-link optimisation -----------------------------
    print("\nIdentifying the channel model per client "
          f"({len(identification_configurations(array))} soundings each):")
    links = []
    chosen = {}
    for name, client in clients.items():
        schedule = identification_configurations(array)
        cfrs = [
            setup.testbed.channel(setup.tx_device, client, c).cfr()[mask]
            for c in schedule
        ]
        model = fit_channel_model(array, schedule, cfrs, setup.testbed.frequency_hz)
        best, _ = predict_and_pick(array, model, MinSnrObjective())
        chosen[name] = best

        def measure(config, client=client):
            return setup.testbed.measure_csi(
                setup.tx_device, client, config
            ).snr_db[mask]

        links.append(LinkObjective(name=name, measure=measure, objective=MinSnrObjective()))
        print(f"  {name}: predicted best {array.describe(best)} "
              f"-> measured min-SNR {measure(best).min():.1f} dB")

    # --- hybrid clustering + switching schedule ------------------------
    plan = optimize_hybrid(links, space, tolerance=2.0)
    print(f"\nHybrid plan: {plan.num_distinct_configurations} distinct "
          f"configuration(s) for {len(links)} links "
          f"(per-link scores: "
          + ", ".join(f"{k} {v:.1f} dB" for k, v in plan.per_link_scores.items())
          + ")")

    wired = analyze_link(wired_bus_link(), num_elements=array.num_elements)
    schedule = plan.schedule(
        slot_duration_s=1.5e-3,
        timing=TimingModel(actuation_latency_s=wired.actuation_s),
        space=space,
    )
    print(f"packet-timescale schedule: period {schedule.period_s * 1e3:.1f} ms, "
          f"feasible over the wired bus: {schedule.feasible}")

    # --- energy sustainability ------------------------------------------
    switches_per_second = len(schedule.slots) / schedule.period_s
    budget = EnergyBudget(
        element=ElementPowerModel(),
        harvester=indoor_light_harvester(area_cm2=25.0),
    )
    sustainable = budget.is_sustainable(switches_per_second)
    print(f"per-element switching rate {switches_per_second:.0f}/s -> "
          f"sustainable on a 25 cm^2 light harvester: {sustainable} "
          f"(max sustainable {budget.max_sustainable_switch_rate():.0f}/s)")
    if not sustainable:
        # Packet-timescale switching is power hungry; size the harvester for
        # it (or switch element groups less often — the §4.1 tiering).
        draw = budget.element.average_power_w(switches_per_second)
        area = draw / 10e-6  # 10 uW/cm^2 office light
        print(f"  -> would need a ~{area:.0f} cm^2 cell, or per-group "
              f"switching to cut the rate")

    # --- dynamic traffic --------------------------------------------------
    rng = np.random.default_rng(7)
    epochs = generate_traffic(list(clients), 120.0, rng)
    results = evaluate_dynamic_strategies(links, space, epochs)
    rows = [("strategy", "score [dB]", "searches", "soundings")]
    for name in ("static-joint", "reactive-joint", "cached"):
        result = results[name]
        rows.append(
            (
                name,
                f"{result.time_weighted_score:.2f}",
                str(result.num_searches),
                str(result.num_measurements),
            )
        )
    print(f"\nDynamic traffic over 120 s "
          f"({len({e.active_links for e in epochs})} recurring active sets):")
    print(format_table(rows, header_rule=True))


if __name__ == "__main__":
    main()
