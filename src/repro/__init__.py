"""PRESS: Programmable Radio Environments for Smart Spaces.

A full-system reproduction of the HotNets 2017 paper: a programmable-
reflector (PRESS / reconfigurable-intelligent-surface precursor) control
stack plus every substrate its evaluation needs, in pure Python:

* :mod:`repro.em` — indoor multipath propagation (image-method ray tracer,
  antennas, materials, the parametric signal model, fading, noise);
* :mod:`repro.phy` — the Wi-Fi-like 64-subcarrier OFDM PHY (coding,
  modulation, framing, channel estimation, rate adaptation);
* :mod:`repro.mimo` — channel matrices, conditioning, capacity, precoding;
* :mod:`repro.sdr` — simulated WARP/USRP devices and the testbed harness;
* :mod:`repro.core` — the PRESS contribution: switched reflector elements,
  arrays, objectives, search, the inverse problem, controller, scheduler;
* :mod:`repro.control` — control-plane media, protocol and latency budgets;
* :mod:`repro.net` — interference and network-harmonization metrics;
* :mod:`repro.experiments` — drivers regenerating Figures 4-8;
* :mod:`repro.analysis` — CCDFs, null statistics, report tables.

Quickstart::

    from repro.experiments import build_nlos_setup
    from repro.core import MinSnrObjective, PressController

    setup = build_nlos_setup(placement_seed=0)

    def measure(configuration):
        obs = setup.testbed.measure_csi(setup.tx_device, setup.rx_device, configuration)
        return obs.snr_db

    controller = PressController(setup.array, measure, MinSnrObjective())
    decision = controller.optimize()
    print(setup.array.describe(decision.configuration))
"""

__version__ = "1.0.0"

from . import analysis, control, core, em, experiments, mimo, net, phy, sdr
from .constants import (
    BANDWIDTH_HZ,
    CARRIER_FREQUENCY_HZ,
    NUM_SUBCARRIERS,
    SPEED_OF_LIGHT,
    WAVELENGTH_M,
)

__all__ = [
    "__version__",
    "em",
    "phy",
    "mimo",
    "sdr",
    "core",
    "control",
    "net",
    "experiments",
    "analysis",
    "SPEED_OF_LIGHT",
    "CARRIER_FREQUENCY_HZ",
    "BANDWIDTH_HZ",
    "NUM_SUBCARRIERS",
    "WAVELENGTH_M",
]
