"""Analysis: statistics, null detection, figure metrics, reports, repro lint."""

from .linter import Finding, run_lint, run_lint_source
from .metrics import (
    ConfigPairGap,
    fraction_of_pairs_with_change,
    largest_single_subcarrier_gap,
    min_snr_changes,
    min_snrs,
)
from .nulls import (
    NULL_THRESHOLD_DB,
    has_null,
    most_significant_null,
    null_depth_db,
    null_movements,
)
from .reporting import Comparison, ReportTable, format_table
from .stats import EmpiricalDistribution, ccdf, cdf
from .viz import render_profile, render_profiles, render_scene, sparkline

__all__ = [
    "Finding",
    "run_lint",
    "run_lint_source",
    "EmpiricalDistribution",
    "cdf",
    "ccdf",
    "NULL_THRESHOLD_DB",
    "most_significant_null",
    "null_depth_db",
    "has_null",
    "null_movements",
    "ConfigPairGap",
    "largest_single_subcarrier_gap",
    "min_snrs",
    "min_snr_changes",
    "fraction_of_pairs_with_change",
    "Comparison",
    "ReportTable",
    "format_table",
    "render_scene",
    "render_profile",
    "render_profiles",
    "sparkline",
]
