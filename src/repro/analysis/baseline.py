"""Baseline ("grandfather") file for ``repro lint``.

A baseline lets the linter land with strict rules before every historical
violation is fixed: ``repro lint --update-baseline`` records the current
findings, and subsequent runs only fail on findings *not* in the file.
Entries are keyed by :meth:`Finding.fingerprint` — path + rule + stripped
source line — so edits elsewhere in a file don't invalidate them, and a
count per fingerprint handles several identical violations in one file.

The shipped baseline is empty (every real violation was fixed instead);
the machinery exists for future rule additions, where a new rule may
surface violations that need staged cleanup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .linter import Finding

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "apply_baseline",
    "load_baseline",
    "prune_baseline",
    "save_baseline",
    "stale_entries",
]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> allowed-occurrence budget, plus debugging context."""

    counts: Dict[str, int] = field(default_factory=dict)
    context: Dict[str, dict] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    counts: Dict[str, int] = {}
    context: Dict[str, dict] = {}
    for key, entry in data.get("findings", {}).items():
        counts[str(key)] = int(entry.get("count", 1))
        context[str(key)] = {
            "path": entry.get("path", ""),
            "rule": entry.get("rule", ""),
            "snippet": entry.get("snippet", ""),
        }
    return Baseline(counts=counts, context=context)


def save_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> None:
    """Write the baseline capturing ``findings`` (deterministic JSON)."""
    entries: Dict[str, dict] = {}
    for finding in findings:
        key = finding.fingerprint()
        entry = entries.get(key)
        if entry is None:
            entries[key] = {
                "path": finding.path,
                "rule": finding.rule,
                "snippet": finding.snippet.strip(),
                "count": 1,
            }
        else:
            entry["count"] += 1
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], int]:
    """Split findings into (fresh, baselined-count).

    Each fingerprint suppresses at most its recorded count, so a file
    that *grows* a second copy of a grandfathered violation still fails.
    """
    remaining = dict(baseline.counts)
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        key = finding.fingerprint()
        budget = remaining.get(key, 0)
        if budget > 0:
            remaining[key] = budget - 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched


def stale_entries(
    findings: Sequence[Finding], baseline: Baseline
) -> Dict[str, int]:
    """Fingerprint -> unused budget: grandfathered violations now fixed.

    A stale entry is dead weight with a cost — if the violation ever
    comes back, the leftover budget silently re-grandfathers it.  The
    CLI warns on stale entries and ``--prune-baseline`` drops them.
    """
    remaining = dict(baseline.counts)
    for finding in findings:
        key = finding.fingerprint()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
    return {key: count for key, count in sorted(remaining.items()) if count > 0}


def prune_baseline(
    path: Union[str, Path], findings: Sequence[Finding], baseline: Baseline
) -> int:
    """Rewrite ``path`` keeping only budgets current findings consume.

    Each fingerprint's count is clamped to the number of live matches;
    entries with no live match disappear entirely.  Returns the number
    of occurrence budgets dropped (0 means the file was already tight).
    """
    live: Dict[str, int] = {}
    for finding in findings:
        key = finding.fingerprint()
        if key in baseline.counts:
            live[key] = live.get(key, 0) + 1
    entries: Dict[str, dict] = {}
    dropped = 0
    for key, count in baseline.counts.items():
        kept = min(count, live.get(key, 0))
        dropped += count - kept
        if kept > 0:
            entry = dict(baseline.context.get(key, {}))
            entry["count"] = kept
            entries[key] = entry
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return dropped
