"""Baseline ("grandfather") file for ``repro lint``.

A baseline lets the linter land with strict rules before every historical
violation is fixed: ``repro lint --update-baseline`` records the current
findings, and subsequent runs only fail on findings *not* in the file.
Entries are keyed by :meth:`Finding.fingerprint` — path + rule + stripped
source line — so edits elsewhere in a file don't invalidate them, and a
count per fingerprint handles several identical violations in one file.

The shipped baseline is empty (every real violation was fixed instead);
the machinery exists for future rule additions, where a new rule may
surface violations that need staged cleanup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .linter import Finding

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> allowed-occurrence budget, plus debugging context."""

    counts: Dict[str, int] = field(default_factory=dict)
    context: Dict[str, dict] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    counts: Dict[str, int] = {}
    context: Dict[str, dict] = {}
    for key, entry in data.get("findings", {}).items():
        counts[str(key)] = int(entry.get("count", 1))
        context[str(key)] = {
            "path": entry.get("path", ""),
            "rule": entry.get("rule", ""),
            "snippet": entry.get("snippet", ""),
        }
    return Baseline(counts=counts, context=context)


def save_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> None:
    """Write the baseline capturing ``findings`` (deterministic JSON)."""
    entries: Dict[str, dict] = {}
    for finding in findings:
        key = finding.fingerprint()
        entry = entries.get(key)
        if entry is None:
            entries[key] = {
                "path": finding.path,
                "rule": finding.rule,
                "snippet": finding.snippet.strip(),
                "count": 1,
            }
        else:
            entry["count"] += 1
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], int]:
    """Split findings into (fresh, baselined-count).

    Each fingerprint suppresses at most its recorded count, so a file
    that *grows* a second copy of a grandfathered violation still fails.
    """
    remaining = dict(baseline.counts)
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        key = finding.fingerprint()
        budget = remaining.get(key, 0)
        if budget > 0:
            remaining[key] = budget - 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched
