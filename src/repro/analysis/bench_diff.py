"""Benchmark drift detection: compare BENCH_*.json against baselines.

The committed ``BENCH_*.json`` files are the repo's performance ledger:
each benchmark suite rewrites its file on a full (non-smoke) run, and the
diff is reviewed like any other code change.  This module makes that
review mechanical — ``repro bench-diff`` flattens the current files and a
baseline (the committed version from git, or an explicit directory) into
dotted-key scalars and reports:

* **structural drift** — metrics that vanished or appeared (a renamed
  key silently breaks longitudinal comparisons);
* **numeric drift** — metrics whose relative change exceeds a tolerance,
  with per-metric overrides (throughput on a shared CI box deserves a
  looser leash than an algorithmic count).

``--keys-only`` restricts to structural checks, the mode CI runs: timing
numbers are machine-dependent, but the *shape* of the ledger must never
change by accident.
"""

from __future__ import annotations

import fnmatch
import json
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DiffEntry",
    "compare_benchmarks",
    "discover_bench_files",
    "flatten_json",
    "load_git_baseline",
    "parse_metric_tolerances",
]

#: Default relative tolerance for numeric metrics.  Generous on purpose:
#: the committed numbers come from whatever machine last ran the full
#: suite, so only large regressions should trip a default-config diff.
DEFAULT_TOLERANCE = 0.5

#: Relative change below which a metric never trips, regardless of the
#: relative tolerance (guards tiny baselines where noise dominates).
ABSOLUTE_FLOOR = 1e-9


@dataclass(frozen=True)
class DiffEntry:
    """One finding from a benchmark comparison.

    ``kind`` is ``"missing"`` (in baseline, not current), ``"added"``
    (in current, not baseline), ``"numeric"`` (relative change above
    tolerance) or ``"value"`` (non-numeric mismatch).
    """

    file: str
    key: str
    kind: str
    baseline: object
    current: object
    rel_delta: float = 0.0
    tolerance: float = 0.0

    def describe(self) -> str:
        if self.kind == "missing":
            return f"{self.file}:{self.key}: missing (baseline {self.baseline!r})"
        if self.kind == "added":
            return f"{self.file}:{self.key}: added (current {self.current!r})"
        if self.kind == "numeric":
            return (
                f"{self.file}:{self.key}: {self.baseline!r} -> "
                f"{self.current!r} ({self.rel_delta:+.1%}, "
                f"tolerance {self.tolerance:.0%})"
            )
        return f"{self.file}:{self.key}: {self.baseline!r} != {self.current!r}"


def flatten_json(value, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts/lists into dotted-key scalars.

    Lists flatten by index (``edges.0``, ``edges.1`` ...), so a length
    change shows up as missing/added keys rather than an opaque value
    mismatch.
    """
    flat: Dict[str, object] = {}
    if isinstance(value, Mapping):
        for key in sorted(value):
            child = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_json(value[key], child))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            child = f"{prefix}.{index}" if prefix else str(index)
            flat.update(flatten_json(item, child))
    else:
        flat[prefix or ""] = value
    return flat


def parse_metric_tolerances(specs: Sequence[str]) -> Dict[str, float]:
    """Parse ``PATTERN=REL`` per-metric tolerance overrides.

    ``PATTERN`` is an ``fnmatch`` glob over flattened keys
    (``*throughput*=0.8``); the first matching pattern (in given order)
    wins.
    """
    overrides: Dict[str, float] = {}
    for spec in specs:
        pattern, sep, value = spec.partition("=")
        if not sep or not pattern:
            raise ValueError(
                f"bad metric tolerance {spec!r} (want PATTERN=REL)"
            )
        overrides[pattern] = float(value)
    return overrides


def _tolerance_for(
    key: str, default: float, overrides: Mapping[str, float]
) -> float:
    for pattern, value in overrides.items():
        if fnmatch.fnmatch(key, pattern):
            return value
    return default


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_benchmarks(
    baseline: Mapping,
    current: Mapping,
    file: str = "",
    tolerance: float = DEFAULT_TOLERANCE,
    metric_tolerances: Optional[Mapping[str, float]] = None,
    keys_only: bool = False,
) -> List[DiffEntry]:
    """Diff two benchmark documents; returns the findings (empty = clean)."""
    overrides = dict(metric_tolerances or {})
    base_flat = flatten_json(baseline)
    curr_flat = flatten_json(current)
    findings: List[DiffEntry] = []
    for key in sorted(base_flat.keys() | curr_flat.keys()):
        if key not in curr_flat:
            findings.append(
                DiffEntry(file, key, "missing", base_flat[key], None)
            )
            continue
        if key not in base_flat:
            findings.append(DiffEntry(file, key, "added", None, curr_flat[key]))
            continue
        if keys_only:
            continue
        base_value, curr_value = base_flat[key], curr_flat[key]
        if _is_number(base_value) and _is_number(curr_value):
            delta = abs(float(curr_value) - float(base_value))
            if delta <= ABSOLUTE_FLOOR:
                continue
            scale = max(abs(float(base_value)), ABSOLUTE_FLOOR)
            rel = (float(curr_value) - float(base_value)) / scale
            limit = _tolerance_for(key, tolerance, overrides)
            if abs(rel) > limit:
                findings.append(
                    DiffEntry(
                        file,
                        key,
                        "numeric",
                        base_value,
                        curr_value,
                        rel_delta=rel,
                        tolerance=limit,
                    )
                )
        elif base_value != curr_value:
            findings.append(
                DiffEntry(file, key, "value", base_value, curr_value)
            )
    return findings


def discover_bench_files(root: str = ".") -> List[str]:
    """The benchmark ledger files under ``root`` (sorted by name)."""
    return sorted(
        str(path.relative_to(root)) for path in Path(root).glob("BENCH_*.json")
    )


def load_git_baseline(
    path: str, ref: str = "HEAD", root: str = "."
) -> Optional[dict]:
    """Load ``path``'s content at ``ref`` from git (None when absent).

    ``path`` is relative to ``root`` (the repository worktree).  Returns
    ``None`` when the file does not exist at that ref or the tree is not
    a git repository — callers report that as a skipped comparison, not
    an error, so bench-diff works in exported tarballs too.
    """
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{path}"],
            cwd=root,
            capture_output=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        document = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return document if isinstance(document, dict) else None


def diff_against_git(
    root: str = ".",
    ref: str = "HEAD",
    files: Optional[Sequence[str]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    metric_tolerances: Optional[Mapping[str, float]] = None,
    keys_only: bool = False,
) -> Tuple[List[DiffEntry], List[str], List[str]]:
    """Compare working-tree BENCH files against their committed versions.

    Returns ``(findings, compared, skipped)`` where ``compared`` and
    ``skipped`` list the file names that were / could not be diffed
    (missing from the ref, or unparseable).
    """
    names = list(files) if files else discover_bench_files(root)
    findings: List[DiffEntry] = []
    compared: List[str] = []
    skipped: List[str] = []
    for name in names:
        baseline = load_git_baseline(name, ref=ref, root=root)
        try:
            with open(Path(root) / name, "r", encoding="utf-8") as stream:
                current = json.load(stream)
        except (OSError, json.JSONDecodeError):
            current = None
        if baseline is None or not isinstance(current, dict):
            skipped.append(name)
            continue
        compared.append(name)
        findings.extend(
            compare_benchmarks(
                baseline,
                current,
                file=name,
                tolerance=tolerance,
                metric_tolerances=metric_tolerances,
                keys_only=keys_only,
            )
        )
    return findings, compared, skipped


__all__.append("diff_against_git")
