"""Project-wide analysis layer: module index, symbol table, call graph.

The per-file rules of :mod:`repro.analysis.rules` see one module at a
time, which is exactly the wrong granularity for the bug classes that
threaten the serving stack: every one of them — a blocking call buried
two helpers below an ``async def``, a coroutine minted by an imported
function and never awaited, an unpicklable payload assembled in another
module — crosses a function or file boundary.  This module gives rules a
whole-program view:

* :class:`ProjectIndex` parses every linted file once, derives dotted
  module names, absolutizes import aliases (including relative imports
  and ``__init__.py`` re-export chains), and indexes every function,
  method, nested function and class under a fully qualified name.
* :class:`CallGraph` resolves the call sites of each function body
  against that symbol table — direct names, imported names, attribute
  chains rooted at module aliases, ``self.method()`` dispatch (including
  through base classes defined in the project), and class instantiation
  (an edge to ``__init__``) — into a deterministic edge list with a
  reverse adjacency for caller-directed propagation.
* :class:`ProjectContext` packages the index, the graph and the per-file
  :class:`~repro.analysis.linter.LintContext` objects so a graph-aware
  rule can emit findings that respect each file's suppression pragmas.

Resolution is deliberately conservative: a call that cannot be resolved
statically (dynamic dispatch, callbacks, instance attributes of unknown
type) simply has no edge, so graph rules under-approximate reachability
rather than inventing it.  Everything is deterministic — files are
indexed in sorted order and edges stored in source order — so lint
output is stable across runs and machines.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .linter import LintContext

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectContext",
    "ProjectIndex",
    "module_name_for",
]

#: Scope separator used in qualified names of nested functions, mirroring
#: the runtime ``__qualname__`` convention (``outer.<locals>.inner``).
LOCALS = "<locals>"


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    Preference order: the part after the last ``src`` path component
    (the layout of this repo and of ``run_lint_source``'s synthetic
    paths); otherwise the chain of enclosing packages found by walking
    up while ``__init__.py`` files exist (the layout of test fixture
    trees); otherwise the bare file stem.
    """
    pure = Path(path)
    parts = list(pure.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        tail = parts[anchor + 1 :]
        if tail:
            return ".".join(tail)
    if pure.exists():
        names = [pure.stem] if pure.stem != "__init__" else []
        parent = pure.resolve().parent
        while (parent / "__init__.py").exists():
            names.insert(0, parent.name)
            parent = parent.parent
        if names:
            return ".".join(names)
    return parts[-1] if parts else pure.stem


def _absolutize(target: str, module: str, is_package: bool) -> str:
    """Turn a possibly-relative import target into an absolute dotted name."""
    if not target.startswith("."):
        return target
    level = len(target) - len(target.lstrip("."))
    rest = target[level:]
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    parts = parts[: len(parts) - (level - 1)] if level > 1 else parts
    if rest:
        parts = [*parts, *rest.split(".")]
    return ".".join(part for part in parts if part)


@dataclass(frozen=True)
class FunctionInfo:
    """One function/method/nested function definition in the project."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    is_async: bool
    class_name: Optional[str]
    params: Tuple[str, ...]
    node: ast.AST = field(compare=False, repr=False)

    @property
    def is_nested(self) -> bool:
        return LOCALS in self.qualname

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: bases, methods, and annotated fields."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]
    #: ``(field name, resolved dotted names appearing in its annotation)``
    #: from class-level ``AnnAssign`` plus ``self.x = Ctor()`` in __init__.
    field_types: Tuple[Tuple[str, Tuple[str, ...]], ...]
    node: ast.AST = field(compare=False, repr=False)


class ModuleInfo:
    """One indexed module: absolutized imports plus top-level bindings."""

    def __init__(self, name: str, context: LintContext) -> None:
        self.name = name
        self.context = context
        self.path = context.path
        is_package = Path(context.path).name == "__init__.py"
        #: local alias -> absolute dotted target
        self.imports: Dict[str, str] = {
            local: _absolutize(target, name, is_package)
            for local, target in context.imports._aliases.items()
        }
        #: names bound by top-level assignments (module globals).
        self.global_names: Set[str] = set()
        for stmt in context.tree.body:
            for target in _binding_targets(stmt):
                self.global_names.add(target)


def _binding_targets(stmt: ast.stmt) -> Iterator[str]:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    yield node.id
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(stmt.target, ast.Name):
            yield stmt.target.id
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield stmt.name


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return ()
    args = node.args
    params = [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]
    return tuple(arg.arg for arg in params)


def _annotation_names(node: ast.AST, imports: "ModuleInfo") -> Tuple[str, ...]:
    """Resolved dotted names appearing anywhere in an annotation expr."""
    found: List[str] = []
    for child in ast.walk(node):
        dotted = _dotted_of(child)
        if dotted is None:
            continue
        head, _, tail = dotted.partition(".")
        target = imports.imports.get(head)
        if target is not None:
            found.append(f"{target}.{tail}" if tail else target)
        else:
            found.append(dotted)
    return tuple(dict.fromkeys(found))


def _dotted_of(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    return ".".join([node.id, *reversed(chain)])


class ProjectIndex:
    """Symbol table over every linted module.

    ``functions`` and ``classes`` are keyed by fully qualified dotted
    names (``repro.serve.work.search_task``,
    ``repro.serve.service.EnvironmentService``); :meth:`resolve` maps an
    absolute dotted name to its canonical definition, chasing import
    aliases and ``__init__.py`` re-exports with cycle protection.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    @classmethod
    def build(cls, contexts: Sequence[LintContext]) -> "ProjectIndex":
        index = cls()
        for context in sorted(contexts, key=lambda c: c.path):
            index._add_module(context)
        return index

    # -- indexing -------------------------------------------------------

    def _add_module(self, context: LintContext) -> None:
        name = module_name_for(context.path)
        module = ModuleInfo(name, context)
        self.modules[name] = module
        self._index_body(module, context.tree.body, scope=name, class_name=None)

    def _index_body(
        self,
        module: ModuleInfo,
        body: Sequence[ast.stmt],
        scope: str,
        class_name: Optional[str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{scope}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=module.name,
                    name=stmt.name,
                    path=module.path,
                    lineno=stmt.lineno,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    class_name=class_name,
                    params=_param_names(stmt),
                    node=stmt,
                )
                self._index_body(
                    module, stmt.body, f"{qualname}.{LOCALS}", class_name=None
                )
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{scope}.{stmt.name}"
                self._index_class(module, stmt, qualname)

    def _index_class(
        self, module: ModuleInfo, node: ast.ClassDef, qualname: str
    ) -> None:
        methods: List[str] = []
        fields: List[Tuple[str, Tuple[str, ...]]] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields.append(
                    (stmt.target.id, _annotation_names(stmt.annotation, module))
                )
        bases = tuple(
            resolved
            for base in node.bases
            for resolved in [self._resolve_in_module(module, _dotted_of(base))]
            if resolved is not None
        )
        self.classes[qualname] = ClassInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            path=module.path,
            lineno=node.lineno,
            bases=bases,
            methods=tuple(methods),
            field_types=tuple(fields),
            node=node,
        )
        self._index_body(module, node.body, qualname, class_name=node.name)
        # ``self.x = Ctor()`` fields in __init__ join the annotated ones.
        init = self.functions.get(f"{qualname}.__init__")
        if init is not None and isinstance(init.node, ast.FunctionDef):
            extra: List[Tuple[str, Tuple[str, ...]]] = []
            for stmt in ast.walk(init.node):
                if (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Attribute)
                    and isinstance(stmt.targets[0].value, ast.Name)
                    and stmt.targets[0].value.id == "self"
                ):
                    dotted = _dotted_of(stmt.value.func)
                    resolved = self._resolve_in_module(module, dotted)
                    if resolved is not None:
                        extra.append((stmt.targets[0].attr, (resolved,)))
            if extra:
                info = self.classes[qualname]
                self.classes[qualname] = ClassInfo(
                    qualname=info.qualname,
                    module=info.module,
                    name=info.name,
                    path=info.path,
                    lineno=info.lineno,
                    bases=info.bases,
                    methods=info.methods,
                    field_types=info.field_types + tuple(extra),
                    node=info.node,
                )

    # -- resolution -----------------------------------------------------

    def _resolve_in_module(
        self, module: ModuleInfo, dotted: Optional[str]
    ) -> Optional[str]:
        """Resolve a dotted name as seen from ``module`` to a canonical one."""
        if dotted is None:
            return None
        head, _, tail = dotted.partition(".")
        local = f"{module.name}.{dotted}"
        if local in self.functions or local in self.classes:
            return local
        target = module.imports.get(head)
        if target is not None:
            return self.resolve(f"{target}.{tail}" if tail else target)
        return self.resolve(dotted)

    def resolve(self, dotted: str, _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Canonical definition for an absolute dotted name, or ``None``.

        Chases re-exports: ``pkg.helper`` where ``pkg/__init__.py`` does
        ``from .impl import helper`` resolves to ``pkg.impl.helper``.
        """
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        if dotted in self.functions or dotted in self.classes:
            return dotted
        if dotted in self.modules:
            return dotted
        # Longest known module prefix, then chase the remainder through
        # that module's imports (the re-export case).
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            first = parts[cut]
            rest = ".".join(parts[cut + 1 :])
            target = module.imports.get(first)
            if target is None:
                return None
            chased = f"{target}.{rest}" if rest else target
            return self.resolve(chased, seen)
        return None

    def function(self, qualname: Optional[str]) -> Optional[FunctionInfo]:
        if qualname is None:
            return None
        return self.functions.get(qualname)

    def method_of(self, class_qualname: str, name: str) -> Optional[str]:
        """Resolve a method through a class and its project-local bases."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            candidate = f"{current}.{name}"
            if candidate in self.functions:
                return candidate
            stack.extend(info.bases)
        return None


@dataclass(frozen=True)
class CallSite:
    """One resolved (or unresolved) call inside a function body."""

    caller: str
    #: Canonical qualified name of the target definition (function, class
    #: or module), or ``None`` when resolution failed.
    callee: Optional[str]
    #: The absolute dotted name as written (post import-chase), kept even
    #: for calls into external libraries — rules match these for
    #: primitives like ``time.sleep``.
    dotted: Optional[str]
    path: str
    node: ast.Call = field(compare=False, repr=False)


class CallGraph:
    """Deterministic call edges over a :class:`ProjectIndex`.

    Each function body (nested defs excluded — they are their own nodes)
    contributes its call sites in source order.  Module-level code is
    attributed to a synthetic ``<module>`` function per module so
    import-time calls participate in propagation too.
    """

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.sites: Dict[str, List[CallSite]] = {}
        self.callers: Dict[str, List[CallSite]] = {}
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            self._add_function(info)
        for name in sorted(index.modules):
            module = index.modules[name]
            self._add_module_level(module)

    # -- construction ---------------------------------------------------

    def _add_function(self, info: FunctionInfo) -> None:
        module = self.index.modules[info.module]
        sites = [
            self._resolve_site(info.qualname, module, call, info)
            for call in _own_calls(info.node)
        ]
        self._store(info.qualname, sites)

    def _add_module_level(self, module: ModuleInfo) -> None:
        calls: List[ast.Call] = []
        for stmt in module.context.tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    calls.append(node)
        qualname = f"{module.name}.<module>"
        sites = [
            self._resolve_site(qualname, module, call, None) for call in calls
        ]
        self._store(qualname, sites)

    def _store(self, qualname: str, sites: List[CallSite]) -> None:
        self.sites[qualname] = sites
        for site in sites:
            if site.callee is not None:
                self.callers.setdefault(site.callee, []).append(site)

    def _resolve_site(
        self,
        caller: str,
        module: ModuleInfo,
        call: ast.Call,
        owner: Optional[FunctionInfo],
    ) -> CallSite:
        dotted = _dotted_of(call.func)
        callee: Optional[str] = None
        resolved_dotted = dotted
        if dotted is not None:
            head, _, tail = dotted.partition(".")
            if head == "self" and owner is not None and owner.class_name is not None:
                # ``self.method()`` / ``self.attr.x()``: resolve one level.
                if tail and "." not in tail:
                    class_qual = f"{owner.module}.{owner.class_name}"
                    callee = self.index.method_of(class_qual, tail)
            else:
                # Absolute form of the written name (for external matches).
                target = module.imports.get(head)
                if target is not None:
                    resolved_dotted = f"{target}.{tail}" if tail else target
                callee = self._resolve_scoped(caller, module, dotted)
        callee = self._through_class(caller, callee)
        return CallSite(
            caller=caller,
            callee=callee,
            dotted=resolved_dotted,
            path=module.path,
            node=call,
        )

    def _resolve_scoped(
        self, caller: str, module: ModuleInfo, dotted: str
    ) -> Optional[str]:
        """Resolve a name seen from inside ``caller``'s scope chain.

        A nested function's body first sees sibling definitions in each
        enclosing scope (``outer.<locals>.helper``), then module scope,
        then imports.
        """
        scope = caller
        while True:
            candidate = f"{scope}.{LOCALS}.{dotted}"
            if candidate in self.index.functions or candidate in self.index.classes:
                return candidate
            if LOCALS not in scope:
                break
            scope = scope.rsplit(f".{LOCALS}.", 1)[0]
        return self.index._resolve_in_module(module, dotted)

    def _through_class(
        self, caller: str, callee: Optional[str]
    ) -> Optional[str]:
        """Instantiating a class is an edge to its (possibly inherited)
        ``__init__``; classes without one stay class-valued targets."""
        if callee is None or callee not in self.index.classes:
            return callee
        init = self.index.method_of(callee, "__init__")
        return init if init is not None else callee

    # -- queries --------------------------------------------------------

    def resolve_dotted(self, caller: str, dotted: str) -> Optional[str]:
        """Resolve a dotted name as seen from inside ``caller``'s scope.

        The non-call counterpart of call-site resolution: rules use it
        for function *values* (a pool-submitted ``work.search_task``)
        and for constructor names inside payload expressions.
        """
        info = self.index.functions.get(caller)
        if info is not None:
            module = self.index.modules.get(info.module)
        else:
            module_name = caller.rsplit(".<module>", 1)[0]
            module = self.index.modules.get(module_name)
        if module is None:
            return None
        return self._resolve_scoped(caller, module, dotted)

    def calls_from(self, qualname: str) -> List[CallSite]:
        return self.sites.get(qualname, [])

    def calls_to(self, qualname: str) -> List[CallSite]:
        return self.callers.get(qualname, [])

    def functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.index.functions):
            yield self.index.functions[qualname]


def _own_calls(function: ast.AST) -> Iterator[ast.Call]:
    """Calls in a function's body, excluding nested function/class bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop(0)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class ProjectContext:
    """Everything a graph-aware rule needs: index, graph, file contexts."""

    def __init__(self, contexts: Sequence[LintContext]) -> None:
        self.contexts: Dict[str, LintContext] = {c.path: c for c in contexts}
        self.index = ProjectIndex.build(contexts)
        self.graph = CallGraph(self.index)

    def context_for(self, path: str) -> Optional[LintContext]:
        return self.contexts.get(path)

    def in_serve(self, info: FunctionInfo) -> bool:
        """Whether a function lives in the serving layer (``serve/``)."""
        context = self.context_for(info.path)
        if context is None:
            return False
        return context.in_repro_src and "serve" in Path(info.path).parts
