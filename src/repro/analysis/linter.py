"""``repro lint``: AST-based invariant checker for reproducibility contracts.

The test suite can only spot-check the properties every result in this
repo rests on — bit-identical runs at any ``--jobs``, explicit
``numpy.random.Generator`` threading, no wall-clock reads in library
code, frozen physical constants, canonical instrument names.  This
module makes those conventions *decidable*: each :class:`Rule` walks a
parsed module and yields :class:`Finding` objects for violations, and CI
fails on any finding that is neither baselined
(:mod:`repro.analysis.baseline`) nor pragma-suppressed.

Suppression pragmas
-------------------
``# reprolint: disable=RPL003 -- reason`` suppresses the listed rule IDs
on its own line; written as a comment-only line, it also covers the next
code line (the idiom for statements too long to share a line with their
pragma).  ``# reprolint: skip-file=RPL005`` anywhere in a file
suppresses the listed rules for the whole file.  A reason after ``--``
is conventional, not parsed.

Two-pass orchestration
----------------------
Since the RPL1xx family, linting is two passes.  Pass one parses every
file into a :class:`LintContext` (parse failures become per-file RPL000
findings, never aborts) and — when the graph is enabled — builds the
project-wide index and call graph of :mod:`repro.analysis.graph`.  Pass
two runs the per-file rules over each context and the
:class:`GraphRule` subclasses once over the whole project.  With the
graph disabled (``--no-graph``) graph rules still run, but against a
degraded single-file project per module, so any finding that needs a
cross-module call edge provably disappears — the fixture contract the
RPL1xx tests assert.  Per-rule wall-clock cost is accounted in
:class:`LintRun.costs`.

Library entry points
--------------------
:func:`lint_project` is the full two-pass entry (findings + costs);
:func:`run_lint` is its findings-only wrapper; :func:`run_lint_source`
lints one in-memory snippet (the unit-test entry).  All return sorted
:class:`Finding` lists.  Rule instances carry per-run state (e.g.
duplicate-name detection across files), so a fresh rule set is created
for every run.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "GraphRule",
    "ImportMap",
    "LintContext",
    "LintRun",
    "Rule",
    "iter_python_files",
    "lint_project",
    "run_lint",
    "run_lint_source",
]

#: Pseudo-rule ID reported when a file does not parse at all.
SYNTAX_RULE_ID = "RPL000"

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable|skip-file)\s*=\s*([A-Z0-9, ]+)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    snippet: str = ""

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline file.

        Hashes path + rule + the stripped source line (not the line
        *number*), so unrelated edits above a grandfathered violation do
        not invalidate its baseline entry.
        """
        payload = f"{self.path}::{self.rule}::{self.snippet.strip()}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:20]

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


def _parse_pragmas(
    lines: Sequence[str],
) -> Tuple[frozenset, Dict[int, frozenset]]:
    """Extract file-level and per-line suppression pragmas.

    Returns ``(file_disabled, line_disabled)`` where ``line_disabled``
    maps 1-based line numbers to the rule IDs disabled on that line.
    """
    file_disabled: set = set()
    line_disabled: Dict[int, frozenset] = {}

    def disable(number: int, rules: frozenset) -> None:
        line_disabled[number] = line_disabled.get(number, frozenset()) | rules

    for number, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group(2).split(",") if rule.strip()
        )
        if match.group(1) == "skip-file":
            file_disabled |= rules
            continue
        disable(number, rules)
        if text.lstrip().startswith("#"):
            # Comment-only pragma: also cover the next code line.
            for follower in range(number, len(lines)):
                follower_text = lines[follower].strip()
                if follower_text and not follower_text.startswith("#"):
                    disable(follower + 1, rules)
                    break
    return frozenset(file_disabled), line_disabled


class ImportMap:
    """Local name -> canonical dotted path, from a module's import statements.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng`` maps ``default_rng -> numpy.random.default_rng``;
    relative imports keep their leading dots (``from .tracing import
    global_tracer`` maps to ``.tracing.global_tracer``), so rules match
    canonical names with :func:`str.endswith` when the absolute package
    root is unknowable.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                prefix = "." * node.level + (node.module or "")
                # ``from . import x``: the prefix already ends in its dot.
                separator = "" if prefix.endswith(".") else "."
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{prefix}{separator}{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, or ``None``.

        Follows ``Attribute`` chains down to a ``Name`` whose base is an
        imported alias.  Unimported bases (locals, builtins) resolve to
        ``None`` — rules that care about builtins match bare ``Name``
        nodes themselves.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(chain)])


class LintContext:
    """Everything a rule needs to check one parsed module."""

    def __init__(self, path: str, source: str) -> None:
        self.path = Path(path).as_posix()
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source)
        self.imports = ImportMap(self.tree)
        self.file_disabled, self.line_disabled = _parse_pragmas(self.lines)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # -- path predicates ------------------------------------------------
    def _has_part(self, part: str) -> bool:
        return part in Path(self.path).parts

    @property
    def is_tests(self) -> bool:
        """Under a ``tests/`` directory (benchmarks are NOT exempt)."""
        return self._has_part("tests")

    @property
    def in_repro_src(self) -> bool:
        """Whether the file is library code under ``src/repro/``."""
        return "src/repro/" in self.path or self.path.startswith("repro/")

    @property
    def in_obs(self) -> bool:
        return self.in_repro_src and self._has_part("obs")

    @property
    def is_constants_module(self) -> bool:
        return self.in_repro_src and Path(self.path).name == "constants.py"

    # -- AST helpers ----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost function/lambda containing ``node``, if any."""
        current = self.parent(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return current
            current = self.parent(current)
        return None

    def at_module_level(self, node: ast.AST) -> bool:
        """True when ``node`` is outside every function and class body."""
        current = self.parent(node)
        while current is not None:
            if isinstance(
                current,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                return False
            current = self.parent(current)
        return True

    def module_string_constants(self) -> Dict[str, str]:
        """Module-level ``NAME = "literal"`` assignments (spans use these)."""
        constants: Dict[str, str] = {}
        for stmt in self.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not isinstance(value, ast.Constant) or not isinstance(
                value.value, str
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = value.value
        return constants

    def snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, hint: Optional[str] = None
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            message=message,
            hint=rule.hint if hint is None else hint,
            snippet=self.snippet(node),
        )

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_disabled:
            return True
        disabled = self.line_disabled.get(finding.line)
        return disabled is not None and finding.rule in disabled


class Rule:
    """Base class: subclasses set ``id``/``title``/``hint`` and ``check``.

    A rule instance lives for one :func:`run_lint` call and sees every
    file in deterministic (sorted) order, so it may carry cross-file
    state such as seen-instrument-name maps.
    """

    id: str = ""
    title: str = ""
    hint: str = ""

    def check(self, context: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        return f"{cls.id}: {cls.title}"


class GraphRule(Rule):
    """A rule that checks the whole project, not one file at a time.

    Subclasses implement :meth:`check_project` against a
    :class:`repro.analysis.graph.ProjectContext` (index + call graph +
    per-file contexts).  The orchestrator runs graph rules once over the
    full project in graph mode, and once per single-file project in
    ``--no-graph`` mode — same code path, degraded visibility — then
    filters their findings through the owning file's pragmas.
    """

    def check(self, context: LintContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache"}


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    unique: Dict[str, Path] = {p.as_posix(): p for p in found}
    return [unique[key] for key in sorted(unique)]


def _default_rules() -> List[Rule]:
    from .rules import all_rules

    return all_rules()


def _select_rules(
    rules: Sequence[Rule],
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> List[Rule]:
    """Apply ``--select``/``--ignore`` id filters (RPL000 is implicit)."""
    active = list(rules)
    if select:
        wanted = set(select)
        active = [rule for rule in active if rule.id in wanted]
    if ignore:
        dropped = set(ignore)
        active = [rule for rule in active if rule.id not in dropped]
    return active


@dataclass
class RuleCost:
    """Wall-clock accounting for one rule over one run."""

    seconds: float = 0.0
    findings: int = 0


@dataclass
class LintRun:
    """The result of one :func:`lint_project` run."""

    findings: List[Finding]
    files_checked: int
    #: rule id -> cost; the index/graph build pass is accounted under
    #: the pseudo id ``"<index>"``.
    costs: Dict[str, RuleCost] = field(default_factory=dict)


#: Pseudo cost key for pass one (parse + index + call-graph build).
INDEX_COST_KEY = "<index>"


def _parse_error_finding(path: str, error: Exception) -> Finding:
    """An RPL000 finding for a file the parser rejected."""
    if isinstance(error, SyntaxError):
        return Finding(
            path=Path(path).as_posix(),
            line=error.lineno or 0,
            col=error.offset or 0,
            rule=SYNTAX_RULE_ID,
            message=f"file does not parse: {error.msg}",
            snippet=(error.text or "").strip(),
        )
    return Finding(
        path=Path(path).as_posix(),
        line=0,
        col=0,
        rule=SYNTAX_RULE_ID,
        message=f"file does not parse: {error!r}",
    )


def _crash_finding(rule: Rule, path: str, error: Exception) -> Finding:
    """An RPL000 finding for a rule that raised instead of checking."""
    return Finding(
        path=Path(path).as_posix(),
        line=0,
        col=0,
        rule=SYNTAX_RULE_ID,
        message=f"rule {rule.id} crashed: {error!r}",
        hint="report this as a linter bug; the rest of the run is unaffected",
    )


def _checked(rule: Rule, context: LintContext) -> List[Finding]:
    """One rule over one file, crash-contained to that file."""
    try:
        return [
            finding
            for finding in rule.check(context)
            if not context.suppressed(finding)
        ]
    except Exception as error:  # crash containment: RPL000, file-scoped
        return [_crash_finding(rule, context.path, error)]


def _now() -> float:
    from ..obs.metrics import monotonic_s

    return monotonic_s()


def _run_graph_rules(
    graph_rules: Sequence[Rule],
    contexts: Sequence[LintContext],
    whole_project: bool,
    costs: Dict[str, RuleCost],
) -> List[Finding]:
    """Run :class:`GraphRule` instances, whole-project or per-file.

    ``whole_project=False`` is the ``--no-graph`` degradation: every
    module is indexed alone, so rules keep their single-file power but
    lose every cross-module call edge.
    """
    if not graph_rules or not contexts:
        return []
    from .graph import ProjectContext

    t_index = _now()
    if whole_project:
        projects = [ProjectContext(list(contexts))]
    else:
        projects = [ProjectContext([context]) for context in contexts]
    costs.setdefault(INDEX_COST_KEY, RuleCost()).seconds += _now() - t_index
    findings: List[Finding] = []
    for rule in graph_rules:
        t_rule = _now()
        produced: List[Finding] = []
        for project in projects:
            try:
                for finding in rule.check_project(project):
                    owner = project.context_for(finding.path)
                    if owner is None or not owner.suppressed(finding):
                        produced.append(finding)
            except Exception as error:  # crash containment: RPL000
                anchor = min(project.contexts) if project.contexts else ""
                produced.append(_crash_finding(rule, anchor, error))
        cost = costs.setdefault(rule.id, RuleCost())
        cost.seconds += _now() - t_rule
        cost.findings += len(produced)
        findings.extend(produced)
    return findings


def lint_project(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    graph: bool = True,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintRun:
    """Two-pass lint over every ``.py`` file under ``paths``.

    Pass one parses each file (failures yield per-file RPL000 findings)
    and, with ``graph=True``, builds the project index + call graph.
    Pass two runs per-file rules file-by-file and graph rules over the
    project.  Per-rule wall time and finding counts land in
    :attr:`LintRun.costs`.
    """
    active = _select_rules(
        _default_rules() if rules is None else list(rules), select, ignore
    )
    file_rules = [rule for rule in active if not isinstance(rule, GraphRule)]
    graph_rules = [rule for rule in active if isinstance(rule, GraphRule)]
    findings: List[Finding] = []
    contexts: List[LintContext] = []
    costs: Dict[str, RuleCost] = {}
    files = iter_python_files(paths)
    t_parse = _now()
    for file_path in files:
        source = file_path.read_text(encoding="utf-8", errors="replace")
        try:
            contexts.append(LintContext(file_path.as_posix(), source))
        except (SyntaxError, ValueError, RecursionError, MemoryError) as error:
            findings.append(_parse_error_finding(file_path.as_posix(), error))
    costs[INDEX_COST_KEY] = RuleCost(seconds=_now() - t_parse)
    for context in contexts:
        for rule in file_rules:
            t_rule = _now()
            produced = _checked(rule, context)
            cost = costs.setdefault(rule.id, RuleCost())
            cost.seconds += _now() - t_rule
            cost.findings += len(produced)
            findings.extend(produced)
    findings.extend(
        _run_graph_rules(graph_rules, contexts, whole_project=graph, costs=costs)
    )
    return LintRun(
        findings=sorted(findings), files_checked=len(files), costs=costs
    )


def run_lint_source(
    source: str,
    path: str = "src/repro/_snippet.py",
    rules: Optional[Sequence[Rule]] = None,
    graph: bool = True,
) -> List[Finding]:
    """Lint one in-memory module; the unit-test entry point.

    ``path`` matters: rules scope themselves by location (``tests/`` is
    exempt from RPL001, ``obs/`` has its own RPL003 allowlist, RPL101
    anchors on ``serve/``), so tests pass a representative fake path.
    Graph rules run against the single-module project — the same
    visibility ``--no-graph`` gives them.
    """
    active: Sequence[Rule] = _default_rules() if rules is None else rules
    try:
        context = LintContext(path, source)
    except (SyntaxError, ValueError, RecursionError) as error:
        return [_parse_error_finding(path, error)]
    file_rules = [rule for rule in active if not isinstance(rule, GraphRule)]
    graph_rules = [rule for rule in active if isinstance(rule, GraphRule)]
    findings: List[Finding] = []
    for rule in file_rules:
        findings.extend(_checked(rule, context))
    if graph:
        findings.extend(
            _run_graph_rules(
                graph_rules, [context], whole_project=True, costs={}
            )
        )
    return sorted(findings)


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    graph: bool = True,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    return lint_project(paths, rules=rules, graph=graph).findings
