"""``repro lint``: AST-based invariant checker for reproducibility contracts.

The test suite can only spot-check the properties every result in this
repo rests on — bit-identical runs at any ``--jobs``, explicit
``numpy.random.Generator`` threading, no wall-clock reads in library
code, frozen physical constants, canonical instrument names.  This
module makes those conventions *decidable*: each :class:`Rule` walks a
parsed module and yields :class:`Finding` objects for violations, and CI
fails on any finding that is neither baselined
(:mod:`repro.analysis.baseline`) nor pragma-suppressed.

Suppression pragmas
-------------------
``# reprolint: disable=RPL003 -- reason`` suppresses the listed rule IDs
on its own line; written as a comment-only line, it also covers the next
code line (the idiom for statements too long to share a line with their
pragma).  ``# reprolint: skip-file=RPL005`` anywhere in a file
suppresses the listed rules for the whole file.  A reason after ``--``
is conventional, not parsed.

Library entry points
--------------------
:func:`run_lint` lints files/directories; :func:`run_lint_source` lints
one in-memory snippet (the unit-test entry).  Both return sorted
:class:`Finding` lists.  Rule instances carry per-run state (e.g.
duplicate-name detection across files), so a fresh rule set is created
for every :func:`run_lint` call.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "ImportMap",
    "LintContext",
    "Rule",
    "iter_python_files",
    "run_lint",
    "run_lint_source",
]

#: Pseudo-rule ID reported when a file does not parse at all.
SYNTAX_RULE_ID = "RPL000"

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable|skip-file)\s*=\s*([A-Z0-9, ]+)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    snippet: str = ""

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline file.

        Hashes path + rule + the stripped source line (not the line
        *number*), so unrelated edits above a grandfathered violation do
        not invalidate its baseline entry.
        """
        payload = f"{self.path}::{self.rule}::{self.snippet.strip()}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:20]

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


def _parse_pragmas(
    lines: Sequence[str],
) -> Tuple[frozenset, Dict[int, frozenset]]:
    """Extract file-level and per-line suppression pragmas.

    Returns ``(file_disabled, line_disabled)`` where ``line_disabled``
    maps 1-based line numbers to the rule IDs disabled on that line.
    """
    file_disabled: set = set()
    line_disabled: Dict[int, frozenset] = {}

    def disable(number: int, rules: frozenset) -> None:
        line_disabled[number] = line_disabled.get(number, frozenset()) | rules

    for number, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group(2).split(",") if rule.strip()
        )
        if match.group(1) == "skip-file":
            file_disabled |= rules
            continue
        disable(number, rules)
        if text.lstrip().startswith("#"):
            # Comment-only pragma: also cover the next code line.
            for follower in range(number, len(lines)):
                follower_text = lines[follower].strip()
                if follower_text and not follower_text.startswith("#"):
                    disable(follower + 1, rules)
                    break
    return frozenset(file_disabled), line_disabled


class ImportMap:
    """Local name -> canonical dotted path, from a module's import statements.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng`` maps ``default_rng -> numpy.random.default_rng``;
    relative imports keep their leading dots (``from .tracing import
    global_tracer`` maps to ``.tracing.global_tracer``), so rules match
    canonical names with :func:`str.endswith` when the absolute package
    root is unknowable.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{prefix}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, or ``None``.

        Follows ``Attribute`` chains down to a ``Name`` whose base is an
        imported alias.  Unimported bases (locals, builtins) resolve to
        ``None`` — rules that care about builtins match bare ``Name``
        nodes themselves.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(chain)])


class LintContext:
    """Everything a rule needs to check one parsed module."""

    def __init__(self, path: str, source: str) -> None:
        self.path = Path(path).as_posix()
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source)
        self.imports = ImportMap(self.tree)
        self.file_disabled, self.line_disabled = _parse_pragmas(self.lines)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # -- path predicates ------------------------------------------------
    def _has_part(self, part: str) -> bool:
        return part in Path(self.path).parts

    @property
    def is_tests(self) -> bool:
        """Under a ``tests/`` directory (benchmarks are NOT exempt)."""
        return self._has_part("tests")

    @property
    def in_repro_src(self) -> bool:
        """Whether the file is library code under ``src/repro/``."""
        return "src/repro/" in self.path or self.path.startswith("repro/")

    @property
    def in_obs(self) -> bool:
        return self.in_repro_src and self._has_part("obs")

    @property
    def is_constants_module(self) -> bool:
        return self.in_repro_src and Path(self.path).name == "constants.py"

    # -- AST helpers ----------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost function/lambda containing ``node``, if any."""
        current = self.parent(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return current
            current = self.parent(current)
        return None

    def at_module_level(self, node: ast.AST) -> bool:
        """True when ``node`` is outside every function and class body."""
        current = self.parent(node)
        while current is not None:
            if isinstance(
                current,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                return False
            current = self.parent(current)
        return True

    def module_string_constants(self) -> Dict[str, str]:
        """Module-level ``NAME = "literal"`` assignments (spans use these)."""
        constants: Dict[str, str] = {}
        for stmt in self.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not isinstance(value, ast.Constant) or not isinstance(
                value.value, str
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = value.value
        return constants

    def snippet(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: "Rule", node: ast.AST, message: str, hint: Optional[str] = None
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            message=message,
            hint=rule.hint if hint is None else hint,
            snippet=self.snippet(node),
        )

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_disabled:
            return True
        disabled = self.line_disabled.get(finding.line)
        return disabled is not None and finding.rule in disabled


class Rule:
    """Base class: subclasses set ``id``/``title``/``hint`` and ``check``.

    A rule instance lives for one :func:`run_lint` call and sees every
    file in deterministic (sorted) order, so it may carry cross-file
    state such as seen-instrument-name maps.
    """

    id: str = ""
    title: str = ""
    hint: str = ""

    def check(self, context: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        return f"{cls.id}: {cls.title}"


_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache"}


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    unique: Dict[str, Path] = {p.as_posix(): p for p in found}
    return [unique[key] for key in sorted(unique)]


def _default_rules() -> List[Rule]:
    from .rules import all_rules

    return all_rules()


def run_lint_source(
    source: str,
    path: str = "src/repro/_snippet.py",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory module; the unit-test entry point.

    ``path`` matters: rules scope themselves by location (``tests/`` is
    exempt from RPL001, ``obs/`` has its own RPL003 allowlist), so tests
    pass a representative fake path.
    """
    active: Sequence[Rule] = _default_rules() if rules is None else rules
    try:
        context = LintContext(path, source)
    except SyntaxError as error:
        return [
            Finding(
                path=Path(path).as_posix(),
                line=error.lineno or 0,
                col=error.offset or 0,
                rule=SYNTAX_RULE_ID,
                message=f"file does not parse: {error.msg}",
                snippet=(error.text or "").strip(),
            )
        ]
    findings = [
        finding
        for rule in active
        for finding in rule.check(context)
        if not context.suppressed(finding)
    ]
    return sorted(findings)


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    active: Sequence[Rule] = _default_rules() if rules is None else rules
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(run_lint_source(source, file_path.as_posix(), active))
    return sorted(findings)
