"""Per-sweep metrics underlying Figures 4 and 6 and the headline numbers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "largest_single_subcarrier_gap",
    "min_snr_changes",
    "min_snrs",
    "fraction_of_pairs_with_change",
    "ConfigPairGap",
]


@dataclass(frozen=True)
class ConfigPairGap:
    """The two configurations with the largest single-subcarrier SNR gap.

    Figure 4 plots, for each element placement, "the two configurations
    that give the largest single-subcarrier SNR difference".
    """

    config_low: int
    config_high: int
    subcarrier: int
    gap_db: float


def largest_single_subcarrier_gap(snr_db_per_config: np.ndarray) -> ConfigPairGap:
    """Find the configuration pair with the largest per-subcarrier SNR gap.

    Parameters
    ----------
    snr_db_per_config:
        Shape (num_configurations, num_subcarriers).
    """
    snr = np.asarray(snr_db_per_config, dtype=float)
    if snr.ndim != 2:
        raise ValueError(f"expected (configs, subcarriers), got shape {snr.shape}")
    high = snr.max(axis=0)
    low = snr.min(axis=0)
    subcarrier = int(np.argmax(high - low))
    gap = float(high[subcarrier] - low[subcarrier])
    config_high = int(np.argmax(snr[:, subcarrier]))
    config_low = int(np.argmin(snr[:, subcarrier]))
    return ConfigPairGap(
        config_low=config_low,
        config_high=config_high,
        subcarrier=subcarrier,
        gap_db=gap,
    )


def min_snrs(snr_db_per_config: np.ndarray) -> np.ndarray:
    """Minimum subcarrier SNR of each configuration (Figure 6 right)."""
    snr = np.asarray(snr_db_per_config, dtype=float)
    if snr.ndim != 2:
        raise ValueError(f"expected (configs, subcarriers), got shape {snr.shape}")
    return snr.min(axis=1)


def min_snr_changes(snr_db_per_config: np.ndarray) -> np.ndarray:
    """|Delta min-SNR| over all ordered configuration pairs (Figure 6 left)."""
    minima = min_snrs(snr_db_per_config)
    return np.abs(minima[:, None] - minima[None, :]).ravel()


def fraction_of_pairs_with_change(
    snr_db_per_config: np.ndarray,
    change_db: float = 10.0,
) -> float:
    """Fraction of configuration changes causing >= ``change_db`` on some subcarrier.

    The §3.2.1 claim: "Around 38% of the configuration changes cause a
    10 dB SNR change on at least one subcarrier."  Evaluated over all
    ordered pairs of distinct configurations.
    """
    snr = np.asarray(snr_db_per_config, dtype=float)
    if snr.ndim != 2:
        raise ValueError(f"expected (configs, subcarriers), got shape {snr.shape}")
    num = snr.shape[0]
    if num < 2:
        raise ValueError("need at least two configurations")
    # Pairwise max-over-subcarriers |SNR_a - SNR_b|.
    diffs = np.abs(snr[:, None, :] - snr[None, :, :]).max(axis=2)
    mask = ~np.eye(num, dtype=bool)
    return float(np.mean(diffs[mask] >= change_db))
