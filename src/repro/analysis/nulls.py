"""Frequency-null detection and movement statistics (Figures 4 and 5).

§3.2.1 defines the conventions implemented here: "The location of the most
significant null is the subcarrier number corresponding to the minimum SNR
value for a given configuration, and we only consider configurations that
have a subcarrier SNR that is at least 5 dB less than the median subcarrier
SNR."
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NULL_THRESHOLD_DB",
    "most_significant_null",
    "has_null",
    "null_movements",
    "null_depth_db",
]

#: A configuration "exhibits a null" when its minimum subcarrier SNR is at
#: least this far below the median subcarrier SNR (§3.2.1).
NULL_THRESHOLD_DB = 5.0


def most_significant_null(snr_db: np.ndarray) -> int:
    """Subcarrier index of the minimum SNR (the most significant null)."""
    snr = np.asarray(snr_db, dtype=float)
    if snr.size == 0:
        raise ValueError("need at least one subcarrier")
    return int(np.argmin(snr))


def null_depth_db(snr_db: np.ndarray) -> float:
    """How far the worst subcarrier sits below the median (positive = deeper)."""
    snr = np.asarray(snr_db, dtype=float)
    if snr.size == 0:
        raise ValueError("need at least one subcarrier")
    return float(np.median(snr) - np.min(snr))


def has_null(snr_db: np.ndarray, threshold_db: float = NULL_THRESHOLD_DB) -> bool:
    """Whether the SNR profile exhibits a null per the §3.2.1 criterion."""
    return null_depth_db(snr_db) >= threshold_db


def null_movements(
    snr_db_per_config: np.ndarray,
    threshold_db: float = NULL_THRESHOLD_DB,
) -> np.ndarray:
    """Null-location differences over all configuration pairs (Figure 5).

    Parameters
    ----------
    snr_db_per_config:
        Shape (num_configurations, num_subcarriers): per-configuration SNR
        profiles from one sweep repetition.
    threshold_db:
        Null-existence criterion.

    Returns
    -------
    numpy.ndarray
        |null(a) - null(b)| in subcarriers, for every ordered pair (a, b)
        of configurations that both exhibit a null — "all of the 64^2 pairs
        of PRESS element configurations ... among configurations that
        exhibit a null".  (Ordered pairs, matching the 64^2 in the paper;
        the distribution is identical to unordered up to the zero-distance
        diagonal.)
    """
    snr = np.asarray(snr_db_per_config, dtype=float)
    if snr.ndim != 2:
        raise ValueError(f"expected (configs, subcarriers), got shape {snr.shape}")
    with_null = np.array([has_null(profile, threshold_db) for profile in snr])
    locations = np.array([most_significant_null(profile) for profile in snr])
    eligible = locations[with_null]
    if eligible.size == 0:
        return np.zeros(0, dtype=int)
    return np.abs(eligible[:, None] - eligible[None, :]).ravel()
