"""Worklist-driven interprocedural property propagation.

Graph-aware rules share one shape of reasoning: a *fact* holds directly
in some functions (calls ``time.sleep``; rebinds a module global via
``global``; mints an RNG stream from constants) and infects everything
that can reach them through call edges.  This module runs that fixpoint
once per fact kind:

* :func:`propagate_callers` — classic caller-directed reachability: a
  function carries the fact if it holds directly or if any of its call
  sites targets a function that carries it.  Used by RPL101 (blocking
  reachable from ``async def``) and RPL103 (global mutation reachable
  from a pool-submitted function).
* :func:`propagate_param_flow` — parameter-flow variant for RPL104: a
  function *escapes* if it mints its own stream directly, or if it
  passes one of **its own parameters** into a callee that escapes.  The
  extra condition keeps the closure honest — calling an escaping helper
  without handing it your RNG is not an escape.

Facts carry a witness chain (``via``) from the tainted function down to
the seed so findings can explain *why* a call is flagged, and the
worklist is processed in sorted order so chains — and therefore lint
messages — are deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Set, Tuple

from .graph import CallGraph, CallSite

__all__ = ["Fact", "propagate_callers", "propagate_param_flow"]


@dataclass(frozen=True)
class Fact:
    """One propagated property at one function.

    ``detail`` describes the seed occurrence (e.g. ``"time.sleep at
    repro/em/x.py:12"``); ``via`` is the call chain from this function
    (exclusive) down to the seed function (inclusive) — empty when the
    fact holds directly.
    """

    detail: str
    via: Tuple[str, ...] = ()

    @property
    def direct(self) -> bool:
        return not self.via

    def chain(self) -> str:
        """Human-readable witness: ``via a -> b: detail`` or ``detail``."""
        if self.direct:
            return self.detail
        return f"via {' -> '.join(self.via)}: {self.detail}"


def propagate_callers(
    graph: CallGraph, seeds: Mapping[str, str]
) -> Dict[str, Fact]:
    """Close direct facts over callers: ``f`` has the fact if it calls
    (transitively) a function that has it.

    ``seeds`` maps function qualnames to their direct-fact detail
    strings.  The returned map includes the seeds (as direct facts) and
    every transitive caller, each with the shortest deterministic
    witness chain found.
    """
    facts: Dict[str, Fact] = {
        qualname: Fact(detail=detail)
        for qualname, detail in sorted(seeds.items())
    }
    worklist = sorted(facts)
    while worklist:
        current = worklist.pop(0)
        fact = facts[current]
        for site in sorted(
            graph.calls_to(current), key=lambda s: (s.caller, s.node.lineno)
        ):
            if site.caller in facts:
                continue
            facts[site.caller] = Fact(
                detail=fact.detail, via=(current, *fact.via)
            )
            worklist.append(site.caller)
    return facts


def _passes_own_param(
    graph: CallGraph, site: CallSite, params: Tuple[str, ...]
) -> bool:
    """Whether a call site forwards any of the caller's listed params."""
    names: Set[str] = set()
    for arg in [*site.node.args, *[kw.value for kw in site.node.keywords]]:
        for child in ast.walk(arg):
            if isinstance(child, ast.Name):
                names.add(child.id)
    return bool(names & set(params))


def propagate_param_flow(
    graph: CallGraph,
    seeds: Mapping[str, str],
    params_of: Callable[[str], Tuple[str, ...]],
) -> Dict[str, Fact]:
    """Parameter-flow closure: ``f`` escapes if it is a seed, or passes
    one of its own parameters into a callee that escapes.

    ``params_of`` maps a function qualname to the parameter names whose
    flow matters for it (every parameter, for RPL104's caller-side
    check — any incoming value could be the threaded generator).
    """
    facts: Dict[str, Fact] = {
        qualname: Fact(detail=detail)
        for qualname, detail in sorted(seeds.items())
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(graph.sites):
            if qualname in facts:
                continue
            params = params_of(qualname)
            if not params:
                continue
            hit: Optional[Tuple[str, Fact, CallSite]] = None
            for site in graph.calls_from(qualname):
                if site.callee is None or site.callee not in facts:
                    continue
                if site.callee == qualname:
                    continue
                if _passes_own_param(graph, site, params):
                    hit = (site.callee, facts[site.callee], site)
                    break
            if hit is not None:
                callee, fact, _ = hit
                facts[qualname] = Fact(
                    detail=fact.detail, via=(callee, *fact.via)
                )
                changed = True
    return facts
