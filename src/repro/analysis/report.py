"""Text and JSON rendering for ``repro lint`` findings."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .linter import Finding

__all__ = ["REPORT_VERSION", "render_json", "render_text", "summarize"]

REPORT_VERSION = 1


def summarize(
    findings: Sequence[Finding],
    files_checked: int,
    baselined: int = 0,
) -> Dict[str, object]:
    """The stable summary block both output formats share."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "files_checked": files_checked,
        "findings": len(findings),
        "baselined": baselined,
        "by_rule": dict(sorted(by_rule.items())),
    }


def render_text(
    findings: Sequence[Finding],
    files_checked: int,
    baselined: int = 0,
) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per finding."""
    lines: List[str] = []
    for finding in findings:
        location = f"{finding.path}:{finding.line}:{finding.col + 1}"
        lines.append(f"{location}: {finding.rule} {finding.message}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    summary = summarize(findings, files_checked, baselined)
    tail = f"{summary['findings']} finding(s) in {files_checked} file(s)"
    if baselined:
        tail += f" ({baselined} baselined)"
    lines.append(tail)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    files_checked: int,
    baselined: int = 0,
    baseline_path: Optional[str] = None,
) -> str:
    """Machine-readable report (the CI artifact)."""
    payload = {
        "version": REPORT_VERSION,
        "summary": summarize(findings, files_checked, baselined),
        "baseline": baseline_path,
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
