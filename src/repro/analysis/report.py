"""Text and JSON rendering for ``repro lint`` findings."""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from .linter import Finding, RuleCost

__all__ = [
    "REPORT_VERSION",
    "render_json",
    "render_stats",
    "render_text",
    "summarize",
]

#: Schema version of the JSON report.  2 added ``schema_version`` itself,
#: the stable (rule, path, line, col) finding order, and per-rule costs.
REPORT_VERSION = 2


def _ordered(findings: Sequence[Finding]) -> List[Finding]:
    """Findings in the report's stable order: rule id first, then site."""
    return sorted(
        findings, key=lambda f: (f.rule, f.path, f.line, f.col)
    )


def summarize(
    findings: Sequence[Finding],
    files_checked: int,
    baselined: int = 0,
) -> Dict[str, object]:
    """The stable summary block both output formats share."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "files_checked": files_checked,
        "findings": len(findings),
        "baselined": baselined,
        "by_rule": dict(sorted(by_rule.items())),
    }


def render_text(
    findings: Sequence[Finding],
    files_checked: int,
    baselined: int = 0,
) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per finding."""
    lines: List[str] = []
    for finding in findings:
        location = f"{finding.path}:{finding.line}:{finding.col + 1}"
        lines.append(f"{location}: {finding.rule} {finding.message}")
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    summary = summarize(findings, files_checked, baselined)
    tail = f"{summary['findings']} finding(s) in {files_checked} file(s)"
    if baselined:
        tail += f" ({baselined} baselined)"
    lines.append(tail)
    return "\n".join(lines)


def render_stats(costs: Mapping[str, RuleCost]) -> str:
    """Per-rule cost table for ``repro lint --stats``."""
    lines = [f"{'rule':<10} {'ms':>8} {'findings':>8}"]
    for rule in sorted(costs):
        cost = costs[rule]
        lines.append(
            f"{rule:<10} {cost.seconds * 1000.0:>8.1f} {cost.findings:>8}"
        )
    total = sum(cost.seconds for cost in costs.values())
    lines.append(f"{'total':<10} {total * 1000.0:>8.1f}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    files_checked: int,
    baselined: int = 0,
    baseline_path: Optional[str] = None,
    costs: Optional[Mapping[str, RuleCost]] = None,
) -> str:
    """Machine-readable report (the CI artifact).

    Findings are emitted in a stable (rule, path, line, col) order so
    diffs between runs reflect real changes, not traversal order.
    """
    payload: Dict[str, object] = {
        "version": REPORT_VERSION,
        "schema_version": REPORT_VERSION,
        "summary": summarize(findings, files_checked, baselined),
        "baseline": baseline_path,
        "findings": [finding.as_dict() for finding in _ordered(findings)],
    }
    if costs is not None:
        payload["costs"] = {
            rule: {
                "seconds": round(cost.seconds, 6),
                "findings": cost.findings,
            }
            for rule, cost in sorted(costs.items())
        }
    return json.dumps(payload, indent=2, sort_keys=True)
