"""Plain-text result tables for the benchmark harness.

The benchmarks print paper-vs-measured rows through these helpers so every
figure's reproduction reads the same way in ``bench_output.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Comparison", "ReportTable", "format_table"]


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured row.

    Attributes
    ----------
    metric:
        What is being compared.
    paper:
        The paper's reported value (verbatim description).
    measured:
        Our measured value.
    holds:
        Whether the qualitative shape holds (who wins / rough factor).
    """

    metric: str
    paper: str
    measured: str
    holds: bool

    def row(self) -> tuple[str, str, str, str]:
        return (self.metric, self.paper, self.measured, "yes" if self.holds else "NO")


@dataclass
class ReportTable:
    """A titled table of paper-vs-measured comparisons."""

    title: str
    comparisons: list[Comparison] = field(default_factory=list)

    def add(self, metric: str, paper: str, measured: str, holds: bool) -> None:
        self.comparisons.append(
            Comparison(metric=metric, paper=paper, measured=measured, holds=holds)
        )

    def all_hold(self) -> bool:
        return all(comparison.holds for comparison in self.comparisons)

    def render(self) -> str:
        header = ("metric", "paper", "measured", "holds")
        rows = [comparison.row() for comparison in self.comparisons]
        return self.title + "\n" + format_table([header, *rows], header_rule=True)


def format_table(rows: Sequence[Sequence[str]], header_rule: bool = False) -> str:
    """Align a list of string rows into a monospace table."""
    if not rows:
        return ""
    num_columns = max(len(row) for row in rows)
    normalised = [tuple(row) + ("",) * (num_columns - len(row)) for row in rows]
    widths = [
        max(len(str(row[column])) for row in normalised)
        for column in range(num_columns)
    ]
    lines = []
    for index, row in enumerate(normalised):
        line = "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if header_rule and index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
