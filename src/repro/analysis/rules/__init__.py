"""Rule families for ``repro lint``; one module per family.

Adding a rule: subclass :class:`repro.analysis.linter.Rule` in the
fitting family module (or a new one), give it a stable ``RPLnnn`` id,
``title`` and ``hint``, and list the class in :data:`RULE_CLASSES`.
DESIGN.md §9 documents the shipped rule set.
"""

from __future__ import annotations

from typing import List, Tuple, Type

from ..linter import Rule
from .clock import WallClockRule
from .literals import PhysicalConstantRule
from .obs_names import ObsNamingRule
from .ordering import UnorderedIterationRule
from .rng import GlobalRngRule, ShadowedRngRule

__all__ = ["RULE_CLASSES", "all_rules"]

RULE_CLASSES: Tuple[Type[Rule], ...] = (
    GlobalRngRule,
    ShadowedRngRule,
    WallClockRule,
    UnorderedIterationRule,
    PhysicalConstantRule,
    ObsNamingRule,
)


def all_rules() -> List[Rule]:
    """Fresh rule instances for one lint run, ordered by rule id."""
    return [cls() for cls in sorted(RULE_CLASSES, key=lambda cls: cls.id)]
