"""Rule families for ``repro lint``; one module per family.

Adding a rule: subclass :class:`repro.analysis.linter.Rule` (or
:class:`repro.analysis.linter.GraphRule` for whole-program checks) in
the fitting family module (or a new one), give it a stable ``RPLnnn``
id, ``title`` and ``hint``, and list the class in :data:`RULE_CLASSES`.
DESIGN.md §9 documents the per-file rule set; §14 covers the
graph-aware RPL1xx family and the two-pass architecture.
"""

from __future__ import annotations

from typing import List, Tuple, Type

from ..linter import Rule
from .awaited import UnawaitedCoroutineRule
from .blocking import AsyncBlockingRule
from .clock import WallClockRule
from .literals import PhysicalConstantRule
from .obs_names import ObsNamingRule
from .ordering import UnorderedIterationRule
from .pickle_safety import PickleBoundaryRule, PoolSubmissionRule
from .rng import GlobalRngRule, ShadowedRngRule
from .rng_flow import RngEscapeRule

__all__ = ["RULE_CLASSES", "all_rules"]

RULE_CLASSES: Tuple[Type[Rule], ...] = (
    GlobalRngRule,
    ShadowedRngRule,
    WallClockRule,
    UnorderedIterationRule,
    PhysicalConstantRule,
    ObsNamingRule,
    AsyncBlockingRule,
    UnawaitedCoroutineRule,
    PoolSubmissionRule,
    RngEscapeRule,
    PickleBoundaryRule,
)


def all_rules() -> List[Rule]:
    """Fresh rule instances for one lint run, ordered by rule id."""
    return [cls() for cls in sorted(RULE_CLASSES, key=lambda cls: cls.id)]
