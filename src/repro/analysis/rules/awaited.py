"""RPL102: coroutines and futures created but never awaited or stored.

Calling an ``async def`` without ``await`` creates a coroutine object
and silently does nothing — the canonical asyncio footgun, and invisible
to a single-file pass whenever the coroutine function lives in another
module.  The same applies to fire-and-forget task/future handles:
``asyncio.create_task`` results that are neither stored nor awaited can
be garbage-collected mid-flight, and a dropped ``pool.submit`` future
swallows its exception.

The check is statement-shaped on purpose: only a *bare expression
statement* whose value is such a call fires.  Assigning, returning,
awaiting or passing the handle on all count as "stored" — downstream
ownership is the owner's problem.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..graph import ProjectContext, _dotted_of
from ..linter import Finding, GraphRule

#: Task/future factories whose bare-statement results are lost handles.
_TASK_FACTORIES = {"asyncio.create_task", "asyncio.ensure_future"}
_TASK_ATTRS = {"create_task", "ensure_future"}
_SUBMIT_HINTS = ("pool", "executor")


def _bare_statement_calls(tree: ast.AST) -> Set[int]:
    """``id()`` of every Call that is the entire value of an Expr stmt."""
    bare: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            bare.add(id(node.value))
    return bare


class UnawaitedCoroutineRule(GraphRule):
    """RPL102: every coroutine/future must be awaited or stored."""

    id = "RPL102"
    title = "coroutine or future created but never awaited or stored"
    hint = (
        "await the call, or keep the returned handle (assign it and "
        "add_done_callback / gather it later)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        bare_by_path = {
            path: _bare_statement_calls(context.tree)
            for path, context in project.contexts.items()
        }
        for qualname in sorted(graph.sites):
            for site in graph.sites[qualname]:
                context = project.context_for(site.path)
                if context is None or context.is_tests:
                    continue
                if id(site.node) not in bare_by_path.get(site.path, ()):
                    continue
                target = project.index.function(site.callee)
                if target is not None and target.is_async:
                    yield context.finding(
                        self,
                        site.node,
                        f"coroutine {target.qualname}() is created but "
                        "never awaited — the body never runs",
                    )
                    continue
                func = site.node.func
                if site.dotted in _TASK_FACTORIES or (
                    isinstance(func, ast.Attribute) and func.attr in _TASK_ATTRS
                ):
                    yield context.finding(
                        self,
                        site.node,
                        "task handle dropped: an unreferenced asyncio task "
                        "can be garbage-collected before it finishes",
                    )
                    continue
                if isinstance(func, ast.Attribute) and func.attr == "submit":
                    receiver = (_dotted_of(func.value) or "").lower()
                    if any(hint in receiver for hint in _SUBMIT_HINTS):
                        yield context.finding(
                            self,
                            site.node,
                            "future from .submit() is dropped — its result "
                            "and any worker exception are lost",
                        )
