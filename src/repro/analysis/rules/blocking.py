"""RPL101: no blocking calls reachable from ``async def`` bodies in serve/.

The serving layer multiplexes every tenant onto one event loop; a
single ``time.sleep``, synchronous ``Future.result()``/``Thread.join()``
or file read anywhere under an ``async def`` stalls *all* of them at
once.  The dangerous cases are never the direct ones (reviews catch
those) but a blocking primitive two sync helpers below the coroutine —
which is exactly what the call graph sees and a per-file walk cannot.

Off-loop escapes are free: ``await loop.run_in_executor(pool, fn, ...)``
passes ``fn`` as a value, so no call edge forms and nothing reached only
through an executor is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from ..graph import CallSite, ProjectContext, _dotted_of
from ..linter import Finding, GraphRule
from ..propagate import propagate_callers

#: Calls that block the calling thread outright, by absolute dotted name.
_BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.wait",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
    "input",
}

#: Synchronous file I/O: the ``open`` builtin plus ``pathlib`` read/write
#: convenience methods (matched by attribute name on any receiver).
_IO_ATTRS = {"read_text", "write_text", "read_bytes", "write_bytes"}

#: ``.result()`` / ``.join()`` block only on concurrency primitives; the
#: receiver's name must suggest one (``fut.result()``, ``thread.join()``)
#: so ``", ".join(...)`` and friends stay silent.
_SYNC_WAIT_ATTRS = {"result", "join"}
_CONCURRENCY_HINTS = ("future", "thread", "proc", "pool", "task", "worker")


def _direct_blocking(site: CallSite) -> Optional[str]:
    """A short description if this call site blocks directly, else None."""
    if site.dotted in _BLOCKING_CALLS:
        return f"{site.dotted}()"
    func = site.node.func
    if isinstance(func, ast.Name) and func.id == "open" and site.callee is None:
        return "open() file I/O"
    if isinstance(func, ast.Attribute):
        if func.attr in _IO_ATTRS:
            return f".{func.attr}() file I/O"
        if func.attr in _SYNC_WAIT_ATTRS:
            receiver = _dotted_of(func.value) or ""
            if any(hint in receiver.lower() for hint in _CONCURRENCY_HINTS):
                return f"{receiver}.{func.attr}() synchronous wait"
    return None


class AsyncBlockingRule(GraphRule):
    """RPL101: ``async def`` bodies in serve/ must stay non-blocking."""

    id = "RPL101"
    title = "blocking call reachable from an async def in the serving layer"
    hint = (
        "route blocking work through loop.run_in_executor onto the shared "
        "pools (repro.experiments.runner.shared_pool), or make the helper "
        "chain non-blocking"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        seeds: Dict[str, str] = {}
        for qualname in sorted(graph.sites):
            for site in graph.sites[qualname]:
                detail = _direct_blocking(site)
                if detail is not None and qualname not in seeds:
                    seeds[qualname] = (
                        f"{detail} at {site.path}:{site.node.lineno}"
                    )
        blocked = propagate_callers(graph, seeds)
        for info in graph.functions():
            if not info.is_async or not project.in_serve(info):
                continue
            context = project.context_for(info.path)
            if context is None or context.is_tests:
                continue
            for site in graph.calls_from(info.qualname):
                direct = _direct_blocking(site)
                if direct is not None:
                    yield context.finding(
                        self,
                        site.node,
                        f"async def {info.name} performs blocking "
                        f"{direct} on the event loop",
                    )
                    continue
                callee = site.callee
                if callee is None or callee == info.qualname:
                    continue
                fact = blocked.get(callee)
                if fact is None:
                    continue
                target = project.index.function(callee)
                if (
                    target is not None
                    and target.is_async
                    and project.in_serve(target)
                ):
                    # The callee is itself an async serve function: it
                    # gets its own finding at the offending site.
                    continue
                yield context.finding(
                    self,
                    site.node,
                    f"async def {info.name} reaches blocking "
                    f"{fact.chain()} through {callee}",
                )
