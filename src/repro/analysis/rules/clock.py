"""RPL003: no wall-clock or entropy reads in library code.

Simulated time is the only time that exists inside ``src/repro/`` —
latency budgets, coherence windows and protocol costs are all computed
from models, never measured.  A stray ``time.time()`` or ``uuid.uuid4()``
makes output depend on when (or where) the run happened.  The one
exception is the observability layer (``repro/obs/``), which exists to
time phases — and must do so with the monotonic clocks only
(``perf_counter``/``monotonic``), never the wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..linter import Finding, LintContext, Rule

#: Wall-clock and entropy reads: banned everywhere under ``src/repro/``.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
}

#: Monotonic clocks: the ``obs/`` allowlist; still banned in plain library
#: code, where timing belongs in an obs span, not an ad-hoc stopwatch.
_MONOTONIC = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}


class WallClockRule(Rule):
    """RPL003: wall-clock/entropy reads are confined out of ``src/repro/``."""

    id = "RPL003"
    title = "wall-clock or entropy read in library code"
    hint = (
        "library code computes simulated time from models; phase timing "
        "belongs in repro.obs spans (perf_counter/monotonic only)"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if not context.in_repro_src or context.is_tests:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = context.imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved in _WALL_CLOCK:
                yield context.finding(
                    self,
                    node,
                    f"{resolved}() reads the wall clock / OS entropy; "
                    "results must not depend on when the run happened",
                )
            elif resolved in _MONOTONIC and not context.in_obs:
                yield context.finding(
                    self,
                    node,
                    f"{resolved}() outside repro/obs/: time phases with an "
                    "observability span instead of an ad-hoc stopwatch",
                )
