# reprolint: skip-file=RPL005 -- this module IS the known-constant table
"""RPL005: physical constants come from ``repro.constants``, not literals.

A reproduction lives or dies on every subsystem agreeing about the
numerology: one module quietly using ``3e8`` while another uses
``299792458.0`` shifts phases by parts in ten thousand — enough to move
a null by a subcarrier.  Any literal close to a known physical constant
must be replaced by the named constant so there is exactly one value in
the whole codebase.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..linter import Finding, LintContext, Rule

#: (value, canonical name, relative tolerance).  The tolerance catches
#: truncated approximations (``3e8``, ``1.38e-23``) as well as the exact
#: value; it is kept tight enough that distinct constants never overlap.
KNOWN_CONSTANTS: Tuple[Tuple[float, str, float], ...] = (
    (299_792_458.0, "repro.constants.SPEED_OF_LIGHT", 1e-3),
    (1.380649e-23, "repro.constants.BOLTZMANN", 1e-3),
    (2.462e9, "repro.constants.CARRIER_FREQUENCY_HZ", 1e-3),
    (2.4e9, "repro.constants.ISM_BAND_2G4_HZ", 1e-3),
)


def _match(value: float) -> Optional[str]:
    for constant, name, rtol in KNOWN_CONSTANTS:
        if abs(value - constant) <= rtol * constant:
            return name
    return None


class PhysicalConstantRule(Rule):
    """RPL005: literals shadowing known physical constants."""

    id = "RPL005"
    title = "physical-constant literal duplicates repro.constants"
    hint = "import the named constant from repro.constants"

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.is_constants_module or context.is_tests:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            name = _match(float(value))
            if name is not None:
                yield context.finding(
                    self,
                    node,
                    f"literal {value!r} duplicates {name}; one canonical "
                    "value must exist",
                )
