"""RPL006: observability instruments are registered once, named on-grammar.

The metrics registry and span tracer key everything by name: two modules
registering the same name silently share an instrument, a worker whose
name drifts from the parent's stops merging, and ``repro report`` output
becomes unreadable the moment names stop following the
``<module>.<noun>_<unit>`` grammar (DESIGN.md §9).  This rule pins the
conventions:

* ``global_registry().counter/gauge/histogram(...)`` calls — and their
  stale-proof twins ``counter_handle/gauge_handle/histogram_handle(...)``
  — happen at module level (import time), take a string-literal name,
  and no name is registered twice across the linted file set;
* a module-level binding of a *raw* instrument
  (``_HITS = global_registry().counter(...)``) is flagged outright: the
  reference goes stale after ``reset_metrics(clear=True)``, so module
  scopes hold ``*_handle`` objects instead;
* instrument names match ``seg.seg[.seg[.seg]]`` of lowercase
  ``snake_case`` segments; histogram names carry an explicit unit suffix;
* ``global_tracer().span(...)`` — and the request-scoped
  ``request_span(...)``/``emit_request_span(...)`` — take a module-level
  string constant (``_SPAN_SWEEP = "testbed.sweep"``) so every span name
  is statically registered exactly once.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Tuple

from ..linter import Finding, LintContext, Rule

_NAME_GRAMMAR = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,3}$")

#: Histogram names must say what they measure in what unit.
_UNIT_SUFFIXES = ("_s", "_ns", "_ms", "_bytes", "_db", "_hz", "_count")

_INSTRUMENT_METHODS = ("counter", "gauge", "histogram")

#: Stale-proof handle factories register instruments too (same grammar,
#: same uniqueness contract as the raw registry methods).
_HANDLE_FACTORIES = {
    "counter_handle": "counter",
    "gauge_handle": "gauge",
    "histogram_handle": "histogram",
}

#: Request-scoped span entry points: first argument is a span name under
#: the same module-level-constant discipline as ``tracer.span``.
_REQUEST_SPAN_FUNCTIONS = ("request_span", "emit_request_span")


def _module_level_captures(tree: ast.Module) -> set:
    """Call nodes whose result a module-level assignment binds.

    A raw instrument captured this way keeps recording into a dead
    registry after ``reset_metrics(clear=True)`` — the stale-handle
    hazard the ``*_handle`` factories exist to close.
    """
    captured: set = set()
    for statement in tree.body:
        value = None
        if isinstance(statement, ast.Assign):
            value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            value = statement.value
        if isinstance(value, ast.Call):
            captured.add(value)
    return captured


def _registry_call(
    node: ast.Call, context: LintContext
) -> Tuple[str, bool]:
    """``(instrument method, is raw registry call)`` — ``("", False)`` if
    the call registers nothing."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _INSTRUMENT_METHODS:
        target = func.value
        if isinstance(target, ast.Call):
            resolved = context.imports.resolve(target.func)
            if resolved is not None and resolved.endswith("global_registry"):
                return func.attr, True
        return "", False
    resolved = context.imports.resolve(func)
    if resolved is None:
        return "", False
    return _HANDLE_FACTORIES.get(resolved.rsplit(".", 1)[-1], ""), False


def _span_call(node: ast.Call, context: LintContext) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "span":
        target = func.value
        if isinstance(target, ast.Call):
            resolved = context.imports.resolve(target.func)
            return resolved is not None and resolved.endswith("global_tracer")
        return False
    resolved = context.imports.resolve(func)
    if resolved is None:
        return False
    return resolved.rsplit(".", 1)[-1] in _REQUEST_SPAN_FUNCTIONS


class ObsNamingRule(Rule):
    """RPL006: module-level, unique, grammar-conforming instrument names."""

    id = "RPL006"
    title = "observability instrument registration or naming violation"
    hint = (
        "register instruments once at module level with literal names "
        "matching <module>.<noun>_<unit>; hoist span names to module-level "
        "string constants"
    )

    def __init__(self) -> None:
        # Cross-file state for this lint run: name -> first site.
        self._seen: Dict[str, Tuple[str, int]] = {}

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.is_tests:
            return
        span_constants = context.module_string_constants()
        captured = _module_level_captures(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            method, raw = _registry_call(node, context)
            if method:
                yield from self._check_registration(
                    context, node, method, raw and node in captured
                )
            elif _span_call(node, context):
                yield from self._check_span(context, node, span_constants)

    def _check_registration(
        self,
        context: LintContext,
        node: ast.Call,
        method: str,
        raw_capture: bool,
    ) -> Iterator[Finding]:
        if not context.at_module_level(node):
            yield context.finding(
                self,
                node,
                f"{method}() registration inside a function; instruments "
                "are registered once at module import",
            )
        elif raw_capture:
            # The instrument reference goes stale the moment
            # reset_metrics(clear=True) replaces the registry; the handle
            # re-resolves on every use.
            yield context.finding(
                self,
                node,
                f"module-level capture of a raw {method}() instrument goes "
                "stale after reset_metrics(clear=True); hold a "
                f"{method}_handle() instead",
            )
        name_node = node.args[0] if node.args else None
        if not isinstance(name_node, ast.Constant) or not isinstance(
            name_node.value, str
        ):
            yield context.finding(
                self,
                node,
                f"{method}() name must be a string literal so it is "
                "statically known",
            )
            return
        name = name_node.value
        yield from self._check_grammar(context, node, name, method)
        first = self._seen.get(name)
        if first is not None and first != (context.path, node.lineno):
            yield context.finding(
                self,
                node,
                f"instrument {name!r} already registered at "
                f"{first[0]}:{first[1]}; names are registered exactly once",
            )
        else:
            self._seen[name] = (context.path, node.lineno)

    def _check_grammar(
        self, context: LintContext, node: ast.AST, name: str, method: str
    ) -> Iterator[Finding]:
        if not _NAME_GRAMMAR.match(name):
            yield context.finding(
                self,
                node,
                f"{method} name {name!r} violates the "
                "<module>.<noun>_<unit> grammar (lowercase dotted "
                "snake_case, 2-4 segments)",
            )
        elif method == "histogram" and not name.endswith(_UNIT_SUFFIXES):
            yield context.finding(
                self,
                node,
                f"histogram name {name!r} needs a unit suffix "
                f"({', '.join(_UNIT_SUFFIXES)})",
            )

    def _check_span(
        self,
        context: LintContext,
        node: ast.Call,
        span_constants: Dict[str, str],
    ) -> Iterator[Finding]:
        name_node = node.args[0] if node.args else None
        if isinstance(name_node, ast.Name):
            literal = span_constants.get(name_node.id)
            if literal is None:
                yield context.finding(
                    self,
                    node,
                    f"span name {name_node.id!r} is not a module-level "
                    "string constant",
                )
            else:
                yield from self._check_grammar(context, node, literal, "span")
        elif isinstance(name_node, ast.Constant) and isinstance(
            name_node.value, str
        ):
            yield context.finding(
                self,
                node,
                f"inline span name {name_node.value!r}; hoist it to a "
                "module-level constant so the name is registered once",
            )
        else:
            yield context.finding(
                self,
                node,
                "span name is not statically known; use a module-level "
                "string constant",
            )
