"""RPL006: observability instruments are registered once, named on-grammar.

The metrics registry and span tracer key everything by name: two modules
registering the same name silently share an instrument, a worker whose
name drifts from the parent's stops merging, and ``repro report`` output
becomes unreadable the moment names stop following the
``<module>.<noun>_<unit>`` grammar (DESIGN.md §9).  This rule pins the
conventions:

* ``global_registry().counter/gauge/histogram(...)`` calls happen at
  module level (import time), take a string-literal name, and no name is
  registered twice across the linted file set;
* instrument names match ``seg.seg[.seg[.seg]]`` of lowercase
  ``snake_case`` segments; histogram names carry an explicit unit suffix;
* ``global_tracer().span(...)`` takes a module-level string constant
  (``_SPAN_SWEEP = "testbed.sweep"``) so every span name is statically
  registered exactly once.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Tuple

from ..linter import Finding, LintContext, Rule

_NAME_GRAMMAR = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,3}$")

#: Histogram names must say what they measure in what unit.
_UNIT_SUFFIXES = ("_s", "_ns", "_ms", "_bytes", "_db", "_hz", "_count")

_INSTRUMENT_METHODS = ("counter", "gauge", "histogram")


def _registry_call(node: ast.Call, context: LintContext) -> str:
    """Which instrument method (or ``""``) a call registers through."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _INSTRUMENT_METHODS:
        return ""
    target = func.value
    if isinstance(target, ast.Call):
        resolved = context.imports.resolve(target.func)
        if resolved is not None and resolved.endswith("global_registry"):
            return func.attr
    return ""


def _span_call(node: ast.Call, context: LintContext) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "span":
        return False
    target = func.value
    if isinstance(target, ast.Call):
        resolved = context.imports.resolve(target.func)
        return resolved is not None and resolved.endswith("global_tracer")
    return False


class ObsNamingRule(Rule):
    """RPL006: module-level, unique, grammar-conforming instrument names."""

    id = "RPL006"
    title = "observability instrument registration or naming violation"
    hint = (
        "register instruments once at module level with literal names "
        "matching <module>.<noun>_<unit>; hoist span names to module-level "
        "string constants"
    )

    def __init__(self) -> None:
        # Cross-file state for this lint run: name -> first site.
        self._seen: Dict[str, Tuple[str, int]] = {}

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.is_tests:
            return
        span_constants = context.module_string_constants()
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _registry_call(node, context)
            if method:
                yield from self._check_registration(context, node, method)
            elif _span_call(node, context):
                yield from self._check_span(context, node, span_constants)

    def _check_registration(
        self, context: LintContext, node: ast.Call, method: str
    ) -> Iterator[Finding]:
        if not context.at_module_level(node):
            yield context.finding(
                self,
                node,
                f"{method}() registration inside a function; instruments "
                "are registered once at module import",
            )
        name_node = node.args[0] if node.args else None
        if not isinstance(name_node, ast.Constant) or not isinstance(
            name_node.value, str
        ):
            yield context.finding(
                self,
                node,
                f"{method}() name must be a string literal so it is "
                "statically known",
            )
            return
        name = name_node.value
        yield from self._check_grammar(context, node, name, method)
        first = self._seen.get(name)
        if first is not None and first != (context.path, node.lineno):
            yield context.finding(
                self,
                node,
                f"instrument {name!r} already registered at "
                f"{first[0]}:{first[1]}; names are registered exactly once",
            )
        else:
            self._seen[name] = (context.path, node.lineno)

    def _check_grammar(
        self, context: LintContext, node: ast.AST, name: str, method: str
    ) -> Iterator[Finding]:
        if not _NAME_GRAMMAR.match(name):
            yield context.finding(
                self,
                node,
                f"{method} name {name!r} violates the "
                "<module>.<noun>_<unit> grammar (lowercase dotted "
                "snake_case, 2-4 segments)",
            )
        elif method == "histogram" and not name.endswith(_UNIT_SUFFIXES):
            yield context.finding(
                self,
                node,
                f"histogram name {name!r} needs a unit suffix "
                f"({', '.join(_UNIT_SUFFIXES)})",
            )

    def _check_span(
        self,
        context: LintContext,
        node: ast.Call,
        span_constants: Dict[str, str],
    ) -> Iterator[Finding]:
        name_node = node.args[0] if node.args else None
        if isinstance(name_node, ast.Name):
            literal = span_constants.get(name_node.id)
            if literal is None:
                yield context.finding(
                    self,
                    node,
                    f"span name {name_node.id!r} is not a module-level "
                    "string constant",
                )
            else:
                yield from self._check_grammar(context, node, literal, "span")
        elif isinstance(name_node, ast.Constant) and isinstance(
            name_node.value, str
        ):
            yield context.finding(
                self,
                node,
                f"inline span name {name_node.value!r}; hoist it to a "
                "module-level constant so the name is registered once",
            )
        else:
            yield context.finding(
                self,
                node,
                "span name is not statically known; use a module-level "
                "string constant",
            )
