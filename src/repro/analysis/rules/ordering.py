"""RPL004: hash-ordered iteration must not feed order-sensitive sinks.

Iterating a ``set`` yields elements in hash order, which varies with
``PYTHONHASHSEED`` and across interpreter versions — the classic silent
determinism leak.  Membership tests, ``len``, and order-insensitive
reductions are fine; materialising a set into an ordered container
(``list``/``tuple``), looping over one, joining one into a string, or
serialising one into JSON is not, unless the set passes through an
explicit ``sorted(...)`` first.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..linter import Finding, LintContext, Rule

#: Builtins that consume an iterable order-insensitively (safe sinks).
_ORDER_INSENSITIVE = {
    "sorted",
    "set",
    "frozenset",
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
}

#: Builtins that freeze iteration order into an ordered container.
_ORDERED_MATERIALIZERS = {"list", "tuple"}


def _is_set_expr(node: ast.AST) -> bool:
    """Whether an expression is syntactically set-typed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        # set algebra keeps the type: blocked | extra, seen - done, ...
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


def _sink_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


class UnorderedIterationRule(Rule):
    """RPL004: sets reaching ordered sinks need an explicit ``sorted()``."""

    id = "RPL004"
    title = "hash-ordered set iteration feeds an order-sensitive sink"
    hint = "wrap the set in sorted(...) before freezing its order"

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield context.finding(
                    self,
                    node.iter,
                    "for-loop over a set runs in hash order",
                )
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield context.finding(
                            self,
                            generator.iter,
                            "comprehension freezes a set's hash order into "
                            "an ordered container",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(context, node)

    def _check_call(
        self, context: LintContext, node: ast.Call
    ) -> Iterator[Finding]:
        name = _sink_name(node)
        if name in _ORDERED_MATERIALIZERS:
            for arg in node.args:
                if _is_set_expr(arg):
                    yield context.finding(
                        self,
                        node,
                        f"{name}(set) freezes hash order",
                    )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and _is_set_expr(node.args[0])
        ):
            yield context.finding(
                self,
                node,
                "str.join over a set concatenates in hash order",
            )
        else:
            resolved = context.imports.resolve(node.func)
            if resolved is not None and resolved.endswith("json.dumps"):
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    for child in ast.walk(arg):
                        if _is_set_expr(child) or _is_keys_call(child):
                            yield context.finding(
                                self,
                                node,
                                "json.dumps payload contains a set / raw "
                                ".keys() view; serialise a sorted list",
                            )
                            break
