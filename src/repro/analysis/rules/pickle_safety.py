"""RPL103/RPL105: everything that crosses the process-pool boundary.

The parallel runner's contract (:mod:`repro.experiments.runner`) is that
task functions are module-level picklable pure functions of picklable
payloads.  Two rule halves make that contract decidable:

* **RPL103** — the *function* side.  Whatever is handed to
  ``run_parallel``/``pool.submit``/``pool.map``/``run_in_executor`` must
  be a module-level function: lambdas and closure-captured nested
  functions fail to pickle at runtime (late, on the first parallel
  run), and bound methods drag their whole instance across.  A resolved
  module-level function must additionally not rebind module globals —
  directly or through any callee — because worker-side rebindings die
  with the worker while the parent keeps reading its own stale copy
  (the bug class PR 9's stale-handle fix patched by hand).  Rebindings
  inside ``repro/obs/`` are exempt: per-process observability sequence
  counters are by design, and worker samples are merged explicitly.
* **RPL105** — the *value* side.  Payload arguments at the same
  submission sites must be transitively pickle-safe: no lambdas or
  generator expressions, no live handles (open files, locks, sockets),
  and no project dataclasses whose fields — possibly several classes
  deep, in other modules — hold such handles.  The class-field walk is
  what needs the project index: a single-file pass cannot see that the
  payload type defined elsewhere carries an ``asyncio.Task``.

Submission sites are matched conservatively: known runner entry points
by resolved name, plus ``.submit``/``.map`` on receivers whose name
suggests an executor (``pool``, ``executor``).  ``run_in_executor(None,
...)`` is the stdlib's thread-pool escape hatch — threads share the
heap, nothing is pickled — so it is exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph import CallGraph, CallSite, ProjectContext, _dotted_of
from ..linter import Finding, GraphRule, LintContext
from ..propagate import Fact, propagate_callers

#: Resolved callables that ship their function argument to worker
#: processes.  Value = index of the function argument.
_RUNNER_ENTRY_FN_ARG = {
    "run_parallel": 0,
    "submit": 0,
    "map": 0,
    "run_in_executor": 1,
}

_EXECUTOR_HINTS = ("pool", "executor")

#: Constructors whose results hold process-local state no pickle can
#: carry: file handles, synchronisation primitives, sockets, event loops.
_UNPICKLABLE_CALLS = {
    "open",
    "threading.Lock",
    "threading.RLock",
    "threading.Event",
    "threading.Condition",
    "threading.Semaphore",
    "threading.Thread",
    "asyncio.Lock",
    "asyncio.Event",
    "asyncio.Queue",
    "asyncio.get_event_loop",
    "asyncio.get_running_loop",
    "socket.socket",
    "sqlite3.connect",
}

#: Type names that mark a field as unable to cross the pickle boundary.
_UNPICKLABLE_TYPES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Event",
    "threading.Condition",
    "threading.Thread",
    "asyncio.Future",
    "asyncio.Task",
    "asyncio.Lock",
    "asyncio.Event",
    "asyncio.Queue",
    "asyncio.AbstractEventLoop",
    "socket.socket",
    "io.TextIOWrapper",
    "io.BufferedReader",
    "io.BufferedWriter",
    "typing.TextIO",
    "typing.BinaryIO",
    "typing.IO",
}


def _submission_site(site: CallSite) -> Optional[Tuple[int, bool]]:
    """``(fn_arg_index, is_pool)`` when this call ships work to workers.

    ``is_pool`` is False for ``run_in_executor(None, ...)`` — a thread
    executor, where pickling does not apply.
    """
    func = site.node.func
    name: Optional[str] = None
    if site.dotted is not None and site.dotted.endswith(".run_parallel"):
        name = "run_parallel"
    elif site.dotted == "run_parallel" or (
        site.callee is not None and site.callee.endswith(".run_parallel")
    ):
        name = "run_parallel"
    elif isinstance(func, ast.Attribute):
        if func.attr == "run_in_executor":
            name = "run_in_executor"
        elif func.attr in ("submit", "map"):
            receiver = (_dotted_of(func.value) or "").lower()
            if any(hint in receiver for hint in _EXECUTOR_HINTS):
                name = func.attr
    if name is None:
        return None
    fn_arg = _RUNNER_ENTRY_FN_ARG[name]
    if len(site.node.args) <= fn_arg:
        return None
    if name == "run_in_executor":
        executor = site.node.args[0]
        if isinstance(executor, ast.Constant) and executor.value is None:
            return None
    return fn_arg, True


def _global_rebinders(project: ProjectContext) -> Dict[str, str]:
    """Functions whose body declares ``global X`` and stores to ``X``.

    ``repro/obs/`` is exempt: its per-process sequence counters are the
    sanctioned design, merged across workers explicitly.
    """
    seeds: Dict[str, str] = {}
    for info in project.graph.functions():
        context = project.context_for(info.path)
        if context is None or context.in_obs:
            continue
        declared: Set[str] = set()
        stored: Dict[str, int] = {}
        for node in ast.walk(info.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not info.node:
                    continue
            if isinstance(node, ast.Global):
                declared.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                stored.setdefault(node.id, node.lineno)
        hits = sorted(declared & set(stored))
        if hits:
            seeds[info.qualname] = (
                f"rebinds module global {hits[0]!r} at "
                f"{info.path}:{stored[hits[0]]}"
            )
    return seeds


def _local_assignments(info_node: ast.AST) -> Dict[str, ast.expr]:
    """name -> assigned value for simple Assigns in a function's own body."""
    out: Dict[str, ast.expr] = {}
    stack: List[ast.AST] = list(ast.iter_child_nodes(info_node))
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                out[target.id] = node.value
        stack.extend(ast.iter_child_nodes(node))
    return out


class PoolSubmissionRule(GraphRule):
    """RPL103: pool-submitted functions are module-level, picklable, and
    free of module-global mutation."""

    id = "RPL103"
    title = "pool-submitted function is unpicklable or mutates module globals"
    hint = (
        "submit a module-level pure function of its arguments; worker-side "
        "module state dies with the pool (ship results, not side effects)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        mutators = propagate_callers(graph, _global_rebinders(project))
        for qualname in sorted(graph.sites):
            for site in graph.sites[qualname]:
                matched = _submission_site(site)
                if matched is None:
                    continue
                context = project.context_for(site.path)
                if context is None or context.is_tests:
                    continue
                fn_arg, _ = matched
                fn_expr = site.node.args[fn_arg]
                yield from self._check_fn(
                    project, context, qualname, site, fn_expr, mutators
                )

    def _check_fn(
        self,
        project: ProjectContext,
        context: LintContext,
        caller: str,
        site: CallSite,
        fn_expr: ast.expr,
        mutators: Dict[str, Fact],
    ) -> Iterator[Finding]:
        graph = project.graph
        if isinstance(fn_expr, ast.Lambda):
            yield context.finding(
                self,
                site.node,
                "a lambda cannot be pickled to a worker process",
            )
            return
        dotted = _dotted_of(fn_expr)
        if dotted is None:
            return
        if dotted.startswith("self."):
            yield context.finding(
                self,
                site.node,
                f"bound method {dotted} submitted to a pool drags its whole "
                "instance through pickle",
            )
            return
        caller_info = graph.index.functions.get(caller)
        if caller_info is not None and "." not in dotted:
            assigned = _local_assignments(caller_info.node).get(dotted)
            if isinstance(assigned, ast.Lambda):
                yield context.finding(
                    self,
                    site.node,
                    f"{dotted} is a local lambda; lambdas cannot be pickled "
                    "to a worker process",
                )
                return
        resolved = graph.resolve_dotted(caller, dotted)
        info = graph.index.function(resolved)
        if info is None:
            return
        if info.is_nested:
            yield context.finding(
                self,
                site.node,
                f"{info.qualname} is a nested function; closures cannot be "
                "pickled to a worker process",
            )
            return
        fact = mutators.get(info.qualname)
        if fact is not None:
            yield context.finding(
                self,
                site.node,
                f"pool-submitted {info.qualname} mutates module globals "
                f"({fact.chain()}); worker-side mutations die with the pool",
            )


class PickleBoundaryRule(GraphRule):
    """RPL105: payload values crossing the pickle boundary must be
    transitively pickle-safe."""

    id = "RPL105"
    title = "value crossing the pickle boundary is not pickle-safe"
    hint = (
        "ship plain values (tuples, dataclasses of arrays/scalars); keep "
        "handles, locks, loops and callables on the parent side"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for qualname in sorted(graph.sites):
            for site in graph.sites[qualname]:
                matched = _submission_site(site)
                if matched is None:
                    continue
                context = project.context_for(site.path)
                if context is None or context.is_tests:
                    continue
                fn_arg, _ = matched
                payload = [
                    arg
                    for index, arg in enumerate(site.node.args)
                    if index > fn_arg and not isinstance(arg, ast.Starred)
                ]
                payload.extend(kw.value for kw in site.node.keywords)
                for arg in payload:
                    yield from self._check_value(
                        project, context, qualname, site, arg, depth=0
                    )

    def _check_value(
        self,
        project: ProjectContext,
        context: LintContext,
        caller: str,
        site: CallSite,
        expr: ast.expr,
        depth: int,
    ) -> Iterator[Finding]:
        graph = project.graph
        if depth > 4:
            return
        if isinstance(expr, ast.Lambda):
            yield context.finding(
                self, site.node, "payload contains a lambda; not picklable"
            )
            return
        if isinstance(expr, ast.GeneratorExp):
            yield context.finding(
                self,
                site.node,
                "payload contains a generator expression; generators are "
                "not picklable",
            )
            return
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            for element in expr.elts:
                yield from self._check_value(
                    project, context, caller, site, element, depth + 1
                )
            return
        if isinstance(expr, (ast.ListComp, ast.SetComp)):
            yield from self._check_value(
                project, context, caller, site, expr.elt, depth + 1
            )
            return
        if isinstance(expr, ast.Name):
            caller_info = graph.index.functions.get(caller)
            if caller_info is not None:
                assigned = _local_assignments(caller_info.node).get(expr.id)
                if assigned is not None and not isinstance(assigned, ast.Name):
                    yield from self._check_value(
                        project, context, caller, site, assigned, depth + 1
                    )
            return
        if isinstance(expr, ast.Call):
            dotted = _dotted_of(expr.func)
            if dotted is None:
                return
            absolute = graph.resolve_dotted(caller, dotted)
            module_info = graph.index.modules.get(
                caller_module(graph, caller) or ""
            )
            external = dotted
            if module_info is not None:
                head, _, tail = dotted.partition(".")
                target = module_info.imports.get(head)
                if target is not None:
                    external = f"{target}.{tail}" if tail else target
            if external in _UNPICKLABLE_CALLS:
                yield context.finding(
                    self,
                    site.node,
                    f"payload holds a live {external}() object; handles "
                    "cannot cross the pickle boundary",
                )
                return
            class_qual = absolute
            if class_qual is not None and class_qual.endswith(".__init__"):
                class_qual = class_qual.rsplit(".__init__", 1)[0]
            if class_qual is not None and class_qual in graph.index.classes:
                yield from self._check_class(
                    project, context, site, class_qual, (), set()
                )
            return

    def _check_class(
        self,
        project: ProjectContext,
        context: LintContext,
        site: CallSite,
        class_qual: str,
        path: Tuple[str, ...],
        seen: Set[str],
    ) -> Iterator[Finding]:
        """Walk a payload class's fields (and field classes) for handles."""
        if class_qual in seen or len(seen) > 16:
            return
        seen.add(class_qual)
        info = project.index.classes.get(class_qual)
        if info is None:
            return
        for field_name, type_names in info.field_types:
            for type_name in type_names:
                if type_name in _UNPICKLABLE_TYPES:
                    trail = " -> ".join([*path, f"{info.name}.{field_name}"])
                    yield context.finding(
                        self,
                        site.node,
                        f"payload type {class_qual} is not pickle-safe: "
                        f"field {trail} holds {type_name}",
                    )
                elif type_name in project.index.classes:
                    yield from self._check_class(
                        project,
                        context,
                        site,
                        type_name,
                        (*path, f"{info.name}.{field_name}"),
                        seen,
                    )


def caller_module(graph: CallGraph, caller: str) -> Optional[str]:
    """Module name owning ``caller`` (function qualname or ``<module>``)."""
    info = graph.index.functions.get(caller)
    if info is not None:
        return info.module
    if caller.endswith(".<module>"):
        return caller.rsplit(".<module>", 1)[0]
    return None
