"""RNG threading rules: RPL001 (global RNG) and RPL002 (shadowed streams).

The determinism story of this repo (bit-identical results at any
``--jobs``) rests on one discipline: every random draw comes from a
``numpy.random.Generator`` threaded down from a ``SeedSequence.spawn``
at the experiment boundary.  Global-state RNGs (``np.random.seed``,
``random.random``) and generators constructed ad hoc inside library
functions both break that chain silently.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..linter import Finding, LintContext, Rule

#: numpy.random constructors that are fine when given an explicit seed.
_SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
    "numpy.random.BitGenerator",
}

#: stdlib ``random`` class constructors (seeded use is still discouraged in
#: numerics, but only the module-level global-state functions are banned).
_STDLIB_SEEDED = {"random.Random", "random.SystemRandom"}


def _canonical_numpy(resolved: str) -> Optional[str]:
    """Normalize ``np.random.x``/``numpy.random.x`` to ``numpy.random.x``."""
    if resolved.startswith("numpy.random."):
        return resolved
    return None


class GlobalRngRule(Rule):
    """RPL001: no global-RNG calls, no unseeded ``default_rng()``."""

    id = "RPL001"
    title = "global or unseeded RNG call"
    hint = (
        "thread a numpy.random.Generator derived from SeedSequence.spawn "
        "down from the experiment boundary"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.is_tests:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = context.imports.resolve(node.func)
            if resolved is None:
                continue
            numpy_name = _canonical_numpy(resolved)
            if numpy_name is not None:
                tail = numpy_name.rsplit(".", 1)[1]
                if numpy_name == "numpy.random.default_rng":
                    if not node.args and not node.keywords:
                        yield context.finding(
                            self,
                            node,
                            "unseeded default_rng() draws OS entropy; pass an "
                            "explicit seed or SeedSequence",
                        )
                elif numpy_name == "numpy.random.RandomState":
                    yield context.finding(
                        self,
                        node,
                        "legacy numpy.random.RandomState; use "
                        "default_rng(seed) instead",
                    )
                elif numpy_name in _SEEDED_CONSTRUCTORS:
                    pass  # explicit bit-generator plumbing is the good path
                elif tail.islower():
                    yield context.finding(
                        self,
                        node,
                        f"global numpy RNG call numpy.random.{tail}() mutates "
                        "hidden process state",
                    )
            elif resolved.startswith("random."):
                if resolved in _STDLIB_SEEDED:
                    if not node.args and not node.keywords:
                        yield context.finding(
                            self,
                            node,
                            f"unseeded {resolved}() draws OS entropy",
                        )
                elif resolved.count(".") == 1 and resolved.rsplit(".", 1)[1].islower():
                    yield context.finding(
                        self,
                        node,
                        f"stdlib global RNG call {resolved}() mutates hidden "
                        "process state",
                    )


def _rng_like_params(node: ast.AST) -> Set[str]:
    """Parameter names that mark a function as RNG/seed-threaded."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    names: Set[str] = set()
    args = node.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]:
        name = arg.arg
        if name in ("rng", "seed") or name.endswith(("_rng", "_seed")):
            names.add(name)
    return names


def _names_in(node: ast.Call) -> Set[str]:
    """Every ``Name`` referenced by a call's arguments."""
    found: Set[str] = set()
    for arg in [*node.args, *[kw.value for kw in node.keywords]]:
        for child in ast.walk(arg):
            if isinstance(child, ast.Name):
                found.add(child.id)
    return found


class ShadowedRngRule(Rule):
    """RPL002: RNG/seed-threaded functions must not mint unrelated streams.

    A function that accepts ``rng``/``seed`` (or ``*_rng``/``*_seed``)
    advertises that its caller controls the random stream.  Constructing
    a generator inside it from anything that does not reference one of
    those parameters (``default_rng(0)``, ``default_rng(12345)``) quietly
    takes that control back.
    """

    id = "RPL002"
    title = "internal Generator construction shadows the threaded rng/seed"
    hint = (
        "derive the generator from the rng/seed parameter, or move the "
        "fixed fallback stream into a dedicated module-level helper"
    )

    _CONSTRUCTORS = _SEEDED_CONSTRUCTORS | _STDLIB_SEEDED

    def check(self, context: LintContext) -> Iterator[Finding]:
        if context.is_tests:
            return
        for function in ast.walk(context.tree):
            params = _rng_like_params(function)
            if not params:
                continue
            for node in self._own_calls(function):
                resolved = context.imports.resolve(node.func)
                if resolved is None or resolved not in self._CONSTRUCTORS:
                    continue
                if _names_in(node) & params:
                    continue  # derived from the threaded seed: the good path
                yield context.finding(
                    self,
                    node,
                    f"{resolved.rsplit('.', 1)[1]}(...) inside a function "
                    f"taking {', '.join(sorted(params))} ignores the "
                    "caller-threaded stream",
                )

    @staticmethod
    def _own_calls(function: ast.AST) -> Iterator[ast.Call]:
        """Calls in ``function``'s body, excluding nested function bodies."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(function))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scopes are visited on their own
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))
