"""RPL104: interprocedural RNG escape — the cross-call-edge RPL002.

RPL002 catches a function that *takes* ``rng``/``seed`` and mints an
unrelated stream in its own body.  The interprocedural variant is the
one that actually bites at scale: ``f(rng)`` hands its generator to a
helper — possibly in another module, possibly under a parameter named
``samples`` — and that helper (or something *it* forwards its arguments
to) constructs a stream of its own from constants.  The caller believes
one seed controls the run; a second, fixed stream is drawn anyway.

Propagation is parameter-flow-shaped (:func:`propagate_param_flow`): a
function *escapes* when it mints directly from constants, or when it
passes one of its own parameters into an escaping callee.  Merely
calling an escaping helper without handing it anything is fine — that is
RPL002's "dedicated module-level fallback stream" idiom, which stays
legal.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..graph import CallGraph, ProjectContext
from ..linter import Finding, GraphRule
from ..propagate import propagate_param_flow
from .rng import _SEEDED_CONSTRUCTORS, _STDLIB_SEEDED

_CONSTRUCTORS = _SEEDED_CONSTRUCTORS | _STDLIB_SEEDED


def _rng_like(params: Tuple[str, ...]) -> Set[str]:
    """The parameter names that advertise caller-controlled randomness."""
    return {
        name
        for name in params
        if name in ("rng", "seed") or name.endswith(("_rng", "_seed"))
    }


def _arg_names(call: ast.Call) -> Set[str]:
    names: Set[str] = set()
    for arg in [*call.args, *[kw.value for kw in call.keywords]]:
        for child in ast.walk(arg):
            if isinstance(child, ast.Name):
                names.add(child.id)
    return names


def _param_derived(node: ast.AST, params: Set[str]) -> Set[str]:
    """Parameters plus locals assigned (transitively) from them.

    The parallel-task idiom packs everything into one tuple parameter and
    unpacks it first thing (``seed, config, noise = task``); a stream
    minted from those locals is caller-derived just the same.  Fixpoint
    over simple assignments in the function's own body.
    """
    derived = set(params)
    assignments: List[Tuple[Set[str], Set[str]]] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop(0)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Assign, ast.AnnAssign)) and child.value:
            targets = (
                child.targets if isinstance(child, ast.Assign) else [child.target]
            )
            names = {
                element.id
                for target in targets
                for element in ast.walk(target)
                if isinstance(element, ast.Name)
            }
            sources = {
                element.id
                for element in ast.walk(child.value)
                if isinstance(element, ast.Name)
            }
            assignments.append((names, sources))
        stack.extend(ast.iter_child_nodes(child))
    changed = True
    while changed:
        changed = False
        for names, sources in assignments:
            if sources & derived and not names <= derived:
                derived |= names
                changed = True
    return derived


def _direct_minters(graph: CallGraph) -> Dict[str, str]:
    """Functions whose own body constructs a stream from constants.

    A construction that references *any* of the function's parameters —
    or a local derived from one — is caller input and does not count.
    """
    seeds: Dict[str, str] = {}
    for qualname in sorted(graph.sites):
        info = graph.index.functions.get(qualname)
        if info is not None:
            params = _param_derived(info.node, set(info.params))
        else:
            params = set()
        for site in graph.sites[qualname]:
            if site.dotted not in _CONSTRUCTORS:
                continue
            if _arg_names(site.node) & params:
                continue
            if qualname not in seeds:
                name = site.dotted.rsplit(".", 1)[1]
                seeds[qualname] = (
                    f"{name}(...) at {site.path}:{site.node.lineno}"
                )
    return seeds


class RngEscapeRule(GraphRule):
    """RPL104: a threaded rng/seed must not flow into a stream-minting
    callee."""

    id = "RPL104"
    title = "threaded rng/seed flows into a call that mints its own stream"
    hint = (
        "derive every stream in the callee chain from the parameter the "
        "caller threads down (SeedSequence.spawn at the boundary), or stop "
        "passing the rng into that helper"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        seeds = _direct_minters(graph)

        def params_of(qualname: str) -> Tuple[str, ...]:
            info = graph.index.functions.get(qualname)
            return info.params if info is not None else ()

        escapes = propagate_param_flow(graph, seeds, params_of)
        for info in graph.functions():
            rng_params = _rng_like(info.params)
            if not rng_params:
                continue
            context = project.context_for(info.path)
            if context is None or context.is_tests:
                continue
            for site in graph.calls_from(info.qualname):
                callee = site.callee
                if callee is None or callee == info.qualname:
                    continue
                fact = escapes.get(callee)
                if fact is None:
                    continue
                passed = _arg_names(site.node) & rng_params
                if not passed:
                    continue
                which = ", ".join(sorted(passed))
                yield context.finding(
                    self,
                    site.node,
                    f"{info.name} passes {which} into {callee}, which "
                    f"mints its own stream ({fact.chain()})",
                )
