"""Distribution statistics: the CDFs and complementary CDFs of Figures 5, 6, 8."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EmpiricalDistribution", "ccdf", "cdf"]


@dataclass(frozen=True)
class EmpiricalDistribution:
    """An empirical distribution with CDF/CCDF evaluation.

    Attributes
    ----------
    values:
        Sorted sample values.
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.size == 0:
            raise ValueError("need at least one sample")

    @staticmethod
    def from_samples(samples: np.ndarray) -> "EmpiricalDistribution":
        samples = np.asarray(samples, dtype=float).ravel()
        finite = samples[np.isfinite(samples)]
        if finite.size == 0:
            raise ValueError("no finite samples")
        return EmpiricalDistribution(values=np.sort(finite))

    @property
    def num_samples(self) -> int:
        return int(self.values.size)

    def cdf_at(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self.values, x, side="right") / self.values.size)

    def ccdf_at(self, x: float) -> float:
        """P(X > x)."""
        return 1.0 - self.cdf_at(x)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    def median(self) -> float:
        return self.quantile(0.5)

    def curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, CDF(x)) step-curve points for plotting or tabulation."""
        n = self.values.size
        return self.values, np.arange(1, n + 1) / n

    def ccdf_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, CCDF(x)) step-curve points (the axes of Figures 5 and 6)."""
        x, cdf_values = self.curve()
        return x, 1.0 - cdf_values + 1.0 / self.values.size


def cdf(samples: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Empirical CDF of ``samples`` evaluated at ``points``."""
    dist = EmpiricalDistribution.from_samples(samples)
    return np.array([dist.cdf_at(float(p)) for p in np.asarray(points, dtype=float)])


def ccdf(samples: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Empirical CCDF of ``samples`` evaluated at ``points``."""
    dist = EmpiricalDistribution.from_samples(samples)
    return np.array([dist.ccdf_at(float(p)) for p in np.asarray(points, dtype=float)])
