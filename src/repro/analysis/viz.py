"""Terminal visualisation: ASCII renderings of scenes and spectra.

No plotting dependency is available offline, so the examples and the CLI
render floor plans and per-subcarrier profiles as text.  These helpers are
also handy in test failure output.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..em.geometry import Point
from ..em.scene import Scene

__all__ = ["render_scene", "render_profile", "render_profiles", "sparkline"]

_GLYPHS = " .:-=+*#%@"


def sparkline(values: np.ndarray, lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """One-line block-character rendering of a numeric series."""
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    lo = float(np.min(values)) if lo is None else lo
    hi = float(np.max(values)) if hi is None else hi
    span = max(hi - lo, 1e-12)
    indices = ((values - lo) / span * (len(blocks) - 1)).clip(0, len(blocks) - 1)
    return "".join(blocks[int(round(i))] for i in indices)


def render_profile(
    values_db: np.ndarray,
    lo: float = -5.0,
    hi: float = 45.0,
    label: str = "",
) -> str:
    """A one-line density rendering of a per-subcarrier dB profile."""
    values = np.asarray(values_db, dtype=float)
    span = max(hi - lo, 1e-12)
    chars = []
    for value in values:
        level = int((min(max(value, lo), hi) - lo) / span * (len(_GLYPHS) - 1))
        chars.append(_GLYPHS[level])
    body = "".join(chars)
    prefix = f"{label} " if label else ""
    return f"{prefix}|{body}| min {values.min():5.1f}  max {values.max():5.1f} dB"


def render_profiles(
    profiles: Sequence[tuple[str, np.ndarray]],
    lo: float = -5.0,
    hi: float = 45.0,
) -> str:
    """Align several labelled profiles under each other."""
    if not profiles:
        return ""
    width = max(len(label) for label, _ in profiles)
    lines = []
    for label, values in profiles:
        lines.append(render_profile(values, lo=lo, hi=hi, label=label.ljust(width)))
    return "\n".join(lines)


def render_scene(
    scene: Scene,
    markers: Optional[dict[str, Point]] = None,
    width: int = 60,
    height: int = 24,
) -> str:
    """ASCII floor plan: walls '#', obstacles 'X', scatterers 'o', markers.

    Marker names are drawn by their first character (uppercased).
    """
    if width < 10 or height < 6:
        raise ValueError("canvas too small to render")
    xs: list[float] = []
    ys: list[float] = []
    for wall in scene.walls:
        xs.extend([wall.segment.start.x, wall.segment.end.x])
        ys.extend([wall.segment.start.y, wall.segment.end.y])
    for obstacle in scene.obstacles:
        xs.extend([obstacle.segment.start.x, obstacle.segment.end.x])
        ys.extend([obstacle.segment.start.y, obstacle.segment.end.y])
    for scatterer in scene.scatterers:
        xs.append(scatterer.position.x)
        ys.append(scatterer.position.y)
    if markers:
        for point in markers.values():
            xs.append(point.x)
            ys.append(point.y)
    if not xs:
        return "(empty scene)"
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    span_x = max(x1 - x0, 1e-9)
    span_y = max(y1 - y0, 1e-9)
    canvas = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, glyph: str) -> None:
        column = int((x - x0) / span_x * (width - 1))
        row = int((y1 - y) / span_y * (height - 1))  # y up
        canvas[row][column] = glyph

    def draw_segment(segment, glyph: str) -> None:
        steps = 2 * max(width, height)
        for step in range(steps + 1):
            t = step / steps
            put(
                segment.start.x + t * (segment.end.x - segment.start.x),
                segment.start.y + t * (segment.end.y - segment.start.y),
                glyph,
            )

    for wall in scene.walls:
        draw_segment(wall.segment, "#")
    for obstacle in scene.obstacles:
        draw_segment(obstacle.segment, "X")
    for scatterer in scene.scatterers:
        put(scatterer.position.x, scatterer.position.y, "o")
    if markers:
        for name, point in markers.items():
            put(point.x, point.y, name[:1].upper() or "?")
    return "\n".join("".join(row) for row in canvas)
