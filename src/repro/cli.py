"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    The quickstart scenario: optimise one NLoS link and print before/after.
``scene``
    ASCII floor plan of the §3 study scene.
``figures``
    Regenerate every figure's headline numbers (compact report).
``large-array``
    RFocus-scale sweep: SNR gain vs soundings for the scalable searchers
    on wall-sized element grids (N into the thousands).
``timing``
    Control-plane latency budgets against the §2 coherence times.
``control-robustness``
    Closed-loop sweep of link type x loss probability x mobility speed.
``serve``
    Environment-as-a-service demo: start the in-process asyncio service,
    drive a deterministic mixed workload through the async client, and
    report throughput, batching efficiency, session/cache hit rates and
    rejections.
``top``
    Terminal view of a live ``serve --telemetry`` stream: requests/s,
    batch efficiency, session hit rate, queue depth and per-type latency
    percentiles.
``bench-diff``
    Diff working-tree ``BENCH_*.json`` against their committed versions
    with per-metric tolerances (``--keys-only`` for the CI structural
    check).
``profile-sweep``
    cProfile one Figure-4 configuration sweep (basis or legacy mode).
``report``
    Render run records (JSONL emitted via ``--record``): per-phase
    wall-clock and counter breakdown, schema-validated.
``lint``
    AST-based reproducibility lint.  Per-file rules (RPL001-RPL006)
    cover RNG threading, wall-clock hygiene, ordering determinism,
    frozen constants and observability naming; graph-aware rules
    (RPL101-RPL105) check async/pool concurrency and pickle-boundary
    soundness across the whole project call graph (``--no-graph``
    degrades them to single-file scope).  Exits non-zero on
    non-baselined findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    from .analysis.viz import render_profiles
    from .core import ArrayConfiguration, ExhaustiveSearch, PressController, ThroughputObjective
    from .experiments import StudyConfig, build_nlos_setup, used_subcarrier_mask
    from .phy import expected_throughput_mbps

    setup = build_nlos_setup(
        args.placement, StudyConfig(tx_power_dbm=args.tx_power_dbm)
    )
    mask = used_subcarrier_mask()

    def measure(configuration):
        observation = setup.testbed.measure_csi(
            setup.tx_device, setup.rx_device, configuration
        )
        return observation.snr_db[mask]

    baseline_config = ArrayConfiguration(tuple([0] * setup.array.num_elements))
    baseline = measure(baseline_config)
    controller = PressController(setup.array, measure, ThroughputObjective())
    decision = controller.optimize(searcher=ExhaustiveSearch())
    optimised = measure(decision.configuration)
    print(f"placement {args.placement}, TX power {args.tx_power_dbm:.0f} dBm")
    print(
        f"optimised {setup.array.describe(decision.configuration)} in "
        f"{decision.search.num_evaluations} measurements "
        f"({1e3 * decision.elapsed_s:.1f} ms)"
    )
    print(render_profiles([("baseline ", baseline), ("optimised", optimised)]))
    print(
        f"goodput {expected_throughput_mbps(baseline):.1f} -> "
        f"{expected_throughput_mbps(optimised):.1f} Mbps"
    )
    return 0


def _cmd_scene(args: argparse.Namespace) -> int:
    from .analysis.viz import render_scene
    from .experiments import build_nlos_setup

    setup = build_nlos_setup(args.placement)
    markers = {
        "T": setup.tx_device.position,
        "R": setup.rx_device.position,
    }
    for index, element in enumerate(setup.array.elements):
        markers[f"{index}"] = element.position
    print(render_scene(setup.testbed.scene, markers=markers))
    print("# walls   X blocker   o scatterers   T tx   R rx   0-2 elements")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .experiments import (
        run_fig4,
        run_fig5,
        run_fig6,
        run_fig7,
        run_fig8,
        run_los_study,
    )

    rows = [("experiment", "paper", "measured")]
    fig4 = run_fig4(
        num_placements=args.placements,
        repetitions=args.repetitions,
        jobs=args.jobs,
    )
    rows.append(("Fig 4 mean SNR change", "18.6 dB", f"{fig4.largest_mean_change_db:.1f} dB"))
    rows.append(
        ("Fig 4 single-rep change", "26 dB", f"{fig4.largest_single_rep_change_db:.1f} dB")
    )
    fig5 = run_fig5(repetitions=args.repetitions)
    rows.append(("Fig 5 max null shift", "~9 subcarriers", f"{fig5.max_movement} subcarriers"))
    fig6 = run_fig6(repetitions=args.repetitions, jobs=args.jobs)
    rows.append(
        ("Fig 6 pairs w/ 10 dB change", "~38%", f"{100 * fig6.fraction_pairs_10db_change:.0f}%")
    )
    rows.append(
        ("Fig 6 configs below 20 dB", "< 9%", f"{100 * fig6.fraction_configs_below_20db:.0f}%")
    )
    fig7 = run_fig7(jobs=args.jobs)
    rows.append(
        (
            "Fig 7 opposite selectivity",
            "clear and opposite",
            f"{fig7.contrast_a_db:+.1f} / {fig7.contrast_b_db:+.1f} dB",
        )
    )
    fig8 = run_fig8(measurements_per_config=args.mimo_measurements)
    rows.append(("Fig 8 condition-number gap", "1.5 dB", f"{fig8.median_gap_db:.2f} dB"))
    los = run_los_study(repetitions=max(args.repetitions // 2, 2))
    rows.append(("LoS effect", "< 2 dB", f"{los.los_swing_db:.2f} dB"))
    print(format_table(rows, header_rule=True))
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .experiments import run_coverage_suite

    seeds = tuple(range(args.placements))
    maps = run_coverage_suite(
        placement_seeds=seeds, jobs=args.jobs, record_to=args.record
    )
    rows = [("placement", "worst base", "worst joint", "<20 dB base", "<20 dB joint")]
    for seed, cov in zip(seeds, maps):
        rows.append(
            (
                str(seed),
                f"{cov.worst_db('baseline'):.1f} dB",
                f"{cov.worst_db('joint'):.1f} dB",
                f"{100 * cov.fraction_below(20.0, 'baseline'):.0f}%",
                f"{100 * cov.fraction_below(20.0, 'joint'):.0f}%",
            )
        )
    print(format_table(rows, header_rule=True))
    return 0


def _cmd_large_array(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .experiments import run_large_array

    result = run_large_array(
        element_counts=tuple(int(x) for x in args.elements.split(",")),
        searchers=tuple(args.searchers.split(",")),
        placement_seed=args.placement,
        base_seed=args.seed,
        jobs=args.jobs,
        record_to=args.record,
    )
    rows = [("elements", "searcher", "baseline", "best", "gain", "soundings")]
    for cell in result.cells:
        rows.append(
            (
                str(cell.num_elements),
                cell.searcher,
                f"{cell.baseline_db:.1f} dB",
                f"{cell.best_db:.1f} dB",
                f"{cell.gain_db:+.1f} dB",
                str(cell.soundings),
            )
        )
    print(format_table(rows, header_rule=True))
    return 0


def _cmd_multi_user(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .experiments import run_multi_user

    result = run_multi_user(
        link_counts=tuple(int(x) for x in args.links.split(",")),
        strategies=tuple(args.strategies.split(",")),
        num_elements=args.elements,
        placement_seed=args.placement,
        searcher=args.searcher,
        aggregate=args.aggregate,
        floor_headroom_db=args.headroom,
        base_seed=args.seed,
        jobs=args.jobs,
        record_to=args.record,
    )
    rows = [("links", "strategy", "aggregate", "worst", "configs", "switches", "soundings")]
    for cell in result.cells:
        rows.append(
            (
                str(cell.num_links),
                cell.strategy,
                f"{cell.aggregate_db:.1f} dB",
                f"{cell.worst_link_db:.1f} dB",
                str(cell.num_distinct_configurations),
                str(cell.num_switches),
                str(cell.num_measurements),
            )
        )
    print(format_table(rows, header_rule=True))
    print()
    rows = [("links", "admitted", "rejected", "reclusters", "rate", "soundings")]
    for point in result.admission:
        rows.append(
            (
                str(point.num_links),
                str(point.admitted),
                str(point.rejected),
                str(point.reclusters),
                f"{100 * point.admission_rate:.0f}%",
                str(point.num_measurements),
            )
        )
    print(format_table(rows, header_rule=True))
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .control import (
        compare_links,
        sub_ghz_ism_link,
        ultrasound_link,
        wifi_inband_link,
        wired_bus_link,
    )

    reports = compare_links(
        [wired_bus_link(), sub_ghz_ism_link(), wifi_inband_link(), ultrasound_link()],
        num_elements=args.elements,
    )
    rows = [("medium", "actuation", "trials @0.5mph", "trials @6mph", "packet-scale")]
    for report in reports:
        rows.append(
            (
                report.link_name,
                f"{report.actuation_s * 1e3:.2f} ms",
                str(report.budget_stationary),
                str(report.budget_running),
                "yes" if report.packet_timescale_capable else "no",
            )
        )
    print(format_table(rows, header_rule=True))
    return 0


def _cmd_control_robustness(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .experiments import run_control_robustness

    result = run_control_robustness(
        links=tuple(args.links.split(",")),
        loss_probabilities=tuple(float(x) for x in args.loss.split(",")),
        speeds_mph=tuple(float(x) for x in args.speeds.split(",")),
        rounds=args.rounds,
        placement_seed=args.placement,
        maintenance_interval=args.maintenance_interval,
        base_seed=args.seed,
        jobs=args.jobs,
        record_to=args.record,
    )
    rows = [
        (
            "link",
            "loss",
            "speed",
            "final SNR",
            "meas",
            "retries",
            "lost",
            "failed",
            "degraded",
            "stale",
        )
    ]
    for cell in result.cells:
        rows.append(
            (
                cell.link_name,
                f"{cell.loss_probability:.2f}",
                f"{cell.speed_mph:g} mph",
                f"{cell.final_score:.1f} dB",
                str(cell.total_measurements),
                str(cell.total_retries),
                str(cell.total_lost_messages),
                str(cell.failed_actuations),
                f"{cell.degraded_rounds}/{cell.rounds}",
                f"{cell.stale_rounds}/{cell.rounds}",
            )
        )
    print(format_table(rows, header_rule=True))
    telemetry = result.telemetry
    print(
        f"# trace cache: {telemetry['trace_cache_hits']} hits, "
        f"{telemetry['trace_cache_misses']} misses, "
        f"{telemetry['trace_cache_entries']} entries "
        f"(merged over {telemetry['processes']} process(es))"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .analysis.reporting import format_table
    from .em import trace_cache
    from .obs import RunRecorder
    from .obs.metrics import monotonic_s
    from .obs.slo import SloPolicy
    from .serve import (
        EnvironmentService,
        ScenarioSpec,
        ServiceConfig,
        mixed_requests,
        run_closed_loop,
    )

    policy = SloPolicy.from_specs(args.slo) if args.slo else None
    scenarios = [
        ScenarioSpec(kind="nlos", placement=p) for p in range(args.scenarios)
    ]
    requests = mixed_requests(
        scenarios, args.requests, seed=args.seed, skew=args.skew
    )
    config = ServiceConfig(
        batch_window_s=args.window,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        session_capacity=args.session_capacity,
        search_jobs=args.search_jobs,
        trace_sample=args.trace_sample,
        telemetry_path=args.telemetry,
        telemetry_interval_s=args.telemetry_interval,
    )
    cache = trace_cache.configure()
    timer = monotonic_s if policy is not None else None

    async def drive():
        async with EnvironmentService(config) as service:
            load = await run_closed_loop(
                service.submit, requests, args.concurrency, timer=timer
            )
            return service, load

    with RunRecorder(
        "serve_demo",
        config={
            "requests": args.requests,
            "concurrency": args.concurrency,
            "scenarios": args.scenarios,
            "batch_window_s": config.batch_window_s,
            "max_batch": config.max_batch,
            "max_pending": config.max_pending,
            "session_capacity": config.session_capacity,
            "trace_sample": config.trace_sample,
            "skew": args.skew,
        },
        path=args.record,
        seeds={"workload": args.seed},
    ) as recorder:
        service, load = asyncio.run(drive())
        recorder.add_request_traces(service.drain_request_traces())
    record = recorder.record
    wall_s = record["wall_s"] if record else float("nan")
    counters = record["metrics"]["counters"] if record else {}
    batches = counters.get("serve.batches", 0)
    batched = counters.get("serve.batched_requests", 0)
    session_lookups = service.session_hits + service.session_misses
    cache_lookups = cache.hits + cache.misses

    rows = [("metric", "value")]
    rows.append(("requests", str(len(requests))))
    rows.append(("completed", str(load.completed)))
    rows.append(("rejected", str(load.rejected)))
    rows.append(("failed", str(load.failed)))
    rows.append(("wall", f"{wall_s:.2f} s"))
    rows.append(("throughput", f"{load.completed / wall_s:.1f} req/s"))
    rows.append(("batches", str(batches)))
    rows.append(
        ("batching efficiency", f"{batched / max(batches, 1):.1f} req/batch")
    )
    rows.append(
        (
            "session hit rate",
            f"{service.session_hits / max(session_lookups, 1):.2f} "
            f"({service.sessions} hot, {service.session_evictions} evicted)",
        )
    )
    rows.append(
        (
            "trace cache hit rate",
            f"{cache.hit_rate:.2f} ({cache_lookups} lookups)",
        )
    )
    print(format_table(rows, header_rule=True))
    violated = False
    if policy is not None:
        print()
        for status in load.evaluate_slo(policy):
            print(f"slo {status.describe()}")
            violated = violated or not status.ok
    if violated:
        print("error: SLO violation(s), see above", file=sys.stderr)
        return 1
    if args.fail_on_rejections and load.rejected:
        print(
            f"error: {load.rejected} rejection(s) under max_pending="
            f"{config.max_pending}",
            file=sys.stderr,
        )
        return 1
    if load.failed:
        print(f"error: {load.failed} failed request(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .analysis.reporting import format_table
    from .obs.export import derive_rates, read_telemetry

    def render() -> bool:
        samples = read_telemetry(args.path)
        if not samples:
            print(f"no telemetry samples in {args.path!r} yet", file=sys.stderr)
            return False
        current = samples[-1]
        previous = samples[-2] if len(samples) > 1 else None
        rates = derive_rates(previous, current)
        rows = [("metric", "value")]
        rows.append(
            (
                "sample",
                f"#{current.get('seq', len(samples) - 1)} "
                f"@ {float(current.get('uptime_s', 0.0)):.2f}s uptime",
            )
        )
        rows.append(("requests/s", f"{rates['requests_per_s']:.1f}"))
        rows.append(("rejections/s", f"{rates['rejections_per_s']:.1f}"))
        rows.append(
            ("batch efficiency", f"{rates['batch_efficiency']:.1f} req/batch")
        )
        rows.append(("session hit rate", f"{rates['session_hit_rate']:.2f}"))
        rows.append(("queue depth", f"{rates['queue_depth']:.0f}"))
        rows.append(("hot sessions", f"{rates['sessions']:.0f}"))

        def fmt(value) -> str:
            return "n/a" if value is None else f"{float(value) * 1e3:.2f} ms"

        for name, digest in sorted(current.get("histograms", {}).items()):
            if not name.endswith(".request_latency_s"):
                continue
            kind = name.split(".")[1]
            rows.append(
                (
                    f"{kind} p50/p95/p99",
                    f"{fmt(digest.get('p50'))} / {fmt(digest.get('p95'))} / "
                    f"{fmt(digest.get('p99'))} ({digest.get('count', 0)} reqs)",
                )
            )
        print(format_table(rows, header_rule=True))
        return True

    if not args.follow:
        return 0 if render() else 1
    try:
        while True:
            print(f"--- repro top: {args.path} ---")
            render()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from .analysis.bench_diff import diff_against_git, parse_metric_tolerances

    try:
        overrides = parse_metric_tolerances(args.metric_tolerance)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    findings, compared, skipped = diff_against_git(
        root=args.root,
        ref=args.ref,
        files=args.files or None,
        tolerance=args.tolerance,
        metric_tolerances=overrides,
        keys_only=args.keys_only,
    )
    for name in skipped:
        print(f"skipped {name} (no baseline at {args.ref} or unreadable)")
    mode = "keys" if args.keys_only else f"tolerance {args.tolerance:.0%}"
    print(
        f"compared {len(compared)} benchmark file(s) against {args.ref} ({mode})"
    )
    for finding in findings:
        print(finding.describe())
    if findings:
        print(f"error: {len(findings)} benchmark drift finding(s)", file=sys.stderr)
        return 1
    if not compared and not args.allow_empty:
        print("error: no benchmark files compared", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .obs import read_records, validate_record

    try:
        records = read_records(args.records)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not records:
        print(f"error: {args.records}: no records", file=sys.stderr)
        return 1
    exit_code = 0
    for index, record in enumerate(records):
        problems = validate_record(record)
        if problems:
            exit_code = 1
            print(f"record {index}: INVALID", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            continue
        meta = record["meta"]
        print(
            f"== {record['experiment']}  "
            f"wall {record['wall_s']:.2f} s  "
            f"jobs {record['jobs'] if record['jobs'] is not None else 'serial'}  "
            f"workers {record['workers']}  "
            f"git {meta.get('git') or '?'}  "
            f"obs {'on' if record.get('observability_enabled') else 'off'}"
        )
        spans = record["spans"]
        if spans:
            rows = [("phase", "count", "total", "mean", "max")]
            ordered = sorted(
                spans.items(), key=lambda item: item[1]["total_s"], reverse=True
            )
            for name, summary in ordered:
                count = summary["count"]
                total = summary["total_s"]
                mean = total / count if count else 0.0
                rows.append(
                    (
                        name,
                        str(count),
                        f"{1e3 * total:.1f} ms",
                        f"{1e3 * mean:.2f} ms",
                        f"{1e3 * summary['max_s']:.1f} ms",
                    )
                )
            print(format_table(rows, header_rule=True))
        counters = record["metrics"]["counters"]
        nonzero = [(name, value) for name, value in counters.items() if value]
        if nonzero:
            rows = [("counter", "total")]
            for name, value in sorted(nonzero):
                rows.append((name, str(value)))
            print(format_table(rows, header_rule=True))
        gauges = record["metrics"]["gauges"]
        nonzero_gauges = sorted(
            (name, value) for name, value in gauges.items() if value
        )
        if nonzero_gauges:
            print(
                "gauges: "
                + ", ".join(f"{name}={value:g}" for name, value in nonzero_gauges)
            )
        histograms = record["metrics"]["histograms"]
        observed = {
            name: state
            for name, state in sorted(histograms.items())
            if state["count"]
        }
        if observed:
            rows = [("histogram", "count", "mean", "min", "max")]
            for name, state in observed.items():
                mean = state["sum"] / state["count"]
                rows.append(
                    (
                        name,
                        str(state["count"]),
                        f"{mean:.3g} s",
                        f"{state['min']:.3g} s",
                        f"{state['max']:.3g} s",
                    )
                )
            print(format_table(rows, header_rule=True))
        print()
    return exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.baseline import (
        apply_baseline,
        load_baseline,
        prune_baseline,
        save_baseline,
        stale_entries,
    )
    from .analysis.linter import lint_project
    from .analysis.report import render_json, render_stats, render_text

    paths = args.paths or ["src", "benchmarks"]
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        run = lint_project(paths, graph=args.graph, select=select, ignore=ignore)
    except (FileNotFoundError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    findings, files_checked = run.findings, run.files_checked
    if args.update_baseline:
        save_baseline(args.baseline, findings)
        print(
            f"baseline {args.baseline}: recorded {len(findings)} finding(s) "
            f"from {files_checked} file(s)"
        )
        return 0
    try:
        baseline = load_baseline(args.baseline)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.prune_baseline:
        dropped = prune_baseline(args.baseline, findings, baseline)
        print(f"baseline {args.baseline}: pruned {dropped} stale entr(y/ies)")
        return 0
    fresh, baselined = apply_baseline(findings, baseline)
    stale = stale_entries(findings, baseline)
    if args.format == "json":
        print(
            render_json(
                fresh,
                files_checked,
                baselined,
                str(args.baseline),
                costs=run.costs,
            )
        )
    else:
        print(render_text(fresh, files_checked, baselined))
    if stale:
        total = sum(stale.values())
        print(
            f"warning: {total} stale baseline entr(y/ies) in {args.baseline} "
            "no longer match any finding; run --prune-baseline",
            file=sys.stderr,
        )
    if args.stats:
        print(render_stats(run.costs))
    if fresh:
        return 1
    if stale and args.strict:
        return 1
    return 0


def _cmd_profile_sweep(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from .experiments import StudyConfig, build_nlos_setup

    setup = build_nlos_setup(args.placement, StudyConfig())
    testbed = setup.testbed
    # Warm the caches outside the profile so the report shows steady-state
    # sweep cost, not one-off tracing (pass --cold to include it).
    if not args.cold:
        testbed.environment_paths(setup.tx_device, setup.rx_device)
        if args.mode == "basis":
            testbed.basis_for(setup.tx_device, setup.rx_device)
    rng = np.random.default_rng(args.seed) if args.seed is not None else None
    profiler = cProfile.Profile()
    profiler.enable()
    testbed.sweep(
        setup.tx_device,
        setup.rx_device,
        repetitions=args.repetitions,
        rng=rng,
        mode=args.mode,
    )
    profiler.disable()
    space = testbed.array.configuration_space()
    print(
        f"one Fig. 4 sweep: {testbed.array.num_elements} elements, "
        f"{space.size} configurations, {args.repetitions} repetitions, "
        f"mode={args.mode}"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(20)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PRESS (HotNets 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="optimise one NLoS link")
    demo.add_argument("--placement", type=int, default=2)
    demo.add_argument("--tx-power-dbm", type=float, default=5.0)
    demo.set_defaults(func=_cmd_demo)

    scene = sub.add_parser("scene", help="ASCII floor plan of the study scene")
    scene.add_argument("--placement", type=int, default=2)
    scene.set_defaults(func=_cmd_scene)

    figures = sub.add_parser("figures", help="compact paper-vs-measured report")
    figures.add_argument("--placements", type=int, default=8)
    figures.add_argument("--repetitions", type=int, default=10)
    figures.add_argument("--mimo-measurements", type=int, default=50)
    figures.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for parallel experiment axes "
        "(default: serial; 0 = all CPUs)",
    )
    figures.set_defaults(func=_cmd_figures)

    coverage = sub.add_parser("coverage", help="dead-zone coverage maps")
    coverage.add_argument("--placements", type=int, default=4)
    coverage.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the placement axis "
        "(default: serial; 0 = all CPUs)",
    )
    coverage.add_argument(
        "--record",
        default=None,
        metavar="JSONL",
        help="append a run record to this JSONL file",
    )
    coverage.set_defaults(func=_cmd_coverage)

    large_array = sub.add_parser(
        "large-array",
        help="RFocus-scale search: SNR gain vs soundings on wall-sized arrays",
    )
    large_array.add_argument(
        "--elements",
        default="64,256,1024",
        help="comma-separated element counts to sweep",
    )
    large_array.add_argument(
        "--searchers",
        default="greedy,rfocus",
        help="comma-separated searcher names (greedy, rfocus, random)",
    )
    large_array.add_argument("--placement", type=int, default=0)
    large_array.add_argument(
        "--seed", type=int, default=0, help="base searcher seed"
    )
    large_array.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the (elements x searcher) cell axis "
        "(default: serial; 0 = all CPUs)",
    )
    large_array.add_argument(
        "--record",
        default=None,
        metavar="JSONL",
        help="append a run record to this JSONL file",
    )
    large_array.set_defaults(func=_cmd_large_array)

    multi_user = sub.add_parser(
        "multi-user",
        help="multi-tenant strategies and admission on one shared array",
    )
    multi_user.add_argument(
        "--links",
        default="2,4,8",
        help="comma-separated concurrent-user counts to sweep",
    )
    multi_user.add_argument(
        "--strategies",
        default="per-link,hybrid,joint",
        help="comma-separated strategies (per-link, hybrid, joint)",
    )
    multi_user.add_argument(
        "--elements", type=int, default=256, help="array element count"
    )
    multi_user.add_argument(
        "--searcher",
        default="greedy",
        help="searcher name (greedy, rfocus, random)",
    )
    multi_user.add_argument(
        "--aggregate",
        default="mean",
        help="joint scoring mode (mean, worst, lexicographic)",
    )
    multi_user.add_argument(
        "--headroom",
        type=float,
        default=3.0,
        help="admission floor = solo optimum minus this headroom [dB]",
    )
    multi_user.add_argument("--placement", type=int, default=0)
    multi_user.add_argument(
        "--seed", type=int, default=0, help="base searcher seed"
    )
    multi_user.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for each sweep's cell axis "
        "(default: serial; 0 = all CPUs)",
    )
    multi_user.add_argument(
        "--record",
        default=None,
        metavar="JSONL",
        help="append a run record to this JSONL file",
    )
    multi_user.set_defaults(func=_cmd_multi_user)

    timing = sub.add_parser("timing", help="control-plane latency budgets")
    timing.add_argument("--elements", type=int, default=16)
    timing.set_defaults(func=_cmd_timing)

    robustness = sub.add_parser(
        "control-robustness",
        help="closed-loop link x loss x mobility sweep",
    )
    robustness.add_argument(
        "--links",
        default="wired,sub-ghz,wifi,ultrasound",
        help="comma-separated control media",
    )
    robustness.add_argument(
        "--loss",
        default="0.0,0.05,0.2",
        help="comma-separated per-message loss probabilities",
    )
    robustness.add_argument(
        "--speeds",
        default="0.5,6.0",
        help="comma-separated mobility speeds [mph]",
    )
    robustness.add_argument("--rounds", type=int, default=3)
    robustness.add_argument("--placement", type=int, default=2)
    robustness.add_argument(
        "--maintenance-interval",
        type=int,
        default=2,
        help="rounds between fault-detection sweeps (0 = off)",
    )
    robustness.add_argument("--seed", type=int, default=0)
    robustness.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep cells "
        "(default: serial; 0 = all CPUs)",
    )
    robustness.add_argument(
        "--record",
        default=None,
        metavar="JSONL",
        help="append a run record to this JSONL file",
    )
    robustness.set_defaults(func=_cmd_control_robustness)

    serve = sub.add_parser(
        "serve",
        help="environment-as-a-service demo: batched async serving + load",
    )
    serve.add_argument(
        "--requests", type=int, default=200, help="workload size"
    )
    serve.add_argument(
        "--concurrency", type=int, default=32, help="closed-loop clients"
    )
    serve.add_argument(
        "--scenarios",
        type=int,
        default=3,
        help="distinct NLoS placements in the workload",
    )
    serve.add_argument(
        "--skew",
        type=float,
        default=1.0,
        help="scenario popularity skew (0 = uniform, higher = hotter head)",
    )
    serve.add_argument(
        "--window",
        type=float,
        default=0.0,
        metavar="S",
        help="micro-batch coalescing window in seconds",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="backpressure threshold (queued requests before rejection)",
    )
    serve.add_argument("--session-capacity", type=int, default=8)
    serve.add_argument(
        "--search-jobs",
        type=int,
        default=None,
        help="worker processes for search requests "
        "(default: inline; 0 = all CPUs)",
    )
    serve.add_argument(
        "--trace-sample",
        type=int,
        default=16,
        metavar="N",
        help="trace every Nth request (default: %(default)s; 1 = all, "
        "0 = latency only; explicitly bound request ids are always "
        "traced)",
    )
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument(
        "--record",
        default=None,
        metavar="JSONL",
        help="append a run record to this JSONL file",
    )
    serve.add_argument(
        "--fail-on-rejections",
        action="store_true",
        help="exit non-zero if any request was shed (CI smoke mode)",
    )
    serve.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="enforce an SLO on the load run and exit non-zero on "
        "violation; repeatable; e.g. 'p95:evaluate<0.05' or "
        "'rate:serve.rejections/serve.requests<0.01'",
    )
    serve.add_argument(
        "--telemetry",
        default=None,
        metavar="JSONL",
        help="stream live telemetry samples to this file (tail with "
        "'repro top')",
    )
    serve.add_argument(
        "--telemetry-interval",
        type=float,
        default=0.25,
        metavar="S",
        help="telemetry sampling cadence in seconds",
    )
    serve.set_defaults(func=_cmd_serve)

    top = sub.add_parser(
        "top",
        help="render live serving telemetry from a --telemetry stream",
    )
    top.add_argument("path", help="telemetry JSONL file to read")
    top.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep re-rendering as new samples arrive (Ctrl-C to stop)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="re-render cadence in follow mode",
    )
    top.set_defaults(func=_cmd_top)

    bench_diff = sub.add_parser(
        "bench-diff",
        help="diff working-tree BENCH_*.json against committed baselines",
    )
    bench_diff.add_argument(
        "files",
        nargs="*",
        help="benchmark files to diff (default: BENCH_*.json under --root)",
    )
    bench_diff.add_argument(
        "--root", default=".", help="repository root holding the BENCH files"
    )
    bench_diff.add_argument(
        "--ref", default="HEAD", help="git ref providing the baselines"
    )
    bench_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        metavar="REL",
        help="relative drift tolerance for numeric metrics",
    )
    bench_diff.add_argument(
        "--metric-tolerance",
        action="append",
        default=[],
        metavar="PATTERN=REL",
        help="per-metric tolerance override (fnmatch on flattened keys); "
        "repeatable",
    )
    bench_diff.add_argument(
        "--keys-only",
        action="store_true",
        help="check structure only (CI mode: numbers are machine-dependent)",
    )
    bench_diff.add_argument(
        "--allow-empty",
        action="store_true",
        help="exit 0 even when no benchmark files could be compared",
    )
    bench_diff.set_defaults(func=_cmd_bench_diff)

    report = sub.add_parser(
        "report", help="render run records emitted via --record"
    )
    report.add_argument("records", help="path to a run-record JSONL file")
    report.set_defaults(func=_cmd_report)

    lint = sub.add_parser(
        "lint", help="AST-based reproducibility invariant checks"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src benchmarks)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format"
    )
    lint.add_argument(
        "--baseline",
        default=".reprolint-baseline.json",
        help="grandfathered-findings file (missing = empty)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries no current finding consumes, then exit 0",
    )
    lint.add_argument(
        "--graph",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "run whole-program RPL1xx rules over the project call graph "
            "(--no-graph degrades them to single-file scope)"
        ),
    )
    lint.add_argument(
        "--select",
        help="comma-separated rule ids to run exclusively (e.g. RPL101,RPL104)",
    )
    lint.add_argument(
        "--ignore",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    lint.add_argument(
        "--stats",
        action="store_true",
        help="print the per-rule cost table after the report",
    )
    lint.set_defaults(func=_cmd_lint)

    profile = sub.add_parser(
        "profile-sweep", help="cProfile one Fig. 4 configuration sweep"
    )
    profile.add_argument("--placement", type=int, default=2)
    profile.add_argument("--repetitions", type=int, default=10)
    profile.add_argument("--mode", choices=("basis", "legacy"), default="basis")
    profile.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed measurement noise/drift (default: exact channel)",
    )
    profile.add_argument(
        "--cold",
        action="store_true",
        help="include first-trace cache warm-up in the profile",
    )
    profile.set_defaults(func=_cmd_profile_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    sys.exit(main())
