"""Physical constants and radio parameters shared across the PRESS stack.

The paper's exploratory study (§3.1) transmits Wi-Fi-like OFDM signals over
20 MHz on channel 11 of the 2.4 GHz ISM band (2.462 GHz).  These module-level
constants pin down that numerology so every subsystem (EM simulator, OFDM
PHY, PRESS element models) agrees on the carrier, bandwidth and subcarrier
grid.
"""

from __future__ import annotations

import numpy as np

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Carrier frequency used throughout the paper's study: Wi-Fi channel 11 [Hz].
CARRIER_FREQUENCY_HZ = 2.462e9

#: Nominal 2.4 GHz ISM-band carrier [Hz], used by the §2 coherence-time
#: rules of thumb that quote "2.4 GHz" rather than a specific channel.
ISM_BAND_2G4_HZ = 2.4e9

#: Signal bandwidth [Hz] (20 MHz Wi-Fi-like OFDM).
BANDWIDTH_HZ = 20e6

#: OFDM FFT size (64 subcarriers over 20 MHz, as in 802.11a/g).
NUM_SUBCARRIERS = 64

#: Subcarrier spacing [Hz].
SUBCARRIER_SPACING_HZ = BANDWIDTH_HZ / NUM_SUBCARRIERS

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Standard noise reference temperature [K].
NOISE_TEMPERATURE_K = 290.0

#: Carrier wavelength [m] at the study's centre frequency.
WAVELENGTH_M = SPEED_OF_LIGHT / CARRIER_FREQUENCY_HZ


def db_to_linear(value_db: float | np.ndarray) -> float | np.ndarray:
    """Convert a power ratio expressed in dB to linear scale."""
    return 10.0 ** (np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(value: float | np.ndarray, floor: float = 1e-30) -> float | np.ndarray:
    """Convert a linear power ratio to dB.

    Values at or below ``floor`` are clamped before the logarithm so that
    exact zeros (e.g. a perfectly absorbed path) map to a large negative
    number instead of ``-inf``, which keeps downstream statistics finite.
    """
    value = np.maximum(np.asarray(value, dtype=float), floor)
    return 10.0 * np.log10(value)


def amplitude_db_to_linear(value_db: float | np.ndarray) -> float | np.ndarray:
    """Convert an amplitude (voltage) ratio in dB to linear scale."""
    return 10.0 ** (np.asarray(value_db, dtype=float) / 20.0)


def amplitude_linear_to_db(value: float | np.ndarray, floor: float = 1e-30) -> float | np.ndarray:
    """Convert a linear amplitude (voltage) ratio to dB."""
    value = np.maximum(np.asarray(value, dtype=float), floor)
    return 20.0 * np.log10(value)


def dbm_to_watts(power_dbm: float | np.ndarray) -> float | np.ndarray:
    """Convert power in dBm to watts."""
    return 1e-3 * db_to_linear(power_dbm)


def watts_to_dbm(power_w: float | np.ndarray) -> float | np.ndarray:
    """Convert power in watts to dBm."""
    return linear_to_db(np.asarray(power_w, dtype=float) / 1e-3)


def thermal_noise_power_w(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power kTB over ``bandwidth_hz``, degraded by a noise figure.

    Parameters
    ----------
    bandwidth_hz:
        Noise bandwidth in hertz.
    noise_figure_db:
        Receiver noise figure in dB (0 dB = ideal receiver).
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth_hz must be positive, got {bandwidth_hz}")
    ktb = BOLTZMANN * NOISE_TEMPERATURE_K * bandwidth_hz
    return float(ktb * db_to_linear(noise_figure_db))


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength [m] at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz
