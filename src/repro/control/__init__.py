"""Control plane: messages, link models, actuation protocol, latency analysis."""

from .energy import (
    ElementPowerModel,
    EnergyBudget,
    Harvester,
    indoor_light_harvester,
    rf_harvester,
)
from .latency import LatencyReport, analyze_link, compare_links
from .links import (
    ControlLink,
    sub_ghz_ism_link,
    ultrasound_link,
    wifi_inband_link,
    wired_bus_link,
)
from .messages import (
    Ack,
    Beacon,
    ConfigureCommand,
    ControlMessage,
    CsiReport,
    decode_message,
)
from .protocol import ActuationResult, ControlPlane, ElementAgent

__all__ = [
    "ControlLink",
    "sub_ghz_ism_link",
    "ultrasound_link",
    "wired_bus_link",
    "wifi_inband_link",
    "ControlMessage",
    "ConfigureCommand",
    "Ack",
    "Beacon",
    "CsiReport",
    "decode_message",
    "ControlPlane",
    "ElementAgent",
    "ActuationResult",
    "LatencyReport",
    "analyze_link",
    "compare_links",
    "ElementPowerModel",
    "Harvester",
    "EnergyBudget",
    "indoor_light_harvester",
    "rf_harvester",
]
