"""Energy budgets for PRESS elements (§4.1: "Power issues for the active
elements could be addressed with energy harvesting devices").

Models the power side of the deployment question §2 raises (how to "deploy,
power, and maintain the PRESS array"): per-state element power draw,
harvesting income (indoor light / RF), and a battery that integrates the
two — answering whether a given switching duty cycle is sustainable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ElementPowerModel", "Harvester", "EnergyBudget", "indoor_light_harvester", "rf_harvester"]


@dataclass(frozen=True)
class ElementPowerModel:
    """Power draw of one PRESS element.

    Defaults reflect the hardware classes the paper cites: a PE42441-class
    SP4T switch draws ~tens of microwatts holding state, a micro-controller
    a few milliwatts while awake, and an active element's amplifier tens to
    hundreds of milliwatts when transmitting.

    Attributes
    ----------
    idle_w:
        Draw while holding a passive state (switch + sleeping controller).
    switching_w:
        Extra draw during a state change.
    switching_time_s:
        Duration of a state change (controller wake + switch settle).
    active_w:
        Extra draw while an active (amplifying) state is engaged; 0 for
        purely passive elements.
    """

    idle_w: float = 50e-6
    switching_w: float = 5e-3
    switching_time_s: float = 100e-6
    active_w: float = 0.0

    def __post_init__(self) -> None:
        for name in ("idle_w", "switching_w", "switching_time_s", "active_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def average_power_w(
        self,
        switches_per_second: float,
        active_duty_cycle: float = 0.0,
    ) -> float:
        """Mean power at a given switching rate and active-state duty cycle."""
        if switches_per_second < 0:
            raise ValueError(
                f"switches_per_second must be non-negative, got {switches_per_second}"
            )
        if not 0.0 <= active_duty_cycle <= 1.0:
            raise ValueError(
                f"active_duty_cycle must be in [0, 1], got {active_duty_cycle}"
            )
        switching = self.switching_w * self.switching_time_s * switches_per_second
        return self.idle_w + switching + self.active_w * active_duty_cycle


@dataclass(frozen=True)
class Harvester:
    """An energy-harvesting source attached to an element."""

    name: str
    power_w: float

    def __post_init__(self) -> None:
        if self.power_w < 0:
            raise ValueError(f"power_w must be non-negative, got {self.power_w}")


def indoor_light_harvester(area_cm2: float = 10.0) -> Harvester:
    """A small indoor photovoltaic cell (~10 uW/cm^2 under office light)."""
    if area_cm2 <= 0:
        raise ValueError(f"area_cm2 must be positive, got {area_cm2}")
    return Harvester(name="indoor-light", power_w=10e-6 * area_cm2)


def rf_harvester(incident_dbm: float = -10.0, efficiency: float = 0.3) -> Harvester:
    """An RF harvester on ambient 2.4 GHz energy."""
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    return Harvester(
        name="rf", power_w=efficiency * 1e-3 * 10.0 ** (incident_dbm / 10.0)
    )


@dataclass(frozen=True)
class EnergyBudget:
    """A harvester against an element's draw.

    Attributes
    ----------
    element:
        Power model of the element.
    harvester:
        Its energy source.
    battery_j:
        Storage capacity in joules.
    """

    element: ElementPowerModel
    harvester: Harvester
    battery_j: float = 10.0

    def __post_init__(self) -> None:
        if self.battery_j <= 0:
            raise ValueError(f"battery_j must be positive, got {self.battery_j}")

    def net_power_w(
        self, switches_per_second: float, active_duty_cycle: float = 0.0
    ) -> float:
        """Harvest income minus draw (positive = sustainable)."""
        return self.harvester.power_w - self.element.average_power_w(
            switches_per_second, active_duty_cycle
        )

    def is_sustainable(
        self, switches_per_second: float, active_duty_cycle: float = 0.0
    ) -> bool:
        return self.net_power_w(switches_per_second, active_duty_cycle) >= 0.0

    def lifetime_s(
        self, switches_per_second: float, active_duty_cycle: float = 0.0
    ) -> float:
        """Runtime on a full battery; infinite when sustainable."""
        net = self.net_power_w(switches_per_second, active_duty_cycle)
        if net >= 0:
            return float("inf")
        return self.battery_j / (-net)

    def max_sustainable_switch_rate(self, active_duty_cycle: float = 0.0) -> float:
        """Largest switching rate the harvester can sustain indefinitely."""
        fixed = self.element.idle_w + self.element.active_w * active_duty_cycle
        headroom = self.harvester.power_w - fixed
        per_switch = self.element.switching_w * self.element.switching_time_s
        if headroom <= 0:
            return 0.0
        if per_switch == 0:
            return float("inf")
        return headroom / per_switch
