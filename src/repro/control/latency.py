"""Control-plane latency budget analysis (§2 timing, §4.2 mechanism).

Puts numbers behind the paper's timing argument: for each candidate control
medium, how long does one actuation take, how many configuration trials fit
inside the channel coherence time at a given mobility, and can the system
switch on packet-level timescales (1-2 ms)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.configuration import ArrayConfiguration
from ..core.scheduler import TimingModel, measurement_budget
from ..em.channel import coherence_time_s
from .links import ControlLink
from .protocol import ControlPlane

__all__ = ["LatencyReport", "analyze_link", "compare_links"]


@dataclass(frozen=True)
class LatencyReport:
    """Latency budget of one control medium for one array size.

    Attributes
    ----------
    link_name:
        Control medium.
    actuation_s:
        Time to reconfigure the whole array once (lossless case).
    budget_stationary:
        Configuration trials per coherence window at 0.5 mph (~89 ms).
    budget_running:
        Trials per window at 6 mph (~7 ms).
    packet_timescale_capable:
        Whether actuation fits inside a 1.5 ms packet slot's guard time.
    interferes_with_data_plane:
        Propagated from the link model.
    """

    link_name: str
    actuation_s: float
    budget_stationary: int
    budget_running: int
    packet_timescale_capable: bool
    interferes_with_data_plane: bool


def analyze_link(
    link: ControlLink,
    num_elements: int,
    measurement_time_s: float = 500e-6,
    slot_guard_s: float = 150e-6,
) -> LatencyReport:
    """Latency budget for one medium and array size.

    Actuation time is measured by running the real protocol driver over a
    lossless instance of the link (so header sizes and ack round trips are
    accounted for, not hand-waved).
    """
    plane = ControlPlane(link=link, num_elements=num_elements)
    configuration = ArrayConfiguration(tuple([1] * num_elements))
    result = plane.actuate(configuration, rng=None)
    timing = TimingModel(
        actuation_latency_s=result.elapsed_s,
        measurement_time_s=measurement_time_s,
    )
    stationary = measurement_budget(coherence_time_s(0.5), timing)
    running = measurement_budget(coherence_time_s(6.0), timing)
    return LatencyReport(
        link_name=link.name,
        actuation_s=result.elapsed_s,
        budget_stationary=stationary,
        budget_running=running,
        packet_timescale_capable=result.elapsed_s <= slot_guard_s,
        interferes_with_data_plane=link.interferes_with_data_plane,
    )


def compare_links(
    links: Sequence[ControlLink],
    num_elements: int,
) -> list[LatencyReport]:
    """Latency budgets for several candidate media, for a report table."""
    return [analyze_link(link, num_elements) for link in links]
