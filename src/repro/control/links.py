"""Control-plane link models (§4.2 "Mechanism").

"Likely wireless control plane candidates are low-frequency, low-rate bands
(perhaps ISM or whitespace frequencies) that penetrate walls well and
travel long distances.  Other candidates include ultrasound in order to
easily scope the control to a single indoor room, as well as wires between
some subsets of the array elements."

Each candidate is modelled with the parameters that matter to PRESS:
data rate (message transfer time), propagation+stack latency, loss
probability, and whether it interferes with the wireless data plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "ControlLink",
    "sub_ghz_ism_link",
    "ultrasound_link",
    "wired_bus_link",
    "wifi_inband_link",
]


@dataclass(frozen=True)
class ControlLink:
    """A control channel between the controller and array elements.

    Attributes
    ----------
    name:
        Medium label.
    data_rate_bps:
        Net payload rate.
    base_latency_s:
        Fixed per-message latency (propagation + MAC + stack).
    loss_probability:
        Independent per-message loss probability.
    interferes_with_data_plane:
        Whether sending control traffic occupies the 2.4 GHz data band —
        the design issue §2 raises ("a control plane design that does not
        interfere with communication in the wireless data plane").
    """

    name: str
    data_rate_bps: float
    base_latency_s: float
    loss_probability: float = 0.0
    interferes_with_data_plane: bool = False

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0:
            raise ValueError(f"data_rate_bps must be positive, got {self.data_rate_bps}")
        if self.base_latency_s < 0:
            raise ValueError(f"base_latency_s must be non-negative, got {self.base_latency_s}")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )

    def transfer_time_s(self, size_bytes: int) -> float:
        """Latency to deliver one message of ``size_bytes`` (no loss)."""
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        return self.base_latency_s + 8.0 * size_bytes / self.data_rate_bps

    def delivery_attempts(
        self, rng: np.random.Generator, max_attempts: int = 10
    ) -> Optional[int]:
        """Sample how many transmissions a message needs (ARQ with retries).

        Returns the attempt number (1 = first transmission delivered) of the
        first successful delivery, or ``None`` if all ``max_attempts``
        transmissions are lost — the explicit give-up case, distinguishable
        from any real attempt count (the old ``max_attempts + 1`` sentinel
        was not).
        """
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        for attempt in range(1, max_attempts + 1):
            if rng.random() >= self.loss_probability:
                return attempt
        return None

    def expected_attempts(self, max_attempts: int = 10) -> float:
        """Mean transmissions per message under the truncated ARQ.

        :meth:`delivery_attempts` truncates at ``max_attempts``, so the mean
        number of transmissions actually sent is ``E[min(G, n)]`` for a
        geometric ``G`` — ``(1 - p^n) / (1 - p)`` — not the untruncated
        ``1 / (1 - p)``.
        """
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        p = self.loss_probability
        return (1.0 - p**max_attempts) / (1.0 - p)

    def expected_delivery_time_s(self, size_bytes: int, max_attempts: int = 10) -> float:
        """Mean on-air latency per message, including truncated retransmissions.

        Consistent with the ARQ model of :meth:`delivery_attempts`: a sender
        that gives up after ``max_attempts`` transmissions spends the
        truncated-geometric expectation ``(1 - p^n) / (1 - p)`` transfer
        times per message, not the untruncated ``1 / (1 - p)``.
        """
        return self.expected_attempts(max_attempts) * self.transfer_time_s(size_bytes)


def sub_ghz_ism_link(loss_probability: float = 0.01) -> ControlLink:
    """A 900 MHz ISM low-rate link (e.g. an FSK radio at 50 kbps).

    Penetrates walls well, covers a building, does not touch 2.4 GHz.
    """
    return ControlLink(
        name="sub-GHz ISM",
        data_rate_bps=50e3,
        base_latency_s=2e-3,
        loss_probability=loss_probability,
    )


def ultrasound_link(range_m: float = 8.0, loss_probability: float = 0.02) -> ControlLink:
    """An in-room ultrasonic link (~40 kHz carrier, ~1 kbps).

    Naturally room-scoped (walls block it), but slow: dominated by acoustic
    propagation (~343 m/s) and the tiny bitrate.
    """
    if range_m <= 0:
        raise ValueError(f"range_m must be positive, got {range_m}")
    propagation = range_m / 343.0
    return ControlLink(
        name="ultrasound",
        data_rate_bps=1e3,
        base_latency_s=propagation + 5e-3,
        loss_probability=loss_probability,
    )


def wired_bus_link() -> ControlLink:
    """A shared wired bus (RS-485 at 10 Mbps) between element groups.

    Per-element acknowledgements serialise on the bus, so actuation latency
    grows linearly with the number of addressed elements — the scaling cost
    §4.2 weighs against wireless control media.
    """
    return ControlLink(
        name="wired bus",
        data_rate_bps=10e6,
        base_latency_s=10e-6,
        loss_probability=0.0,
    )


def wifi_inband_link(loss_probability: float = 0.05) -> ControlLink:
    """In-band 2.4 GHz control (fast, but steals airtime from the data plane)."""
    return ControlLink(
        name="Wi-Fi in-band",
        data_rate_bps=6e6,
        base_latency_s=500e-6,
        loss_probability=loss_probability,
        interferes_with_data_plane=True,
    )
