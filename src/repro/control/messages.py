"""Control-plane message formats.

The controller <-> element protocol needs only a handful of message types:
configuration commands, acknowledgements, element liveness beacons and CSI
reports from cooperating receivers.  Messages serialise to compact byte
strings so the link models can account for transfer time on very-low-rate
control channels (§4.2 suggests low-frequency ISM bands or ultrasound).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar, Sequence

__all__ = [
    "ControlMessage",
    "ConfigureCommand",
    "Ack",
    "Beacon",
    "CsiReport",
    "decode_message",
]


@dataclass(frozen=True)
class ControlMessage:
    """Base class for control-plane messages."""

    TYPE_ID: ClassVar[int] = 0

    def encode(self) -> bytes:
        raise NotImplementedError

    @property
    def size_bytes(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class ConfigureCommand(ControlMessage):
    """Set switch states on a group of elements.

    Attributes
    ----------
    sequence:
        Command sequence number (for ack matching / duplicate suppression).
    element_ids:
        Addressed elements.
    states:
        State index per addressed element.
    """

    sequence: int
    element_ids: tuple[int, ...]
    states: tuple[int, ...]

    TYPE_ID: ClassVar[int] = 1

    def __post_init__(self) -> None:
        if len(self.element_ids) != len(self.states):
            raise ValueError(
                f"{len(self.element_ids)} elements but {len(self.states)} states"
            )
        if len(self.element_ids) == 0:
            raise ValueError("command must address at least one element")
        if not 0 <= self.sequence < 2**16:
            raise ValueError(f"sequence must fit 16 bits, got {self.sequence}")
        for value in self.element_ids + self.states:
            if not 0 <= value < 256:
                raise ValueError(f"ids/states must fit one byte, got {value}")

    def encode(self) -> bytes:
        header = struct.pack("!BHB", self.TYPE_ID, self.sequence, len(self.element_ids))
        body = bytes(self.element_ids) + bytes(self.states)
        return header + body


@dataclass(frozen=True)
class Ack(ControlMessage):
    """Element acknowledgement of a configuration command."""

    sequence: int
    element_id: int

    TYPE_ID: ClassVar[int] = 2

    def encode(self) -> bytes:
        return struct.pack("!BHB", self.TYPE_ID, self.sequence, self.element_id)


@dataclass(frozen=True)
class Beacon(ControlMessage):
    """Periodic element liveness/health beacon.

    ``battery_centivolts`` supports the energy-harvesting deployments §4.1
    anticipates for active elements.
    """

    element_id: int
    battery_centivolts: int = 330

    TYPE_ID: ClassVar[int] = 3

    def encode(self) -> bytes:
        return struct.pack("!BBH", self.TYPE_ID, self.element_id, self.battery_centivolts)


@dataclass(frozen=True)
class CsiReport(ControlMessage):
    """Quantised per-subcarrier SNR feedback from a cooperating receiver.

    SNR values are quantised to half-dB steps in one signed byte each
    (plenty for PRESS objectives, and small enough for a low-rate control
    channel).
    """

    link_id: int
    snr_half_db: tuple[int, ...]

    TYPE_ID: ClassVar[int] = 4

    def __post_init__(self) -> None:
        if len(self.snr_half_db) == 0:
            raise ValueError("CSI report needs at least one subcarrier")
        for value in self.snr_half_db:
            if not -128 <= value < 128:
                raise ValueError(f"half-dB SNR {value} does not fit a signed byte")

    @staticmethod
    def from_snr_db(link_id: int, snr_db: Sequence[float]) -> "CsiReport":
        """Quantise float SNRs (dB) into a report."""
        quantised = tuple(
            int(max(-128, min(127, round(2.0 * value)))) for value in snr_db
        )
        return CsiReport(link_id=link_id, snr_half_db=quantised)

    def snr_db(self) -> list[float]:
        """De-quantise back to dB."""
        return [value / 2.0 for value in self.snr_half_db]

    def encode(self) -> bytes:
        header = struct.pack("!BBH", self.TYPE_ID, self.link_id, len(self.snr_half_db))
        body = struct.pack(f"!{len(self.snr_half_db)}b", *self.snr_half_db)
        return header + body


def decode_message(data: bytes) -> ControlMessage:
    """Parse a message from its wire encoding.

    Raises
    ------
    ValueError
        On truncated or unknown-type input.
    """
    if len(data) < 1:
        raise ValueError("empty message")
    type_id = data[0]
    if type_id == ConfigureCommand.TYPE_ID:
        if len(data) < 4:
            raise ValueError("truncated ConfigureCommand header")
        _, sequence, count = struct.unpack("!BHB", data[:4])
        expected = 4 + 2 * count
        if len(data) != expected:
            raise ValueError(f"ConfigureCommand length {len(data)} != {expected}")
        ids = tuple(data[4 : 4 + count])
        states = tuple(data[4 + count : 4 + 2 * count])
        return ConfigureCommand(sequence=sequence, element_ids=ids, states=states)
    if type_id == Ack.TYPE_ID:
        if len(data) != 4:
            raise ValueError(f"Ack must be 4 bytes, got {len(data)}")
        _, sequence, element_id = struct.unpack("!BHB", data)
        return Ack(sequence=sequence, element_id=element_id)
    if type_id == Beacon.TYPE_ID:
        if len(data) != 4:
            raise ValueError(f"Beacon must be 4 bytes, got {len(data)}")
        _, element_id, battery = struct.unpack("!BBH", data)
        return Beacon(element_id=element_id, battery_centivolts=battery)
    if type_id == CsiReport.TYPE_ID:
        if len(data) < 4:
            raise ValueError("truncated CsiReport header")
        _, link_id, count = struct.unpack("!BBH", data[:4])
        if len(data) != 4 + count:
            raise ValueError(f"CsiReport length {len(data)} != {4 + count}")
        values = struct.unpack(f"!{count}b", data[4:])
        return CsiReport(link_id=link_id, snr_half_db=tuple(values))
    raise ValueError(f"unknown message type id {type_id}")
