"""Controller <-> element actuation protocol.

A simple command/ack protocol over a :class:`~repro.control.links.ControlLink`:
the controller multicasts a :class:`~repro.control.messages.ConfigureCommand`,
each addressed element switches and acknowledges, lost messages are
retransmitted.  The simulation tracks wall-clock time so the scheduler can
check actuation against the coherence-time budget (§2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.configuration import ArrayConfiguration
from ..obs.metrics import counter_handle, histogram_handle
from .links import ControlLink
from .messages import Ack, ConfigureCommand

__all__ = ["ElementAgent", "ActuationResult", "ControlPlane"]

_ACTUATIONS = counter_handle("control.protocol.actuations")
_TRANSMISSIONS = counter_handle("control.protocol.transmissions")
_RETRIES = counter_handle("control.protocol.retries")
_LOST_COMMANDS = counter_handle("control.protocol.lost_commands")
_LOST_ACKS = counter_handle("control.protocol.lost_acks")
_FAILURES = counter_handle("control.protocol.failures")
#: Histogram of *simulated* actuation wall-clock (seconds of modelled link
#: time, not host time — deterministic for a given seed).
_ACTUATION_S = histogram_handle("control.protocol.actuation_s")

#: RF switch settling time [s].  The PE42441 SP4T switches in ~1 us; we
#: budget generously for the micro-controller's GPIO path.
SWITCH_SETTLE_S = 10e-6


@dataclass
class ElementAgent:
    """The element-side protocol endpoint: applies commands, tracks state."""

    element_id: int
    current_state: int = 0
    commands_applied: int = 0

    def apply(self, command: ConfigureCommand) -> Optional[Ack]:
        """Apply a command if it addresses this element; return the ack."""
        if self.element_id not in command.element_ids:
            return None
        index = command.element_ids.index(self.element_id)
        self.current_state = command.states[index]
        self.commands_applied += 1
        return Ack(sequence=command.sequence, element_id=self.element_id)


@dataclass(frozen=True)
class ActuationResult:
    """Outcome of pushing one configuration to the array.

    Attributes
    ----------
    success:
        All elements acknowledged.
    elapsed_s:
        Wall-clock time from first transmission to the end of switch
        settling.  Settling is charged whenever *any* element applied a
        command this round — including failed rounds, where elements that
        acked earlier retransmissions have already physically switched.
    transmissions:
        Command transmissions used (1 = no retries needed).
    applied:
        The per-element switch states the array is physically in after the
        attempt.  On success this equals the commanded configuration; on
        failure it is the mix of old and new states the array is actually
        producing (elements whose command was received switched, the rest
        kept their previous state), so callers can model the real channel
        instead of assuming nothing happened.
    unacked:
        Element ids the controller never received an ack from.  Note an
        unacked element may still have switched (its ack, not its command,
        may have been lost) — ``applied`` is the ground truth.
    lost_commands:
        Per-element command receptions lost across all transmissions.
    lost_acks:
        Acknowledgements lost on the return path.
    deadline_exceeded:
        The attempt stopped early because ``deadline_s`` ran out.
    """

    success: bool
    elapsed_s: float
    transmissions: int
    applied: tuple[int, ...] = ()
    unacked: tuple[int, ...] = ()
    lost_commands: int = 0
    lost_acks: int = 0
    deadline_exceeded: bool = False

    @property
    def retries(self) -> int:
        """Retransmissions beyond the first command (0 = clean round)."""
        return max(self.transmissions - 1, 0)

    @property
    def lost_messages(self) -> int:
        """Total messages lost on either direction of the control link."""
        return self.lost_commands + self.lost_acks


class ControlPlane:
    """The controller-side protocol driver for one PRESS array.

    Parameters
    ----------
    link:
        The control medium.
    num_elements:
        Elements in the array (agents are created internally).
    max_retries:
        Command retransmissions before declaring failure.
    """

    def __init__(
        self,
        link: ControlLink,
        num_elements: int,
        max_retries: int = 5,
    ) -> None:
        if num_elements <= 0:
            raise ValueError(f"num_elements must be positive, got {num_elements}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        self.link = link
        self.agents = [ElementAgent(element_id=i) for i in range(num_elements)]
        self.max_retries = max_retries
        self._sequence = 0

    @property
    def current_states(self) -> tuple[int, ...]:
        """Switch state currently applied at each element."""
        return tuple(agent.current_state for agent in self.agents)

    def lossless_actuation_s(self) -> float:
        """Analytic wall-clock time of one lossless full-array actuation.

        Command transfer, serialised per-element acks and switch settling —
        the same accounting :meth:`actuate` performs, without touching agent
        state.  Used to derive measurement budgets from the coherence
        window before a round starts.
        """
        num = len(self.agents)
        command = ConfigureCommand(
            sequence=0,
            element_ids=tuple(range(num)),
            states=tuple([0] * num),
        )
        ack = Ack(sequence=0, element_id=0)
        return (
            self.link.transfer_time_s(command.size_bytes)
            + num * self.link.transfer_time_s(ack.size_bytes)
            + SWITCH_SETTLE_S
        )

    def actuate(
        self,
        configuration: ArrayConfiguration,
        rng: Optional[np.random.Generator] = None,
        deadline_s: Optional[float] = None,
    ) -> ActuationResult:
        """Push a configuration to all elements, with ack-based retries.

        Without an ``rng`` the link is treated as lossless (deterministic
        timing analysis); with one, per-message losses are sampled.

        ``deadline_s`` bounds the retry budget in wall-clock terms: no new
        retransmission starts once ``elapsed`` reaches the deadline (the
        coherence-window-derived timeout a scheduler would impose).  At
        least one transmission is always attempted.
        """
        if configuration.num_elements != len(self.agents):
            raise ValueError(
                f"configuration has {configuration.num_elements} elements, "
                f"array has {len(self.agents)}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self._sequence = (self._sequence + 1) % 2**16
        pending = set(range(len(self.agents)))
        elapsed = 0.0
        transmissions = 0
        lost_commands = 0
        lost_acks = 0
        any_applied = False
        deadline_exceeded = False
        for _ in range(self.max_retries + 1):
            if transmissions > 0 and deadline_s is not None and elapsed >= deadline_s:
                deadline_exceeded = True
                break
            command = ConfigureCommand(
                sequence=self._sequence,
                element_ids=tuple(sorted(pending)),
                states=tuple(configuration.indices[i] for i in sorted(pending)),
            )
            transmissions += 1
            elapsed += self.link.transfer_time_s(command.size_bytes)
            acked: set[int] = set()
            for element_id in sorted(pending):
                lost = rng is not None and rng.random() < self.link.loss_probability
                if lost:
                    lost_commands += 1
                    continue
                ack = self.agents[element_id].apply(command)
                if ack is None:
                    continue
                any_applied = True
                ack_lost = (
                    rng is not None and rng.random() < self.link.loss_probability
                )
                elapsed += self.link.transfer_time_s(ack.size_bytes)
                if ack_lost:
                    lost_acks += 1
                else:
                    acked.add(element_id)
            pending -= acked
            if not pending:
                break
        # Elements that received a command switched regardless of whether
        # their ack survived, so settling time is spent whenever anything
        # switched — the failure path used to skip it, under-reporting the
        # elapsed time of exactly the rounds that leave a mixed state.
        if any_applied:
            elapsed += SWITCH_SETTLE_S
        _ACTUATIONS.inc()
        _TRANSMISSIONS.inc(transmissions)
        _RETRIES.inc(max(transmissions - 1, 0))
        _LOST_COMMANDS.inc(lost_commands)
        _LOST_ACKS.inc(lost_acks)
        if pending:
            _FAILURES.inc()
        _ACTUATION_S.observe(elapsed)
        return ActuationResult(
            success=not pending,
            elapsed_s=elapsed,
            transmissions=transmissions,
            applied=self.current_states,
            unacked=tuple(sorted(pending)),
            lost_commands=lost_commands,
            lost_acks=lost_acks,
            deadline_exceeded=deadline_exceeded,
        )
