"""Controller <-> element actuation protocol.

A simple command/ack protocol over a :class:`~repro.control.links.ControlLink`:
the controller multicasts a :class:`~repro.control.messages.ConfigureCommand`,
each addressed element switches and acknowledges, lost messages are
retransmitted.  The simulation tracks wall-clock time so the scheduler can
check actuation against the coherence-time budget (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.configuration import ArrayConfiguration
from .links import ControlLink
from .messages import Ack, ConfigureCommand

__all__ = ["ElementAgent", "ActuationResult", "ControlPlane"]

#: RF switch settling time [s].  The PE42441 SP4T switches in ~1 us; we
#: budget generously for the micro-controller's GPIO path.
SWITCH_SETTLE_S = 10e-6


@dataclass
class ElementAgent:
    """The element-side protocol endpoint: applies commands, tracks state."""

    element_id: int
    current_state: int = 0
    commands_applied: int = 0

    def apply(self, command: ConfigureCommand) -> Optional[Ack]:
        """Apply a command if it addresses this element; return the ack."""
        if self.element_id not in command.element_ids:
            return None
        index = command.element_ids.index(self.element_id)
        self.current_state = command.states[index]
        self.commands_applied += 1
        return Ack(sequence=command.sequence, element_id=self.element_id)


@dataclass(frozen=True)
class ActuationResult:
    """Outcome of pushing one configuration to the array.

    Attributes
    ----------
    success:
        All elements acknowledged.
    elapsed_s:
        Wall-clock time from first transmission to last ack.
    transmissions:
        Command transmissions used (1 = no retries needed).
    """

    success: bool
    elapsed_s: float
    transmissions: int


class ControlPlane:
    """The controller-side protocol driver for one PRESS array.

    Parameters
    ----------
    link:
        The control medium.
    num_elements:
        Elements in the array (agents are created internally).
    max_retries:
        Command retransmissions before declaring failure.
    """

    def __init__(
        self,
        link: ControlLink,
        num_elements: int,
        max_retries: int = 5,
    ) -> None:
        if num_elements <= 0:
            raise ValueError(f"num_elements must be positive, got {num_elements}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        self.link = link
        self.agents = [ElementAgent(element_id=i) for i in range(num_elements)]
        self.max_retries = max_retries
        self._sequence = 0

    @property
    def current_states(self) -> tuple[int, ...]:
        """Switch state currently applied at each element."""
        return tuple(agent.current_state for agent in self.agents)

    def actuate(
        self,
        configuration: ArrayConfiguration,
        rng: Optional[np.random.Generator] = None,
    ) -> ActuationResult:
        """Push a configuration to all elements, with ack-based retries.

        Without an ``rng`` the link is treated as lossless (deterministic
        timing analysis); with one, per-message losses are sampled.
        """
        if configuration.num_elements != len(self.agents):
            raise ValueError(
                f"configuration has {configuration.num_elements} elements, "
                f"array has {len(self.agents)}"
            )
        self._sequence = (self._sequence + 1) % 2**16
        pending = set(range(len(self.agents)))
        elapsed = 0.0
        transmissions = 0
        for _ in range(self.max_retries + 1):
            command = ConfigureCommand(
                sequence=self._sequence,
                element_ids=tuple(sorted(pending)),
                states=tuple(configuration.indices[i] for i in sorted(pending)),
            )
            transmissions += 1
            elapsed += self.link.transfer_time_s(command.size_bytes)
            acked: set[int] = set()
            for element_id in sorted(pending):
                lost = rng is not None and rng.random() < self.link.loss_probability
                if lost:
                    continue
                ack = self.agents[element_id].apply(command)
                if ack is None:
                    continue
                ack_lost = (
                    rng is not None and rng.random() < self.link.loss_probability
                )
                elapsed += self.link.transfer_time_s(ack.size_bytes)
                if not ack_lost:
                    acked.add(element_id)
            pending -= acked
            if not pending:
                elapsed += SWITCH_SETTLE_S
                return ActuationResult(
                    success=True, elapsed_s=elapsed, transmissions=transmissions
                )
        return ActuationResult(success=False, elapsed_s=elapsed, transmissions=transmissions)
