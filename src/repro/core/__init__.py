"""PRESS core: the paper's primary contribution.

Element hardware model (SP4T switch + waveguide stubs + absorptive load,
Figure 3), array/channel composition, configuration spaces, objective
functions for the three §1 applications, search strategies for §4.2's
space-navigation challenge, the §2 inverse problem, the coherence-time
scheduler, and the centralised controller loop.
"""

from .array import PressArray
from .basis import BasisEvaluator, ChannelBasis, exhaustive_argmax
from .configuration import ArrayConfiguration, ConfigurationSpace
from .controller import ControlDecision, PressController, RoundTelemetry
from .element import (
    ElementState,
    PressElement,
    absorptive_load_state,
    active_state,
    omni_element,
    open_stub_state,
    parabolic_element,
    phase_shifter_states,
    sp4t_states,
)
from .faults import (
    dead_element,
    detect_unresponsive_elements,
    stuck_element,
    with_faults,
)
from .hybrid import (
    ElementGroup,
    GroupedConfigurationSpace,
    hybrid_array,
    tiered_groups,
)
from .inverse import (
    InverseSolution,
    element_basis,
    matching_pursuit_paths,
    quantize_to_states,
    solve_element_coefficients,
    synthesize_configuration,
)
from .joint import (
    JointResult,
    LinkObjective,
    compare_strategies,
    optimize_hybrid,
    optimize_joint,
    optimize_per_link,
)
from .learning import BanditState, CrossEntropySearch, EpsilonGreedyBandit
from .objectives import (
    CapacityObjective,
    ConditionNumberObjective,
    EffectiveSnrObjective,
    FlatnessObjective,
    InterferenceRatioObjective,
    MeanSnrObjective,
    MinSnrObjective,
    SubbandContrastObjective,
    TargetCfrObjective,
    ThroughputObjective,
    WeightedObjective,
)
from .prediction import (
    LinearChannelModel,
    coefficient_vector,
    fit_channel_model,
    identification_configurations,
    predict_and_pick,
)
from .relaxation import ContinuousSolution, optimize_phases, softmin_power_db
from .scheduler import (
    LinkSlot,
    SwitchingSchedule,
    TimingModel,
    coherence_budget_table,
    measurement_budget,
    packet_timescale_schedule,
    pick_searcher,
)
from .search import (
    ExhaustiveSearch,
    GeneticSearch,
    GreedyCoordinateDescent,
    RandomSearch,
    SearchResult,
    Searcher,
    SimulatedAnnealing,
    SingleProbeSearch,
)

__all__ = [
    "PressArray",
    "ChannelBasis",
    "BasisEvaluator",
    "exhaustive_argmax",
    "ArrayConfiguration",
    "ConfigurationSpace",
    "PressController",
    "ControlDecision",
    "RoundTelemetry",
    "ElementState",
    "PressElement",
    "open_stub_state",
    "absorptive_load_state",
    "active_state",
    "sp4t_states",
    "phase_shifter_states",
    "parabolic_element",
    "omni_element",
    "element_basis",
    "solve_element_coefficients",
    "quantize_to_states",
    "matching_pursuit_paths",
    "InverseSolution",
    "synthesize_configuration",
    "MinSnrObjective",
    "MeanSnrObjective",
    "FlatnessObjective",
    "EffectiveSnrObjective",
    "ThroughputObjective",
    "SubbandContrastObjective",
    "InterferenceRatioObjective",
    "ConditionNumberObjective",
    "CapacityObjective",
    "TargetCfrObjective",
    "WeightedObjective",
    "TimingModel",
    "measurement_budget",
    "pick_searcher",
    "LinkSlot",
    "SwitchingSchedule",
    "packet_timescale_schedule",
    "coherence_budget_table",
    "SearchResult",
    "Searcher",
    "ExhaustiveSearch",
    "SingleProbeSearch",
    "RandomSearch",
    "GreedyCoordinateDescent",
    "SimulatedAnnealing",
    "GeneticSearch",
    "hybrid_array",
    "ElementGroup",
    "tiered_groups",
    "GroupedConfigurationSpace",
    "LinkObjective",
    "JointResult",
    "optimize_per_link",
    "optimize_joint",
    "optimize_hybrid",
    "compare_strategies",
    "CrossEntropySearch",
    "EpsilonGreedyBandit",
    "BanditState",
    "coefficient_vector",
    "identification_configurations",
    "LinearChannelModel",
    "fit_channel_model",
    "predict_and_pick",
    "ContinuousSolution",
    "optimize_phases",
    "softmin_power_db",
    "stuck_element",
    "dead_element",
    "with_faults",
    "detect_unresponsive_elements",
]
