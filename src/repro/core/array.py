"""The PRESS array: elements + scene -> programmable channel.

Composes the EM substrate with the element hardware model: for a given
array configuration, each non-terminated element contributes a two-hop
TX -> element -> RX path whose complex gain carries the element's switched
reflection coefficient and whose delay includes the waveguide stub.  The
resulting channel is ``environment paths + element paths`` — the
superposition §2's inverse problem reasons about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..constants import SPEED_OF_LIGHT
from ..em.antennas import Antenna, IsotropicAntenna
from ..em.channel import Channel
from ..em.geometry import Point
from ..em.paths import SignalPath
from ..em.raytracer import RayTracer
from .configuration import ArrayConfiguration, ConfigurationSpace
from .element import PressElement

__all__ = ["PressArray"]


@dataclass(frozen=True)
class PressArray:
    """An installed array of PRESS elements.

    Attributes
    ----------
    elements:
        The elements, in control-plane order.
    """

    elements: tuple[PressElement, ...]

    def __post_init__(self) -> None:
        if len(self.elements) == 0:
            raise ValueError("a PRESS array needs at least one element")
        names = [element.name for element in self.elements]
        if len(set(names)) != len(names):
            raise ValueError(f"element names must be unique, got {names}")
        # The configuration space is derived from the (immutable) elements;
        # build it once here instead of rebuilding and re-validating on
        # every element_paths/describe call.
        object.__setattr__(
            self,
            "_space",
            ConfigurationSpace(tuple(element.num_states for element in self.elements)),
        )

    @staticmethod
    def from_elements(elements: Iterable[PressElement]) -> "PressArray":
        return PressArray(tuple(elements))

    @property
    def num_elements(self) -> int:
        return len(self.elements)

    def configuration_space(self) -> ConfigurationSpace:
        """The M_1 x ... x M_N space of this array's switch settings (cached)."""
        return self._space  # type: ignore[attr-defined]

    def describe(self, configuration: ArrayConfiguration) -> str:
        """Label a configuration the way the paper's figures do: "(0.5:, 0, T)"."""
        self.configuration_space().validate(configuration)
        labels = [
            element.state(index).label
            for element, index in zip(self.elements, configuration.indices)
        ]
        return "(" + ", ".join(labels) + ")"

    def aimed_at(self, target: Point) -> "PressArray":
        """A copy with every directional element boresighted at ``target``."""
        return PressArray(
            tuple(element.pointed_at(target) for element in self.elements)
        )

    # ------------------------------------------------------------------
    # Channel synthesis
    # ------------------------------------------------------------------
    def element_paths(
        self,
        configuration: ArrayConfiguration,
        tx: Point,
        rx: Point,
        tracer: RayTracer,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> list[SignalPath]:
        """The TX -> element -> RX paths contributed by a configuration.

        Terminated (absorptive-load) elements contribute nothing; for the
        rest the reflection coefficient at the carrier becomes the path's
        complex scaling and the stub's group delay extends the path delay,
        so the stub phase disperses correctly across subcarriers.
        """
        self.configuration_space().validate(configuration)
        carrier = tracer.frequency_hz
        paths: list[SignalPath] = []
        for element, state_index in zip(self.elements, configuration.indices):
            state = element.state(state_index)
            if state.is_terminated:
                continue
            # Split Gamma(f): magnitude+fixed phase -> reflectivity; the
            # stub's carrier phase -> extra_phase; its dispersion -> delay.
            stub_carrier_phase = (
                -2.0 * math.pi * carrier * state.extra_path_m / SPEED_OF_LIGHT
            )
            reflectivity = state.magnitude * complex(
                math.cos(state.fixed_phase_rad), math.sin(state.fixed_phase_rad)
            )
            path = tracer.relay_path(
                tx,
                element.position,
                rx,
                tx_antenna=tx_antenna,
                rx_antenna=rx_antenna,
                relay_antenna_in=element.antenna,
                relay_antenna_out=element.antenna,
                reflectivity=reflectivity,
                extra_delay_s=state.extra_delay_s,
                extra_phase_rad=stub_carrier_phase,
                kind="press-element",
            )
            if path is not None:
                paths.append(path)
        return paths

    def channel(
        self,
        configuration: ArrayConfiguration,
        environment_paths: Sequence[SignalPath],
        tx: Point,
        rx: Point,
        tracer: RayTracer,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        num_subcarriers: int = 64,
        bandwidth_hz: float = 20e6,
    ) -> Channel:
        """The full programmable channel for one configuration."""
        extra = self.element_paths(
            configuration, tx, rx, tracer, tx_antenna, rx_antenna
        )
        return Channel(
            tuple(environment_paths) + tuple(extra),
            num_subcarriers=num_subcarriers,
            bandwidth_hz=bandwidth_hz,
        )
