"""Channel-basis sweep engine: trace once, evaluate every configuration.

The PRESS channel is *linear* in each element's reflection coefficient
(the same Γ-linearity RFocus and the programmable-wireless-environment
simulators exploit to scale to thousands of elements): with passive
elements and no element–element rescattering,

    H(f; c) = H_0(f) + sum_n E_n(f; c_n),

where ``H_0`` is the ambient (configuration-independent) response and
``E_n(f; m)`` is element ``n``'s two-hop TX → element → RX contribution in
state ``m`` — blockage, distances, antenna gains and the waveguide-stub's
delay dispersion folded in.  Geometry therefore needs to be traced exactly
once: the ambient paths via :meth:`RayTracer.trace` plus one two-hop relay
path per (element, state).  After that, *any* configuration's CFR is a
gather + sum over the precomputed state tensor, and the whole M^N sweep
evaluates as a single vectorized numpy operation.

The decomposition is exact for passive arrays because a passive element
re-radiates the incident field scaled by its own Γ only; it ignores the
second-order element → element → RX rescattering, which the per-path route
(:meth:`PressArray.element_paths`) also ignores — so the two routes agree
to machine precision (see ``tests/test_basis_equivalence.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..constants import BANDWIDTH_HZ, NUM_SUBCARRIERS, SPEED_OF_LIGHT
from ..em.antennas import Antenna, IsotropicAntenna
from ..em.channel import snr_db_from_cfr, subcarrier_frequencies
from ..em.geometry import Point
from ..em.paths import PathBatch, SignalPath, path_arrays, paths_to_cfr_batch
from ..em.raytracer import RayTracer, _points_to_arrays
from ..obs.metrics import global_registry
from .array import PressArray
from .configuration import ArrayConfiguration, ConfigurationSpace

__all__ = ["ChannelBasis", "BasisEvaluator", "exhaustive_argmax"]

ConfigurationsLike = Union[Sequence[ArrayConfiguration], np.ndarray]

_BASES_TRACED = global_registry().counter("core.basis.traces")
_BATCHES_TRACED = global_registry().counter("core.basis.batch_traces")
_BATCH_POINTS = global_registry().counter("core.basis.batch_points")
_EVALUATIONS = global_registry().counter("core.basis.evaluations")
_CONFIGS_EVALUATED = global_registry().counter("core.basis.configurations_evaluated")


@dataclass(frozen=True)
class ChannelBasis:
    """Precomputed channel basis for one TX/RX endpoint pair.

    Attributes
    ----------
    space:
        The array's configuration space (defines index order everywhere).
    frequencies_hz:
        Baseband subcarrier grid, shape ``(K,)``.
    ambient_gains, ambient_delays:
        Packed ambient multipath (configuration independent), shape
        ``(L,)`` each.  Coherence drift is applied by scaling this gain
        vector — no re-trace, no path objects.
    state_tensor:
        ``E[n, m, k]``: element ``n``'s CFR contribution in state ``m`` on
        subcarrier ``k``, shape ``(N, M_max, K)``; rows for terminated or
        blocked states are zero, and ragged state counts are zero-padded.
    num_subcarriers, bandwidth_hz:
        The OFDM grid the basis was evaluated on.
    """

    space: ConfigurationSpace
    frequencies_hz: np.ndarray
    ambient_gains: np.ndarray
    ambient_delays: np.ndarray
    state_tensor: np.ndarray
    num_subcarriers: int = NUM_SUBCARRIERS
    bandwidth_hz: float = BANDWIDTH_HZ

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def trace(
        cls,
        array: PressArray,
        tx: Point,
        rx: Point,
        tracer: RayTracer,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        num_subcarriers: int = NUM_SUBCARRIERS,
        bandwidth_hz: float = BANDWIDTH_HZ,
        environment_paths: Optional[Sequence[SignalPath]] = None,
    ) -> "ChannelBasis":
        """Trace the geometry once and build the basis.

        ``environment_paths`` lets a caller reuse already-traced ambient
        paths (e.g. the testbed's environment cache); when ``None`` the
        ambient multipath is traced here.
        """
        _BASES_TRACED.inc()
        freqs = subcarrier_frequencies(num_subcarriers, bandwidth_hz)
        if environment_paths is None:
            environment_paths = tracer.trace(tx, rx, tx_antenna, rx_antenna)
        gains, delays, _ = path_arrays(environment_paths)
        space = array.configuration_space()
        max_states = max(space.state_counts)
        tensor = np.zeros(
            (array.num_elements, max_states, num_subcarriers), dtype=complex
        )
        carrier = tracer.frequency_hz
        for n, element in enumerate(array.elements):
            for m, state in enumerate(element.states):
                if state.is_terminated:
                    continue
                # Split Gamma(f) exactly as PressArray.element_paths does:
                # magnitude + fixed phase -> reflectivity; the stub's
                # carrier phase -> extra phase; its dispersion -> delay.
                stub_carrier_phase = (
                    -2.0 * math.pi * carrier * state.extra_path_m / SPEED_OF_LIGHT
                )
                reflectivity = state.magnitude * complex(
                    math.cos(state.fixed_phase_rad), math.sin(state.fixed_phase_rad)
                )
                path = tracer.relay_path(
                    tx,
                    element.position,
                    rx,
                    tx_antenna=tx_antenna,
                    rx_antenna=rx_antenna,
                    relay_antenna_in=element.antenna,
                    relay_antenna_out=element.antenna,
                    reflectivity=reflectivity,
                    extra_delay_s=state.extra_delay_s,
                    extra_phase_rad=stub_carrier_phase,
                    kind="press-element",
                )
                if path is None:
                    continue
                tensor[n, m] = path.gain * np.exp(
                    -2.0j * np.pi * freqs * path.delay_s
                )
        return cls(
            space=space,
            frequencies_hz=freqs,
            ambient_gains=gains,
            ambient_delays=delays,
            state_tensor=tensor,
            num_subcarriers=num_subcarriers,
            bandwidth_hz=bandwidth_hz,
        )

    @classmethod
    def trace_batch(
        cls,
        array: PressArray,
        tx: Point,
        rx_points: Union[Sequence[Point], np.ndarray],
        tracer: RayTracer,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        num_subcarriers: int = NUM_SUBCARRIERS,
        bandwidth_hz: float = BANDWIDTH_HZ,
        ambient: Optional[PathBatch] = None,
    ) -> list["ChannelBasis"]:
        """One basis per receiver point, traced with the batched geometry.

        The batched twin of :meth:`trace`, for position sweeps (coverage
        maps, placement scans): ambient multipath comes from
        :meth:`RayTracer.trace_batch`, and each element's two-hop geometry
        — distances, blockage, antenna gains — is computed once for all P
        points via :meth:`RayTracer.relay_geometry_batch`, then folded with
        every state's reflectivity and stub phase.  Per-point results match
        :meth:`trace` to machine precision (same op order throughout), so
        ambient path counts — and therefore drift-draw counts — are
        identical to the scalar route.

        ``ambient`` lets a caller reuse an already-traced batch.
        """
        freqs = subcarrier_frequencies(num_subcarriers, bandwidth_hz)
        if ambient is None:
            ambient = tracer.trace_batch(tx, rx_points, tx_antenna, rx_antenna)
        rx_x, rx_y = _points_to_arrays(rx_points)
        num_points = ambient.num_points
        _BATCHES_TRACED.inc()
        _BATCH_POINTS.inc(num_points)
        space = array.configuration_space()
        max_states = max(space.state_counts)
        tensors = np.zeros(
            (num_points, array.num_elements, max_states, num_subcarriers),
            dtype=complex,
        )
        carrier = tracer.frequency_hz
        freq_factor = -2.0j * np.pi * freqs  # shared (K,) phasor exponent
        for n, element in enumerate(array.elements):
            amplitude, total, _, _, clear = tracer.relay_geometry_batch(
                tx,
                element.position,
                rx_x,
                rx_y,
                tx_antenna=tx_antenna,
                rx_antenna=rx_antenna,
                relay_antenna_in=element.antenna,
                relay_antenna_out=element.antenna,
            )
            carrier_phasor = np.exp(
                -2.0j * np.pi * total / tracer.wavelength_m
            )  # (P,)
            base_delay = total / SPEED_OF_LIGHT
            for m, state in enumerate(element.states):
                if state.is_terminated:
                    continue
                stub_carrier_phase = (
                    -2.0 * math.pi * carrier * state.extra_path_m / SPEED_OF_LIGHT
                )
                reflectivity = state.magnitude * complex(
                    math.cos(state.fixed_phase_rad), math.sin(state.fixed_phase_rad)
                )
                gain = amplitude * reflectivity * carrier_phasor
                gain = gain * complex(
                    math.cos(stub_carrier_phase), math.sin(stub_carrier_phase)
                )
                valid = clear & (np.abs(gain) != 0.0)
                delay = base_delay + state.extra_delay_s
                contribution = gain[:, None] * np.exp(
                    freq_factor[None, :] * delay[:, None]
                )
                contribution[~valid] = 0.0
                tensors[:, n, m, :] = contribution
        bases: list[ChannelBasis] = []
        for p in range(num_points):
            gains, delays = ambient.point_arrays(p)
            bases.append(
                cls(
                    space=space,
                    frequencies_hz=freqs,
                    ambient_gains=gains,
                    ambient_delays=delays,
                    state_tensor=tensors[p],
                    num_subcarriers=num_subcarriers,
                    bandwidth_hz=bandwidth_hz,
                )
            )
        return bases

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        return self.state_tensor.shape[0]

    @property
    def num_ambient_paths(self) -> int:
        return int(self.ambient_gains.shape[0])

    @cached_property
    def _ambient_cfr0(self) -> np.ndarray:
        """The undrifted ambient CFR ``H_0[k]``."""
        return paths_to_cfr_batch(
            self.ambient_gains, self.ambient_delays, self.frequencies_hz
        )

    @cached_property
    def all_configuration_indices(self) -> np.ndarray:
        """Index matrix of the whole space, shape ``(M^N, N)``.

        Row order matches :meth:`ConfigurationSpace.all_configurations`.
        """
        indices = np.array(
            [cfg.indices for cfg in self.space.all_configurations()], dtype=np.intp
        )
        indices.setflags(write=False)
        return indices

    @cached_property
    def all_element_sums(self) -> np.ndarray:
        """``sum_n E[n, c_n]`` for every configuration, shape ``(M^N, K)``.

        One gather + sum over the state tensor — this is the whole
        configuration sweep, minus the (shared) ambient term.
        """
        return self.element_sums(self.all_configuration_indices)

    def element_sums(self, indices: np.ndarray) -> np.ndarray:
        """Per-configuration element contributions for an index matrix.

        Parameters
        ----------
        indices:
            Integer array of shape ``(C, N)`` of state indices.

        Returns
        -------
        numpy.ndarray
            Complex array of shape ``(C, K)``.
        """
        indices = np.asarray(indices)
        total = np.zeros((indices.shape[0], self.state_tensor.shape[2]), dtype=complex)
        for n in range(self.num_elements):
            total += self.state_tensor[n, indices[:, n], :]
        return total

    def configuration_indices(self, configurations: ConfigurationsLike) -> np.ndarray:
        """Normalise a configuration batch to an ``(C, N)`` index matrix."""
        if isinstance(configurations, np.ndarray):
            return configurations.astype(np.intp, copy=False)
        return np.array([cfg.indices for cfg in configurations], dtype=np.intp)

    def ambient_cfr(self, gains: Optional[np.ndarray] = None) -> np.ndarray:
        """Ambient CFR, optionally for a drifted ambient gain vector.

        ``gains`` may carry leading batch dimensions (e.g. one realisation
        per measurement); the delay vector is shared.
        """
        if gains is None:
            return self._ambient_cfr0
        return paths_to_cfr_batch(gains, self.ambient_delays, self.frequencies_hz)

    def element_sum(self, configuration: ArrayConfiguration) -> np.ndarray:
        """``sum_n E[n, c_n]`` for a single configuration, shape ``(K,)``."""
        self.space.validate(configuration)
        total = np.zeros(self.state_tensor.shape[2], dtype=complex)
        for n, state_index in enumerate(configuration.indices):
            total += self.state_tensor[n, state_index]
        return total

    def cfr(
        self,
        configuration: ArrayConfiguration,
        ambient_gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One configuration's CFR: ``H_0 + sum_n E[n, c_n]``."""
        return self.ambient_cfr(ambient_gains) + self.element_sum(configuration)

    def evaluate(
        self,
        configurations: Optional[ConfigurationsLike] = None,
        ambient_gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """CFRs of a configuration batch as one vectorized operation.

        Parameters
        ----------
        configurations:
            Configurations (or an index matrix); ``None`` evaluates the
            entire M^N space in :meth:`ConfigurationSpace.all_configurations`
            order.
        ambient_gains:
            Optional drifted ambient gain vector (shape ``(L,)`` shared by
            the batch, or ``(C, L)`` per configuration).

        Returns
        -------
        numpy.ndarray
            Complex array of shape ``(C, K)``.
        """
        if configurations is None:
            sums = self.all_element_sums
        else:
            sums = self.element_sums(self.configuration_indices(configurations))
        _EVALUATIONS.inc()
        _CONFIGS_EVALUATED.inc(int(sums.shape[0]))
        return self.ambient_cfr(ambient_gains) + sums

    # ------------------------------------------------------------------
    # Objective plumbing
    # ------------------------------------------------------------------
    def evaluator(
        self,
        objective: Callable[[np.ndarray], float],
        tx_power_dbm: float = 15.0,
        noise_figure_db: float = 7.0,
        mask: Optional[np.ndarray] = None,
    ) -> "BasisEvaluator":
        """A basis-backed score function for the configuration searchers.

        Each call costs one O(K) numpy gather + sum — zero re-tracing —
        so any :class:`~repro.core.search.Searcher` runs against it at
        numpy speed.
        """
        return BasisEvaluator(
            basis=self,
            objective=objective,
            tx_power_dbm=tx_power_dbm,
            noise_figure_db=noise_figure_db,
            mask=None if mask is None else np.asarray(mask),
        )


@dataclass(frozen=True)
class BasisEvaluator:
    """``configuration -> objective(snr_db)`` backed by a :class:`ChannelBasis`.

    Matches the noiseless measurement model of
    :func:`repro.em.channel.observe_cfr` (``rng=None``), so scores agree
    with over-the-air exhaustive sweeps of an exact testbed.
    """

    basis: ChannelBasis
    objective: Callable[[np.ndarray], float]
    tx_power_dbm: float = 15.0
    noise_figure_db: float = 7.0
    mask: Optional[np.ndarray] = None

    def _snr_db(self, cfr: np.ndarray) -> np.ndarray:
        snr = snr_db_from_cfr(
            cfr,
            self.basis.num_subcarriers,
            self.basis.bandwidth_hz,
            tx_power_dbm=self.tx_power_dbm,
            noise_figure_db=self.noise_figure_db,
        )
        if self.mask is not None:
            snr = snr[..., self.mask]
        return snr

    def __call__(self, configuration: ArrayConfiguration) -> float:
        return float(self.objective(self._snr_db(self.basis.cfr(configuration))))

    def scores_all(self) -> np.ndarray:
        """Objective value of every configuration (vectorized CFR + SNR)."""
        snr = self._snr_db(self.basis.evaluate())
        return np.array([float(self.objective(row)) for row in snr])

    def argmax(self) -> tuple[ArrayConfiguration, float]:
        """The best configuration over the whole space, fully vectorized."""
        scores = self.scores_all()
        index = int(np.argmax(scores))
        winner = ArrayConfiguration(
            tuple(int(i) for i in self.basis.all_configuration_indices[index])
        )
        return winner, float(scores[index])


def exhaustive_argmax(
    basis: ChannelBasis,
    objective: Callable[[np.ndarray], float],
    tx_power_dbm: float = 15.0,
    noise_figure_db: float = 7.0,
    mask: Optional[np.ndarray] = None,
) -> tuple[ArrayConfiguration, float]:
    """Vectorized exhaustive search: argmax of the objective over all M^N.

    Equivalent to ``ExhaustiveSearch().search(...)`` against an exact
    testbed score, at a tiny fraction of the cost (no per-configuration
    tracing, one vectorized CFR evaluation).
    """
    return basis.evaluator(
        objective,
        tx_power_dbm=tx_power_dbm,
        noise_figure_db=noise_figure_db,
        mask=mask,
    ).argmax()
