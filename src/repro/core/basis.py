"""Channel-basis sweep engine: trace once, evaluate every configuration.

The PRESS channel is *linear* in each element's reflection coefficient
(the same Γ-linearity RFocus and the programmable-wireless-environment
simulators exploit to scale to thousands of elements): with passive
elements and no element–element rescattering,

    H(f; c) = H_0(f) + sum_n E_n(f; c_n),

where ``H_0`` is the ambient (configuration-independent) response and
``E_n(f; m)`` is element ``n``'s two-hop TX → element → RX contribution in
state ``m`` — blockage, distances, antenna gains and the waveguide-stub's
delay dispersion folded in.  Geometry therefore needs to be traced exactly
once: the ambient paths via :meth:`RayTracer.trace` plus one two-hop relay
path per (element, state).  After that, *any* configuration's CFR is a
gather + sum over the precomputed state tensor, and the whole M^N sweep
evaluates as a single vectorized numpy operation.

The decomposition is exact for passive arrays because a passive element
re-radiates the incident field scaled by its own Γ only; it ignores the
second-order element → element → RX rescattering, which the per-path route
(:meth:`PressArray.element_paths`) also ignores — so the two routes agree
to machine precision (see ``tests/test_basis_equivalence.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..constants import (
    BANDWIDTH_HZ,
    NUM_SUBCARRIERS,
    SPEED_OF_LIGHT,
    dbm_to_watts,
    thermal_noise_power_w,
)
from ..em.antennas import Antenna, IsotropicAntenna
from ..em.channel import snr_db_from_cfr, subcarrier_frequencies
from ..em.geometry import Point
from ..em.paths import PathBatch, SignalPath, path_arrays, paths_to_cfr_batch
from ..em.raytracer import RayTracer, _points_to_arrays
from ..obs.metrics import counter_handle
from .array import PressArray
from .configuration import ArrayConfiguration, ConfigurationSpace

__all__ = [
    "ChannelBasis",
    "BasisEvaluator",
    "DeltaEvaluator",
    "MultiLinkDeltaEvaluator",
    "SearchSpaceTooLarge",
    "StateTensorBudgetExceeded",
    "MAX_ENUMERABLE_CONFIGS",
    "DEFAULT_STATE_TENSOR_BUDGET_BYTES",
    "state_tensor_nbytes",
    "exhaustive_argmax",
]

ConfigurationsLike = Union[Sequence[ArrayConfiguration], np.ndarray]

_BASES_TRACED = counter_handle("core.basis.traces")
_BATCHES_TRACED = counter_handle("core.basis.batch_traces")
_BATCH_POINTS = counter_handle("core.basis.batch_points")
_EVALUATIONS = counter_handle("core.basis.evaluations")
_CONFIGS_EVALUATED = counter_handle("core.basis.configurations_evaluated")
_DELTA_EVALS = counter_handle("search.delta_evals")
_MULTILINK_PROBES = counter_handle("search.multilink_probes")

#: Largest configuration space the vectorized exhaustive path will
#: materialize as an (M^N, N) index table.  4^10 = 2^20 rows of N intp
#: columns is ~80 MB of indices plus an (M^N, K) complex sum matrix —
#: already generous.  Above this, enumeration raises
#: :class:`SearchSpaceTooLarge` instead of OOM-ing.
MAX_ENUMERABLE_CONFIGS = 1 << 20

#: Largest space :meth:`ChannelBasis.warm` will eagerly enumerate.  Warm
#: is about publishing a fully-materialized read-only object, so it only
#: pre-builds sum tables that are cheap to keep resident (2^14 rows x 64
#: subcarriers of complex128 is ~16 MB); bigger spaces stay lazy.
WARM_ENUMERATION_LIMIT = 1 << 14

#: Default cap on the E[n, m, k] state-tensor allocation (512 MiB holds
#: N=65536 elements x 8 states x 64 subcarriers of complex128).
DEFAULT_STATE_TENSOR_BUDGET_BYTES = 512 * 1024 * 1024


class SearchSpaceTooLarge(RuntimeError):
    """Raised instead of materializing an M^N table that cannot fit.

    Exhaustive enumeration is only meaningful for prototype-scale arrays
    (the paper's 4^3 = 64).  Large arrays must use the scalable searchers,
    which score configurations by O(K) per-element delta updates.
    """


class StateTensorBudgetExceeded(MemoryError):
    """Raised when a basis state tensor would exceed its memory budget."""


def state_tensor_nbytes(
    num_elements: int, max_states: int, num_subcarriers: int
) -> int:
    """Bytes needed by a complex128 ``E[n, m, k]`` state tensor."""
    return int(num_elements) * int(max_states) * int(num_subcarriers) * 16


def _too_large_message(space: ConfigurationSpace) -> str:
    size = space.size
    digits = len(str(size))
    shown = str(size) if digits <= 12 else f"~10^{digits - 1}"
    low, high = min(space.state_counts), max(space.state_counts)
    states = str(low) if low == high else f"{low}-{high}"
    return (
        f"configuration space has {space.num_elements} elements with "
        f"{states} states each = {shown} configurations "
        f"(> MAX_ENUMERABLE_CONFIGS = {MAX_ENUMERABLE_CONFIGS}); "
        "enumerating it would materialize the full M^N table. Use the "
        "scalable searchers instead: GreedyCoordinateDescent or "
        "RFocusMajoritySearch via Searcher.search_basis (repro.core.search), "
        "or repro.core.scheduler.pick_searcher, which auto-selects them for "
        "large spaces."
    )


@dataclass(frozen=True)
class ChannelBasis:
    """Precomputed channel basis for one TX/RX endpoint pair.

    Attributes
    ----------
    space:
        The array's configuration space (defines index order everywhere).
    frequencies_hz:
        Baseband subcarrier grid, shape ``(K,)``.
    ambient_gains, ambient_delays:
        Packed ambient multipath (configuration independent), shape
        ``(L,)`` each.  Coherence drift is applied by scaling this gain
        vector — no re-trace, no path objects.
    state_tensor:
        ``E[n, m, k]``: element ``n``'s CFR contribution in state ``m`` on
        subcarrier ``k``, shape ``(N, M_max, K)``; rows for terminated or
        blocked states are zero, and ragged state counts are zero-padded.
    num_subcarriers, bandwidth_hz:
        The OFDM grid the basis was evaluated on.
    """

    space: ConfigurationSpace
    frequencies_hz: np.ndarray
    ambient_gains: np.ndarray
    ambient_delays: np.ndarray
    state_tensor: np.ndarray
    num_subcarriers: int = NUM_SUBCARRIERS
    bandwidth_hz: float = BANDWIDTH_HZ

    def __post_init__(self) -> None:
        # Reentrancy guard: a basis is shared by concurrent readers (the
        # serving layer hands one session to interleaved request handlers;
        # the parallel runner ships one to worker processes).  Marking the
        # arrays read-only turns any accidental in-place write into an
        # immediate ValueError instead of a cross-request data race.
        # Flag flips on views never propagate to their base array, so the
        # per-point bases sliced out of a parent batch are safe to freeze.
        for array in (
            self.frequencies_hz,
            self.ambient_gains,
            self.ambient_delays,
            self.state_tensor,
        ):
            if isinstance(array, np.ndarray):
                array.setflags(write=False)

    def warm(self) -> "ChannelBasis":
        """Materialize the lazy caches so concurrent readers never write.

        ``cached_property`` installs its value with a plain ``__dict__``
        write on first access — benign under a single reader, but a
        publish step (the serving layer building a session) should finish
        all writes before the object is shared.  Enumeration caches are
        only touched while the space is small enough that the (M^N, K)
        sum table is cheap to hold (well under the
        :data:`MAX_ENUMERABLE_CONFIGS` guard, which bounds compute but
        not residency); larger spaces keep lazy/guarded behaviour.
        Returns ``self`` for chaining.
        """
        _ = self._ambient_cfr0
        if self.space.size <= WARM_ENUMERATION_LIMIT:
            _ = self.all_element_sums
        return self

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def trace(
        cls,
        array: PressArray,
        tx: Point,
        rx: Point,
        tracer: RayTracer,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        num_subcarriers: int = NUM_SUBCARRIERS,
        bandwidth_hz: float = BANDWIDTH_HZ,
        environment_paths: Optional[Sequence[SignalPath]] = None,
    ) -> "ChannelBasis":
        """Trace the geometry once and build the basis.

        ``environment_paths`` lets a caller reuse already-traced ambient
        paths (e.g. the testbed's environment cache); when ``None`` the
        ambient multipath is traced here.
        """
        _BASES_TRACED.inc()
        freqs = subcarrier_frequencies(num_subcarriers, bandwidth_hz)
        if environment_paths is None:
            environment_paths = tracer.trace(tx, rx, tx_antenna, rx_antenna)
        gains, delays, _ = path_arrays(environment_paths)
        space = array.configuration_space()
        max_states = max(space.state_counts)
        tensor = np.zeros(
            (array.num_elements, max_states, num_subcarriers), dtype=complex
        )
        carrier = tracer.frequency_hz
        for n, element in enumerate(array.elements):
            for m, state in enumerate(element.states):
                if state.is_terminated:
                    continue
                # Split Gamma(f) exactly as PressArray.element_paths does:
                # magnitude + fixed phase -> reflectivity; the stub's
                # carrier phase -> extra phase; its dispersion -> delay.
                stub_carrier_phase = (
                    -2.0 * math.pi * carrier * state.extra_path_m / SPEED_OF_LIGHT
                )
                reflectivity = state.magnitude * complex(
                    math.cos(state.fixed_phase_rad), math.sin(state.fixed_phase_rad)
                )
                path = tracer.relay_path(
                    tx,
                    element.position,
                    rx,
                    tx_antenna=tx_antenna,
                    rx_antenna=rx_antenna,
                    relay_antenna_in=element.antenna,
                    relay_antenna_out=element.antenna,
                    reflectivity=reflectivity,
                    extra_delay_s=state.extra_delay_s,
                    extra_phase_rad=stub_carrier_phase,
                    kind="press-element",
                )
                if path is None:
                    continue
                tensor[n, m] = path.gain * np.exp(
                    -2.0j * np.pi * freqs * path.delay_s
                )
        return cls(
            space=space,
            frequencies_hz=freqs,
            ambient_gains=gains,
            ambient_delays=delays,
            state_tensor=tensor,
            num_subcarriers=num_subcarriers,
            bandwidth_hz=bandwidth_hz,
        )

    @classmethod
    def trace_batch(
        cls,
        array: PressArray,
        tx: Point,
        rx_points: Union[Sequence[Point], np.ndarray],
        tracer: RayTracer,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        num_subcarriers: int = NUM_SUBCARRIERS,
        bandwidth_hz: float = BANDWIDTH_HZ,
        ambient: Optional[PathBatch] = None,
    ) -> list["ChannelBasis"]:
        """One basis per receiver point, traced with the batched geometry.

        The batched twin of :meth:`trace`, for position sweeps (coverage
        maps, placement scans): ambient multipath comes from
        :meth:`RayTracer.trace_batch`, and each element's two-hop geometry
        — distances, blockage, antenna gains — is computed once for all P
        points via :meth:`RayTracer.relay_geometry_batch`, then folded with
        every state's reflectivity and stub phase.  Per-point results match
        :meth:`trace` to machine precision (same op order throughout), so
        ambient path counts — and therefore drift-draw counts — are
        identical to the scalar route.

        ``ambient`` lets a caller reuse an already-traced batch.
        """
        freqs = subcarrier_frequencies(num_subcarriers, bandwidth_hz)
        if ambient is None:
            ambient = tracer.trace_batch(tx, rx_points, tx_antenna, rx_antenna)
        rx_x, rx_y = _points_to_arrays(rx_points)
        num_points = ambient.num_points
        _BATCHES_TRACED.inc()
        _BATCH_POINTS.inc(num_points)
        space = array.configuration_space()
        max_states = max(space.state_counts)
        tensors = np.zeros(
            (num_points, array.num_elements, max_states, num_subcarriers),
            dtype=complex,
        )
        carrier = tracer.frequency_hz
        freq_factor = -2.0j * np.pi * freqs  # shared (K,) phasor exponent
        for n, element in enumerate(array.elements):
            amplitude, total, _, _, clear = tracer.relay_geometry_batch(
                tx,
                element.position,
                rx_x,
                rx_y,
                tx_antenna=tx_antenna,
                rx_antenna=rx_antenna,
                relay_antenna_in=element.antenna,
                relay_antenna_out=element.antenna,
            )
            carrier_phasor = np.exp(
                -2.0j * np.pi * total / tracer.wavelength_m
            )  # (P,)
            base_delay = total / SPEED_OF_LIGHT
            for m, state in enumerate(element.states):
                if state.is_terminated:
                    continue
                stub_carrier_phase = (
                    -2.0 * math.pi * carrier * state.extra_path_m / SPEED_OF_LIGHT
                )
                reflectivity = state.magnitude * complex(
                    math.cos(state.fixed_phase_rad), math.sin(state.fixed_phase_rad)
                )
                gain = amplitude * reflectivity * carrier_phasor
                gain = gain * complex(
                    math.cos(stub_carrier_phase), math.sin(stub_carrier_phase)
                )
                valid = clear & (np.abs(gain) != 0.0)
                delay = base_delay + state.extra_delay_s
                contribution = gain[:, None] * np.exp(
                    freq_factor[None, :] * delay[:, None]
                )
                contribution[~valid] = 0.0
                tensors[:, n, m, :] = contribution
        bases: list[ChannelBasis] = []
        for p in range(num_points):
            gains, delays = ambient.point_arrays(p)
            bases.append(
                cls(
                    space=space,
                    frequencies_hz=freqs,
                    ambient_gains=gains,
                    ambient_delays=delays,
                    state_tensor=tensors[p],
                    num_subcarriers=num_subcarriers,
                    bandwidth_hz=bandwidth_hz,
                )
            )
        return bases

    @classmethod
    def trace_chunked(
        cls,
        array: PressArray,
        tx: Point,
        rx: Point,
        tracer: RayTracer,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        num_subcarriers: int = NUM_SUBCARRIERS,
        bandwidth_hz: float = BANDWIDTH_HZ,
        environment_paths: Optional[Sequence[SignalPath]] = None,
        element_chunk: int = 256,
        memory_budget_bytes: Optional[int] = DEFAULT_STATE_TENSOR_BUDGET_BYTES,
    ) -> "ChannelBasis":
        """Large-array basis construction: chunked, budgeted, state-vectorized.

        The wall-sized twin of :meth:`trace`.  Geometry (distances,
        blockage, antenna gains) is computed exactly once per *element* via
        :meth:`RayTracer.relay_geometry_batch` — not once per
        (element, state) as the scalar path does — and every state's
        reflectivity, stub phase and stub dispersion fold in as vectorized
        per-chunk numpy operations, with per-state-set constants cached
        across elements.  Agrees with :meth:`trace` to <=1e-9 (the stub
        phasor is factored out of the per-subcarrier exponential; the math
        is identical, the op order differs only in that split).

        The state tensor is assembled ``element_chunk`` elements at a time
        so the per-chunk temporaries stay bounded, and the full
        ``E[n, m, k]`` allocation is checked against
        ``memory_budget_bytes`` up front (``None`` disables the check),
        raising :class:`StateTensorBudgetExceeded` before any allocation
        instead of OOM-ing mid-build.  Nothing here ever touches the M^N
        configuration table.
        """
        if element_chunk <= 0:
            raise ValueError(f"element_chunk must be positive, got {element_chunk}")
        space = array.configuration_space()
        max_states = max(space.state_counts)
        needed = state_tensor_nbytes(array.num_elements, max_states, num_subcarriers)
        if memory_budget_bytes is not None and needed > memory_budget_bytes:
            raise StateTensorBudgetExceeded(
                f"state tensor E[{array.num_elements}, {max_states}, "
                f"{num_subcarriers}] needs {needed} bytes "
                f"(> memory_budget_bytes = {memory_budget_bytes}); raise the "
                "budget explicitly or reduce the array/subcarrier count"
            )
        _BASES_TRACED.inc()
        freqs = subcarrier_frequencies(num_subcarriers, bandwidth_hz)
        if environment_paths is None:
            environment_paths = tracer.trace(tx, rx, tx_antenna, rx_antenna)
        gains, delays, _ = path_arrays(environment_paths)
        num_elements = array.num_elements
        tensor = np.zeros((num_elements, max_states, num_subcarriers), dtype=complex)
        carrier = tracer.frequency_hz
        freq_factor = -2.0j * np.pi * freqs  # shared (K,) phasor exponent
        rx_x = np.array([rx.x])
        rx_y = np.array([rx.y])

        # Per-state-set constants, shared across every element using the
        # same switch hardware (the common case is one state set for the
        # whole wall): Gamma at the carrier and the stub's dispersion
        # phasor across the band.
        folds: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

        def fold_for(states: tuple) -> tuple[np.ndarray, np.ndarray]:
            cached = folds.get(states)
            if cached is not None:
                return cached
            gamma = np.zeros(len(states), dtype=complex)
            extra_phasor = np.zeros((len(states), num_subcarriers), dtype=complex)
            for m, state in enumerate(states):
                if state.is_terminated:
                    continue
                stub_carrier_phase = (
                    -2.0 * math.pi * carrier * state.extra_path_m / SPEED_OF_LIGHT
                )
                gamma[m] = state.magnitude * complex(
                    math.cos(state.fixed_phase_rad), math.sin(state.fixed_phase_rad)
                ) * complex(math.cos(stub_carrier_phase), math.sin(stub_carrier_phase))
                extra_phasor[m] = np.exp(freq_factor * state.extra_delay_s)
            folds[states] = (gamma, extra_phasor)
            return gamma, extra_phasor

        for start in range(0, num_elements, element_chunk):
            stop = min(start + element_chunk, num_elements)
            chunk = stop - start
            amplitudes = np.zeros(chunk)
            totals = np.zeros(chunk)
            clears = np.zeros(chunk, dtype=bool)
            for offset, n in enumerate(range(start, stop)):
                element = array.elements[n]
                amplitude, total, _, _, clear = tracer.relay_geometry_batch(
                    tx,
                    element.position,
                    rx_x,
                    rx_y,
                    tx_antenna=tx_antenna,
                    rx_antenna=rx_antenna,
                    relay_antenna_in=element.antenna,
                    relay_antenna_out=element.antenna,
                )
                amplitudes[offset] = amplitude[0]
                totals[offset] = total[0]
                clears[offset] = clear[0]
            # One vectorized (chunk, K) exponential covers the chunk's
            # carrier phase + propagation delay across the band.
            base_phasors = np.exp(
                freq_factor[None, :] * (totals / SPEED_OF_LIGHT)[:, None]
            )
            carrier_phasors = np.exp(-2.0j * np.pi * totals / tracer.wavelength_m)
            for offset, n in enumerate(range(start, stop)):
                if not clears[offset] or amplitudes[offset] == 0.0:
                    continue
                element = array.elements[n]
                gamma, extra_phasor = fold_for(element.states)
                per_state_gain = amplitudes[offset] * carrier_phasors[offset] * gamma
                tensor[n, : len(element.states)] = (
                    per_state_gain[:, None] * base_phasors[offset][None, :] * extra_phasor
                )
        return cls(
            space=space,
            frequencies_hz=freqs,
            ambient_gains=gains,
            ambient_delays=delays,
            state_tensor=tensor,
            num_subcarriers=num_subcarriers,
            bandwidth_hz=bandwidth_hz,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        return self.state_tensor.shape[0]

    @property
    def num_ambient_paths(self) -> int:
        return int(self.ambient_gains.shape[0])

    @cached_property
    def _ambient_cfr0(self) -> np.ndarray:
        """The undrifted ambient CFR ``H_0[k]``."""
        return paths_to_cfr_batch(
            self.ambient_gains, self.ambient_delays, self.frequencies_hz
        )

    @cached_property
    def all_configuration_indices(self) -> np.ndarray:
        """Index matrix of the whole space, shape ``(M^N, N)``.

        Row order matches :meth:`ConfigurationSpace.all_configurations`.

        Raises
        ------
        SearchSpaceTooLarge
            When the space exceeds :data:`MAX_ENUMERABLE_CONFIGS`; every
            exhaustive entry point (:meth:`all_element_sums`,
            :meth:`evaluate` with ``configurations=None``,
            :meth:`BasisEvaluator.scores_all`/:meth:`BasisEvaluator.argmax`,
            :func:`exhaustive_argmax`) inherits the guard.
        """
        if self.space.size > MAX_ENUMERABLE_CONFIGS:
            raise SearchSpaceTooLarge(_too_large_message(self.space))
        indices = np.array(
            [cfg.indices for cfg in self.space.all_configurations()], dtype=np.intp
        )
        indices.setflags(write=False)
        return indices

    @cached_property
    def all_element_sums(self) -> np.ndarray:
        """``sum_n E[n, c_n]`` for every configuration, shape ``(M^N, K)``.

        One gather + sum over the state tensor — this is the whole
        configuration sweep, minus the (shared) ambient term.
        """
        return self.element_sums(self.all_configuration_indices)

    def element_sums(self, indices: np.ndarray) -> np.ndarray:
        """Per-configuration element contributions for an index matrix.

        Parameters
        ----------
        indices:
            Integer array of shape ``(C, N)`` of state indices.

        Returns
        -------
        numpy.ndarray
            Complex array of shape ``(C, K)``.
        """
        indices = np.asarray(indices)
        total = np.zeros((indices.shape[0], self.state_tensor.shape[2]), dtype=complex)
        for n in range(self.num_elements):
            total += self.state_tensor[n, indices[:, n], :]
        return total

    def configuration_indices(self, configurations: ConfigurationsLike) -> np.ndarray:
        """Normalise a configuration batch to an ``(C, N)`` index matrix."""
        if isinstance(configurations, np.ndarray):
            return configurations.astype(np.intp, copy=False)
        return np.array([cfg.indices for cfg in configurations], dtype=np.intp)

    def ambient_cfr(self, gains: Optional[np.ndarray] = None) -> np.ndarray:
        """Ambient CFR, optionally for a drifted ambient gain vector.

        ``gains`` may carry leading batch dimensions (e.g. one realisation
        per measurement); the delay vector is shared.
        """
        if gains is None:
            return self._ambient_cfr0
        return paths_to_cfr_batch(gains, self.ambient_delays, self.frequencies_hz)

    def element_sum(self, configuration: ArrayConfiguration) -> np.ndarray:
        """``sum_n E[n, c_n]`` for a single configuration, shape ``(K,)``."""
        self.space.validate(configuration)
        total = np.zeros(self.state_tensor.shape[2], dtype=complex)
        for n, state_index in enumerate(configuration.indices):
            total += self.state_tensor[n, state_index]
        return total

    def cfr(
        self,
        configuration: ArrayConfiguration,
        ambient_gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One configuration's CFR: ``H_0 + sum_n E[n, c_n]``."""
        return self.ambient_cfr(ambient_gains) + self.element_sum(configuration)

    def evaluate(
        self,
        configurations: Optional[ConfigurationsLike] = None,
        ambient_gains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """CFRs of a configuration batch as one vectorized operation.

        Parameters
        ----------
        configurations:
            Configurations (or an index matrix); ``None`` evaluates the
            entire M^N space in :meth:`ConfigurationSpace.all_configurations`
            order.
        ambient_gains:
            Optional drifted ambient gain vector (shape ``(L,)`` shared by
            the batch, or ``(C, L)`` per configuration).

        Returns
        -------
        numpy.ndarray
            Complex array of shape ``(C, K)``.
        """
        if configurations is None:
            sums = self.all_element_sums
        else:
            sums = self.element_sums(self.configuration_indices(configurations))
        _EVALUATIONS.inc()
        _CONFIGS_EVALUATED.inc(int(sums.shape[0]))
        return self.ambient_cfr(ambient_gains) + sums

    # ------------------------------------------------------------------
    # Objective plumbing
    # ------------------------------------------------------------------
    def evaluator(
        self,
        objective: Callable[[np.ndarray], float],
        tx_power_dbm: float = 15.0,
        noise_figure_db: float = 7.0,
        mask: Optional[np.ndarray] = None,
    ) -> "BasisEvaluator":
        """A basis-backed score function for the configuration searchers.

        Each call costs one O(K) numpy gather + sum — zero re-tracing —
        so any :class:`~repro.core.search.Searcher` runs against it at
        numpy speed.
        """
        return BasisEvaluator(
            basis=self,
            objective=objective,
            tx_power_dbm=tx_power_dbm,
            noise_figure_db=noise_figure_db,
            mask=None if mask is None else np.asarray(mask),
        )


@dataclass(frozen=True)
class BasisEvaluator:
    """``configuration -> objective(snr_db)`` backed by a :class:`ChannelBasis`.

    Matches the noiseless measurement model of
    :func:`repro.em.channel.observe_cfr` (``rng=None``), so scores agree
    with over-the-air exhaustive sweeps of an exact testbed.
    """

    basis: ChannelBasis
    objective: Callable[[np.ndarray], float]
    tx_power_dbm: float = 15.0
    noise_figure_db: float = 7.0
    mask: Optional[np.ndarray] = None

    def _snr_db(self, cfr: np.ndarray) -> np.ndarray:
        snr = snr_db_from_cfr(
            cfr,
            self.basis.num_subcarriers,
            self.basis.bandwidth_hz,
            tx_power_dbm=self.tx_power_dbm,
            noise_figure_db=self.noise_figure_db,
        )
        if self.mask is not None:
            snr = snr[..., self.mask]
        return snr

    def __call__(self, configuration: ArrayConfiguration) -> float:
        return float(self.objective(self._snr_db(self.basis.cfr(configuration))))

    def scores_all(self) -> np.ndarray:
        """Objective value of every configuration (vectorized CFR + SNR)."""
        snr = self._snr_db(self.basis.evaluate())
        return np.array([float(self.objective(row)) for row in snr])

    def argmax(self) -> tuple[ArrayConfiguration, float]:
        """The best configuration over the whole space, fully vectorized.

        Raises :class:`SearchSpaceTooLarge` (via
        :attr:`ChannelBasis.all_configuration_indices`) instead of
        allocating the M^N score vector for spaces past
        :data:`MAX_ENUMERABLE_CONFIGS`.
        """
        scores = self.scores_all()
        index = int(np.argmax(scores))
        winner = ArrayConfiguration(
            tuple(int(i) for i in self.basis.all_configuration_indices[index])
        )
        return winner, float(scores[index])

    def delta(
        self,
        initial: Optional[ArrayConfiguration] = None,
        resync_interval: int = 4096,
    ) -> "DeltaEvaluator":
        """An incrementally-scored working copy of this evaluator."""
        return DeltaEvaluator(self, initial=initial, resync_interval=resync_interval)


class DeltaEvaluator:
    """Incremental configuration scoring via O(K) per-element delta updates.

    Because the basis CFR is linear in per-element state,

        H(f; c) = H_0(f) + sum_n E[n, c_n, f],

    changing one element's state only moves the running element sum by
    ``E[n, new] - E[n, old]`` — O(K) work regardless of N — instead of the
    O(N*K) gather the full path (:meth:`ChannelBasis.element_sum`) redoes
    per candidate.  This is the kernel that makes search cost scale with
    elements *touched* rather than configurations *enumerated*.

    The evaluator keeps two states: a *working* configuration mutated by
    :meth:`flip`/:meth:`flip_many`, and a *committed* snapshot restored
    bit-exactly by :meth:`revert` and advanced by :meth:`commit`.  Every
    ``resync_interval`` applied flips the running sum is recomputed from
    scratch at a deterministic point, bounding floating-point drift so
    delta-scored values stay within 1e-9 of the full path over arbitrarily
    long flip sequences (``tests/test_delta_evaluator.py``).

    Bookkeeping mirrors ``_CountingScore``: ``num_scores`` counts scored
    probes (the over-the-air measurement proxy; reverts are free) and
    ``trajectory`` records the best-so-far score after each probe.
    """

    def __init__(
        self,
        evaluator: BasisEvaluator,
        initial: Optional[ArrayConfiguration] = None,
        resync_interval: int = 4096,
    ) -> None:
        if resync_interval <= 0:
            raise ValueError(
                f"resync_interval must be positive, got {resync_interval}"
            )
        self._evaluator = evaluator
        basis = evaluator.basis
        self._space = basis.space
        # Scoring only ever sees masked subcarriers, and every SNR op is
        # elementwise — so the mask is applied once to the tensor and the
        # ambient CFR up front, not per probe.  Scores are elementwise
        # identical to masking after the fact.
        if evaluator.mask is None:
            self._tensor = basis.state_tensor
            self._ambient = basis.ambient_cfr()
        else:
            self._tensor = np.ascontiguousarray(
                basis.state_tensor[:, :, evaluator.mask]
            )
            self._ambient = basis.ambient_cfr()[evaluator.mask]
        self._resync_interval = int(resync_interval)
        self._flips_since_resync = 0
        if initial is None:
            indices = np.zeros(self._space.num_elements, dtype=np.intp)
        else:
            self._space.validate(initial)
            indices = np.array(initial.indices, dtype=np.intp)
        self._indices = indices
        # Per-score constants of BasisEvaluator._snr_db / snr_db_from_cfr,
        # hoisted out of the per-flip path.  The operation order below in
        # _snr_db_fast is exactly the library's (p * |H|^2 / n, floor,
        # 10*log10), so delta scores are bit-identical to the full path's
        # — only the constant recomputation and dispatch overhead go.
        self._subcarrier_power_w = float(
            dbm_to_watts(evaluator.tx_power_dbm) / basis.num_subcarriers
        )
        self._noise_w = thermal_noise_power_w(
            basis.bandwidth_hz / basis.num_subcarriers,
            evaluator.noise_figure_db,
        )
        self._sum = self._full_sum()
        self._score = self._score_of(self._sum)
        self._committed_indices = self._indices.copy()
        self._committed_sum = self._sum.copy()
        self._committed_score = self._score
        self.num_scores = 1
        self._best = self._score
        self.trajectory: list[float] = [self._score]

    # -- state views ----------------------------------------------------
    @property
    def space(self) -> ConfigurationSpace:
        """The configuration space being searched."""
        return self._space

    @property
    def score(self) -> float:
        """Objective value of the current working configuration."""
        return self._score

    @property
    def configuration(self) -> ArrayConfiguration:
        """The current working configuration."""
        return ArrayConfiguration(tuple(int(i) for i in self._indices))

    @property
    def committed_configuration(self) -> ArrayConfiguration:
        """The configuration :meth:`revert` falls back to."""
        return ArrayConfiguration(tuple(int(i) for i in self._committed_indices))

    # -- internals ------------------------------------------------------
    def _full_sum(self) -> np.ndarray:
        rows = np.arange(self._space.num_elements)
        return self._tensor[rows, self._indices, :].sum(axis=0)

    def _snr_db_fast(self, cfr: np.ndarray) -> np.ndarray:
        """BasisEvaluator._snr_db with the per-call constants precomputed.

        ``cfr`` is already mask-restricted (the working tensor is); the
        operation order matches :func:`~repro.em.channel.snr_db_from_cfr`
        exactly, so values are bit-identical to the full path's.
        """
        snr_linear = self._subcarrier_power_w * np.abs(cfr) ** 2 / self._noise_w
        return 10.0 * np.log10(np.maximum(snr_linear, 1e-30))

    def _score_of(self, element_sum: np.ndarray) -> float:
        snr = self._snr_db_fast(self._ambient + element_sum)
        return float(self._evaluator.objective(snr))

    def _record(self, value: float) -> None:
        self.num_scores += 1
        _DELTA_EVALS.inc()
        if value > self._best:
            self._best = value
        self.trajectory.append(self._best)

    def _count_flips(self, applied: int) -> None:
        self._flips_since_resync += applied
        if self._flips_since_resync >= self._resync_interval:
            self._sum = self._full_sum()
            self._flips_since_resync = 0

    # -- mutation -------------------------------------------------------
    def flip(self, element: int, state: int) -> float:
        """Set one element's state and return the re-scored objective."""
        if not 0 <= element < self._space.num_elements:
            raise IndexError(f"element {element} out of range")
        if not 0 <= state < self._space.state_counts[element]:
            raise ValueError(
                f"state {state} out of range for element {element} "
                f"({self._space.state_counts[element]} states)"
            )
        previous = int(self._indices[element])
        if state != previous:
            self._sum += self._tensor[element, state] - self._tensor[element, previous]
            self._indices[element] = state
            self._count_flips(1)
        self._score = self._score_of(self._sum)
        self._record(self._score)
        return self._score

    def flip_many(
        self,
        elements: Sequence[int],
        states: Sequence[int],
    ) -> float:
        """Flip several *distinct* elements at once (one scored probe).

        The RFocus perturbation primitive: one random multi-element
        perturbation costs one sounding, not N.  ``elements`` must not
        contain duplicates (the batched gather reads all previous states
        before any write).
        """
        element_idx = np.asarray(elements, dtype=np.intp)
        state_idx = np.asarray(states, dtype=np.intp)
        if element_idx.shape != state_idx.shape:
            raise ValueError("elements and states must have matching shapes")
        if element_idx.size:
            previous = self._indices[element_idx]
            changed = state_idx != previous
            if np.any(changed):
                moved = element_idx[changed]
                self._sum += (
                    self._tensor[moved, state_idx[changed]]
                    - self._tensor[moved, previous[changed]]
                ).sum(axis=0)
                self._indices[moved] = state_idx[changed]
                self._count_flips(int(changed.sum()))
        self._score = self._score_of(self._sum)
        self._record(self._score)
        return self._score

    def set_configuration(self, configuration: ArrayConfiguration) -> float:
        """Jump to an arbitrary configuration (full O(N*K) recompute)."""
        self._space.validate(configuration)
        self._indices = np.array(configuration.indices, dtype=np.intp)
        self._sum = self._full_sum()
        self._flips_since_resync = 0
        self._score = self._score_of(self._sum)
        self._record(self._score)
        return self._score

    def revert(self) -> float:
        """Bit-exact rollback to the committed configuration (free)."""
        self._indices = self._committed_indices.copy()
        self._sum = self._committed_sum.copy()
        self._score = self._committed_score
        return self._score

    def commit(self) -> float:
        """Make the working configuration the new revert point."""
        self._committed_indices = self._indices.copy()
        self._committed_sum = self._sum.copy()
        self._committed_score = self._score
        return self._score

    # -- batched per-element probing ------------------------------------
    def scores_for_element(self, element: int) -> np.ndarray:
        """Objective value for every state of one element, vectorized.

        The greedy-descent kernel: candidate sums for all M states of
        ``element`` are formed in one (M, K) broadcast and scored in one
        batched SNR evaluation.  Counts M-1 probes (the current state's
        score is already known).
        """
        if not 0 <= element < self._space.num_elements:
            raise IndexError(f"element {element} out of range")
        count = self._space.state_counts[element]
        current = int(self._indices[element])
        base = self._sum - self._tensor[element, current]
        candidates = base[None, :] + self._tensor[element, :count, :]
        snr = self._snr_db_fast(self._ambient[None, :] + candidates)
        scores = np.array(
            [float(self._evaluator.objective(row)) for row in snr]
        )
        for m in range(count):
            if m != current:
                self._record(float(scores[m]))
        return scores


class MultiLinkDeltaEvaluator:
    """Joint multi-link scoring via one cached element sum *per link*.

    The §2 joint strategy scores one shared configuration against L links
    at once.  Against callback-measured links that costs L soundings per
    candidate and — worse — O(N*K) per link to recompute each CFR.  But
    every link's basis shares the *same* per-element state (one array, one
    configuration), and each link's CFR is linear in that state, so this
    evaluator keeps one :class:`DeltaEvaluator` running sum per link over
    a shared working configuration: a single flip moves every link's sum
    by ``E_l[n, new] - E_l[n, old]`` — O(K·L) total, independent of N.
    That is what makes :func:`repro.core.joint.optimize_joint` runnable
    with :class:`~repro.core.search.GreedyCoordinateDescent` /
    :class:`~repro.core.search.RFocusMajoritySearch` on wall-sized arrays.

    The joint score is ``aggregate(per_link_scores, weights)`` — any
    :data:`~repro.core.objectives.LinkAggregate` (weighted mean, worst-link
    max-min, lexicographic); ``aggregate=None`` means the weighted mean,
    matching :meth:`repro.core.joint.JointResult.aggregate_score`.

    The searcher-facing protocol (``space`` / ``score`` / ``flip`` /
    ``flip_many`` / ``set_configuration`` / ``revert`` / ``commit`` /
    ``scores_for_element`` / ``num_scores`` / ``trajectory``) matches
    :class:`DeltaEvaluator`, so every ``run_delta`` searcher drives it
    unchanged.  ``num_scores`` counts *joint* probes — each one sounds all
    L links, which callers charging over-the-air measurements multiply by
    ``num_links`` (see ``optimize_joint_basis``).
    """

    def __init__(
        self,
        evaluators: Sequence[BasisEvaluator],
        weights: Optional[Sequence[float]] = None,
        aggregate: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
        initial: Optional[ArrayConfiguration] = None,
        resync_interval: int = 4096,
    ) -> None:
        if not evaluators:
            raise ValueError("need at least one link evaluator")
        spaces = [evaluator.basis.space for evaluator in evaluators]
        for space in spaces[1:]:
            if space.state_counts != spaces[0].state_counts:
                raise ValueError(
                    "all link bases must share one configuration space "
                    f"(got state counts {spaces[0].state_counts} vs "
                    f"{space.state_counts}); every link sees the same array"
                )
        if weights is None:
            weight_vector = np.ones(len(evaluators))
        else:
            weight_vector = np.asarray(list(weights), dtype=float)
            if weight_vector.shape != (len(evaluators),):
                raise ValueError(
                    f"{len(evaluators)} evaluators but weights shape "
                    f"{weight_vector.shape}"
                )
            if np.any(weight_vector <= 0.0) or not np.all(
                np.isfinite(weight_vector)
            ):
                raise ValueError(
                    f"link weights must be finite and positive, got "
                    f"{weight_vector.tolist()}"
                )
        self._weights = weight_vector
        self._weight_total = float(weight_vector.sum())
        self._aggregate = aggregate
        self._deltas = [
            evaluator.delta(initial=initial, resync_interval=resync_interval)
            for evaluator in evaluators
        ]
        self._space = spaces[0]
        self._score = self._aggregate_of(self._link_scores())
        self._committed_score = self._score
        self.num_scores = 1
        self._best = self._score
        self.trajectory: list[float] = [self._score]

    # -- state views ----------------------------------------------------
    @property
    def space(self) -> ConfigurationSpace:
        """The shared configuration space being searched."""
        return self._space

    @property
    def num_links(self) -> int:
        return len(self._deltas)

    @property
    def score(self) -> float:
        """Aggregate value of the current working configuration."""
        return self._score

    @property
    def configuration(self) -> ArrayConfiguration:
        """The current working configuration (shared by every link)."""
        return self._deltas[0].configuration

    @property
    def committed_configuration(self) -> ArrayConfiguration:
        """The configuration :meth:`revert` falls back to."""
        return self._deltas[0].committed_configuration

    def per_link_scores(self) -> np.ndarray:
        """Each link's objective at the current working configuration."""
        return self._link_scores()

    # -- internals ------------------------------------------------------
    def _link_scores(self) -> np.ndarray:
        return np.array([delta.score for delta in self._deltas])

    def _aggregate_of(self, scores: np.ndarray) -> float:
        if self._aggregate is None:
            return float(np.dot(self._weights, scores) / self._weight_total)
        return float(self._aggregate(scores, self._weights))

    def _record(self, value: float) -> None:
        self.num_scores += 1
        _MULTILINK_PROBES.inc()
        if value > self._best:
            self._best = value
        self.trajectory.append(self._best)

    # -- mutation -------------------------------------------------------
    def flip(self, element: int, state: int) -> float:
        """Set one element's state on every link and re-aggregate."""
        for delta in self._deltas:
            delta.flip(element, state)
        self._score = self._aggregate_of(self._link_scores())
        self._record(self._score)
        return self._score

    def flip_many(
        self,
        elements: Sequence[int],
        states: Sequence[int],
    ) -> float:
        """Flip several distinct elements at once (one joint probe)."""
        for delta in self._deltas:
            delta.flip_many(elements, states)
        self._score = self._aggregate_of(self._link_scores())
        self._record(self._score)
        return self._score

    def set_configuration(self, configuration: ArrayConfiguration) -> float:
        """Jump every link to an arbitrary configuration."""
        for delta in self._deltas:
            delta.set_configuration(configuration)
        self._score = self._aggregate_of(self._link_scores())
        self._record(self._score)
        return self._score

    def revert(self) -> float:
        """Bit-exact rollback of every link to the committed state (free)."""
        for delta in self._deltas:
            delta.revert()
        self._score = self._committed_score
        return self._score

    def commit(self) -> float:
        """Make the working configuration the new revert point."""
        for delta in self._deltas:
            delta.commit()
        self._committed_score = self._score
        return self._score

    # -- batched per-element probing ------------------------------------
    def scores_for_element(self, element: int) -> np.ndarray:
        """Aggregate value for every state of one element, vectorized.

        Each link scores its M candidate sums in one batched broadcast
        (:meth:`DeltaEvaluator.scores_for_element`); the (L, M) matrix is
        then aggregated per state.  Counts M-1 joint probes.
        """
        per_link = np.stack(
            [delta.scores_for_element(element) for delta in self._deltas]
        )
        scores = np.array(
            [self._aggregate_of(per_link[:, m]) for m in range(per_link.shape[1])]
        )
        current = int(self._deltas[0].configuration.indices[element])
        for m in range(scores.size):
            if m != current:
                self._record(float(scores[m]))
        return scores


def exhaustive_argmax(
    basis: ChannelBasis,
    objective: Callable[[np.ndarray], float],
    tx_power_dbm: float = 15.0,
    noise_figure_db: float = 7.0,
    mask: Optional[np.ndarray] = None,
) -> tuple[ArrayConfiguration, float]:
    """Vectorized exhaustive search: argmax of the objective over all M^N.

    Equivalent to ``ExhaustiveSearch().search(...)`` against an exact
    testbed score, at a tiny fraction of the cost (no per-configuration
    tracing, one vectorized CFR evaluation).
    """
    return basis.evaluator(
        objective,
        tx_power_dbm=tx_power_dbm,
        noise_figure_db=noise_figure_db,
        mask=mask,
    ).argmax()
