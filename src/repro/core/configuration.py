"""Array configurations and the configuration search space.

A configuration assigns one switch state to every PRESS element.  With N
elements of M states each there are M^N configurations — 64 for the
paper's three 4-state elements, whose exhaustive sweep is the engine of
every experiment in §3.  For larger arrays the space explodes (§4.2
"Navigating the search space"), which is why :mod:`repro.core.search`
implements heuristic searches over this same interface.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["ArrayConfiguration", "ConfigurationSpace"]


@dataclass(frozen=True)
class ArrayConfiguration:
    """State indices for each element of an array."""

    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(i < 0 for i in self.indices):
            raise ValueError(f"state indices must be non-negative, got {self.indices}")

    @property
    def num_elements(self) -> int:
        return len(self.indices)

    def with_element_state(self, element: int, state: int) -> "ArrayConfiguration":
        """A copy with one element's state replaced."""
        if not 0 <= element < len(self.indices):
            raise IndexError(f"element {element} out of range")
        updated = list(self.indices)
        updated[element] = state
        return ArrayConfiguration(tuple(updated))

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> int:
        return self.indices[index]


@dataclass(frozen=True)
class ConfigurationSpace:
    """The M_1 x M_2 x ... x M_N space of array configurations.

    Attributes
    ----------
    state_counts:
        Number of selectable states per element.
    """

    state_counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.state_counts) == 0:
            raise ValueError("configuration space needs at least one element")
        if any(count <= 0 for count in self.state_counts):
            raise ValueError(f"state counts must be positive, got {self.state_counts}")

    @property
    def num_elements(self) -> int:
        return len(self.state_counts)

    @property
    def size(self) -> int:
        """Total number of configurations (M^N for uniform M)."""
        product = 1
        for count in self.state_counts:
            product *= count
        return product

    def validate(self, configuration: ArrayConfiguration) -> None:
        """Raise if a configuration does not belong to this space."""
        if configuration.num_elements != self.num_elements:
            raise ValueError(
                f"configuration has {configuration.num_elements} elements, "
                f"space has {self.num_elements}"
            )
        for element, (index, count) in enumerate(
            zip(configuration.indices, self.state_counts)
        ):
            if index >= count:
                raise ValueError(
                    f"element {element} state {index} out of range (has {count} states)"
                )

    def all_configurations(self) -> Iterator[ArrayConfiguration]:
        """Enumerate every configuration (lexicographic order).

        For the paper's 4^3 = 64-configuration prototype this is exactly
        the sweep §3.2 iterates "through the 64 combinations 10 times".
        """
        for combo in itertools.product(*(range(count) for count in self.state_counts)):
            yield ArrayConfiguration(combo)

    def random_configuration(self, rng: np.random.Generator) -> ArrayConfiguration:
        """One uniformly random configuration."""
        return ArrayConfiguration(
            tuple(int(rng.integers(0, count)) for count in self.state_counts)
        )

    def neighbors(self, configuration: ArrayConfiguration) -> Iterator[ArrayConfiguration]:
        """All configurations differing in exactly one element's state."""
        self.validate(configuration)
        for element, count in enumerate(self.state_counts):
            for state in range(count):
                if state != configuration.indices[element]:
                    yield configuration.with_element_state(element, state)

    def index_of(self, configuration: ArrayConfiguration) -> int:
        """Lexicographic rank of a configuration (mixed-radix encoding)."""
        self.validate(configuration)
        rank = 0
        for index, count in zip(configuration.indices, self.state_counts):
            rank = rank * count + index
        return rank

    def configuration_at(self, rank: int) -> ArrayConfiguration:
        """Inverse of :meth:`index_of`."""
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range for space of size {self.size}")
        indices = []
        for count in reversed(self.state_counts):
            rank, digit = divmod(rank, count)
            indices.append(digit)
        return ArrayConfiguration(tuple(reversed(indices)))
