"""The PRESS controller: the measure -> search -> actuate loop of §2.

The controller owns the array and drives the three tasks §2 enumerates:

1. gather channel information between the endpoints (via a measurement
   callback — in this repo, the simulated SDR testbed; in a deployment,
   CSI feedback from receivers);
2. navigate the configuration search space under the coherence-time
   budget;
3. apply the chosen configuration to the array through the control plane.

With a :class:`~repro.control.protocol.ControlPlane` attached, step 3 is
no longer an analytic latency charge: every sounding and the final
adoption run the real command/ack protocol over the (possibly lossy)
control link, so retries, partial actuations and coherence-deadline
violations all feed back into what the controller measures and decides.
Each round emits a :class:`RoundTelemetry` record — the observability
layer a production control loop would export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..constants import ISM_BAND_2G4_HZ
from ..em.channel import coherence_time_s
from ..obs.metrics import counter_handle, histogram_handle
from .array import PressArray
from .configuration import ArrayConfiguration, ConfigurationSpace
from .faults import detect_unresponsive_elements
from .scheduler import TimingModel, measurement_budget, pick_searcher
from .search import SearchResult, Searcher

__all__ = ["ControlDecision", "RoundTelemetry", "PressController"]

_ROUNDS = counter_handle("core.controller.rounds")
_SOUNDINGS = counter_handle("core.controller.soundings")
_DEGRADED_ROUNDS = counter_handle("core.controller.degraded_rounds")
_STALE_ROUNDS = counter_handle("core.controller.stale_rounds")
#: Histogram of *simulated* round wall-clock (modelled seconds, not host
#: time — deterministic for a given seed).
_ROUND_ELAPSED_S = histogram_handle("core.controller.round_elapsed_s")


@dataclass(frozen=True)
class RoundTelemetry:
    """Structured per-round observability record.

    Attributes
    ----------
    round_index:
        1-based optimisation round counter.
    searcher:
        Class name of the search strategy the round ran.
    budget:
        Measurement budget the round was planned against (may be 0 in the
        degenerate high-mobility regime).
    num_evaluations:
        Over-the-air measurements the search actually spent.
    search_elapsed_s:
        Wall-clock spent sounding (actuation + measurement + decision per
        evaluation; real protocol elapsed when a control plane is attached).
    actuation_elapsed_s:
        Wall-clock spent on the final adoption (plus rollback, if any).
    retries:
        Command retransmissions across the round (sounding + adoption).
    lost_messages:
        Control-plane messages lost across the round (commands + acks).
    failed_actuations:
        Actuations that exhausted their retry/deadline budget this round.
    degraded:
        Empty when the round completed normally; otherwise one of
        ``"zero-budget"`` (coherence window too small to search — kept the
        current configuration), ``"rolled-back"`` (adoption failed, the
        last fully-acked configuration was restored), ``"partial-state"``
        (adoption and rollback both failed — the array holds a mix of old
        and new states, and the controller tracks that mix).
    stale:
        The round overran its coherence window (§2's core tension).
    unresponsive_elements:
        Elements the most recent maintenance sweep flagged as not moving
        the channel (stuck or dead); the searcher excludes them.
    best_score:
        Objective value of the round's winning configuration.
    """

    round_index: int
    searcher: str
    budget: int
    num_evaluations: int
    search_elapsed_s: float
    actuation_elapsed_s: float
    retries: int
    lost_messages: int
    failed_actuations: int
    degraded: str
    stale: bool
    unresponsive_elements: tuple[int, ...]
    best_score: float


@dataclass(frozen=True)
class ControlDecision:
    """Outcome of one optimisation round.

    Attributes
    ----------
    search:
        The search result (best configuration, score, evaluation count).
    elapsed_s:
        Wall-clock time the round took — analytic when no control plane is
        attached, real protocol time when one is.
    coherence_s:
        The coherence window the round was budgeted against.
    applied:
        The configuration the array physically holds after the round.
        Equals ``search.best`` when adoption succeeded; after a failed
        adoption it is the rolled-back or partially-actuated state.
    telemetry:
        The round's :class:`RoundTelemetry` record (``None`` only for
        decisions built by legacy callers).
    within_coherence:
        Whether the round finished inside the window — if not, the chosen
        configuration may already be stale (§2's core tension).
    """

    search: SearchResult
    elapsed_s: float
    coherence_s: float
    applied: Optional[ArrayConfiguration] = None
    telemetry: Optional[RoundTelemetry] = None

    @property
    def within_coherence(self) -> bool:
        return self.elapsed_s <= self.coherence_s

    @property
    def configuration(self) -> ArrayConfiguration:
        return self.search.best

    @property
    def applied_configuration(self) -> ArrayConfiguration:
        """What the array is actually producing (falls back to the intent)."""
        return self.applied if self.applied is not None else self.search.best


class _ReducedSpace:
    """Search-space view with unresponsive elements pinned to their state.

    Maintenance sweeps can flag elements whose switching no longer moves
    the channel (stuck or dead, :mod:`repro.core.faults`).  Searching
    their digits wastes the measurement budget, so the controller searches
    the sub-space of responsive elements and re-inserts the pinned digits
    before measuring/actuating — "shrink the searcher" degradation.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        pinned: dict[int, int],
    ) -> None:
        self.full_space = space
        self.pinned = dict(pinned)
        self.free = [i for i in range(space.num_elements) if i not in pinned]
        if self.free:
            self.space = ConfigurationSpace(
                tuple(space.state_counts[i] for i in self.free)
            )
        else:
            self.space = None  # every element pinned: nothing to search

    def expand(self, reduced: ArrayConfiguration) -> ArrayConfiguration:
        """Map a reduced-space configuration back to the full space."""
        indices = [0] * self.full_space.num_elements
        for position, element in enumerate(self.free):
            indices[element] = reduced.indices[position]
        for element, state in self.pinned.items():
            indices[element] = state
        return ArrayConfiguration(tuple(indices))

    def reduce(self, full: ArrayConfiguration) -> ArrayConfiguration:
        """Project a full configuration onto the free elements."""
        return ArrayConfiguration(tuple(full.indices[i] for i in self.free))


MeasureFunction = Callable[[ArrayConfiguration], object]
ObjectiveFunction = Callable[[object], float]
CfrFunction = Callable[[ArrayConfiguration], np.ndarray]


class PressController:
    """Centralised controller for one PRESS array (§4.2 "Mechanism").

    Parameters
    ----------
    array:
        The array under control.
    measure:
        Callback that returns a measurement for the configuration the array
        is in (per-subcarrier SNR, MIMO matrices, ... — whatever the
        objective consumes).  Each call models one over-the-air sounding.
    objective:
        Higher-is-better score over measurements.
    timing:
        Latency model for budget accounting.  With a control plane
        attached, its ``actuation_latency_s`` is replaced per round by the
        plane's real lossless actuation time.
    control_plane:
        Optional :class:`~repro.control.protocol.ControlPlane`.  When
        given, every sounding actuates the candidate configuration through
        the command/ack protocol first — and measures whatever state the
        array actually reached — and the final adoption does the same with
        a coherence-derived deadline.
    rng:
        Random stream for control-plane loss sampling.  ``None`` treats
        the link as lossless.
    maintenance_interval:
        Run a fault-detection sweep (:func:`detect_unresponsive_elements`)
        every this many rounds (0 disables).  Requires ``measure_cfr``.
    measure_cfr:
        Callback ``configuration -> complex CFR`` for maintenance sweeps.
    """

    def __init__(
        self,
        array: PressArray,
        measure: MeasureFunction,
        objective: ObjectiveFunction,
        timing: TimingModel = TimingModel(),
        control_plane: Optional[object] = None,
        rng: Optional[np.random.Generator] = None,
        maintenance_interval: int = 0,
        measure_cfr: Optional[CfrFunction] = None,
    ) -> None:
        if maintenance_interval < 0:
            raise ValueError(
                f"maintenance_interval must be non-negative, got {maintenance_interval}"
            )
        if maintenance_interval > 0 and measure_cfr is None:
            raise ValueError("maintenance_interval > 0 requires measure_cfr")
        self.array = array
        self.space: ConfigurationSpace = array.configuration_space()
        self._measure = measure
        self._objective = objective
        self.timing = timing
        self.control_plane = control_plane
        if control_plane is not None and len(control_plane.agents) != array.num_elements:
            raise ValueError(
                f"control plane drives {len(control_plane.agents)} elements, "
                f"array has {array.num_elements}"
            )
        self._rng = rng
        self.maintenance_interval = maintenance_interval
        self._measure_cfr = measure_cfr
        self.current_configuration = ArrayConfiguration(
            tuple([0] * array.num_elements)
        )
        #: Last configuration every element acknowledged — the rollback
        #: target when an adoption fails mid-way.
        self.last_acked_configuration: Optional[ArrayConfiguration] = None
        self.unresponsive_elements: tuple[int, ...] = ()
        self.history: list[ControlDecision] = []
        self.telemetry: list[RoundTelemetry] = []
        self._rounds = 0

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------
    @property
    def stale_round_count(self) -> int:
        """Rounds that overran their coherence window so far."""
        return sum(1 for decision in self.history if not decision.within_coherence)

    def score(self, configuration: ArrayConfiguration) -> float:
        """Measure one configuration and score it (no actuation modelling)."""
        return float(self._objective(self._measure(configuration)))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _effective_timing(self) -> TimingModel:
        """The per-measurement latency model for budget planning.

        With a control plane attached the analytic actuation guess is
        replaced by the plane's real lossless actuation time, so budgets
        reflect the configured link instead of a default constant.
        """
        if self.control_plane is None:
            return self.timing
        return TimingModel(
            actuation_latency_s=self.control_plane.lossless_actuation_s(),
            measurement_time_s=self.timing.measurement_time_s,
            decision_overhead_s=self.timing.decision_overhead_s,
        )

    def _maintenance_due(self) -> bool:
        if self.maintenance_interval <= 0 or self._measure_cfr is None:
            return False
        return (self._rounds - 1) % self.maintenance_interval == 0

    def _run_maintenance(self) -> int:
        """Fault-detection sweep; returns the number of soundings spent."""
        self.unresponsive_elements = tuple(
            detect_unresponsive_elements(self.array, self._measure_cfr)
        )
        return self.array.num_elements + 1

    def _reduced_view(self) -> Optional[_ReducedSpace]:
        if not self.unresponsive_elements:
            return None
        pinned = {
            element: self.current_configuration.indices[element]
            for element in self.unresponsive_elements
        }
        return _ReducedSpace(self.space, pinned)

    # ------------------------------------------------------------------
    # The measure -> search -> actuate loop
    # ------------------------------------------------------------------
    def optimize(
        self,
        searcher: Optional[Searcher] = None,
        speed_mph: float = 0.5,
        carrier_hz: float = ISM_BAND_2G4_HZ,
    ) -> ControlDecision:
        """Run one optimisation round and adopt the winning configuration.

        When no searcher is given, one is chosen automatically to fit the
        measurement budget implied by the coherence time at ``speed_mph``
        (the §2 trade-off between agility and optimisation quality); when
        the window cannot fit even one measurement the round degrades to a
        keep-current single probe instead of raising.

        With a control plane attached, every sounding pushes its candidate
        configuration over the real protocol first and measures the state
        the array actually reached, and the final adoption runs under a
        coherence-derived deadline with rollback on failure.
        """
        self._rounds += 1
        plane = self.control_plane
        counters = {
            "retries": 0,
            "lost": 0,
            "failed": 0,
            "sounding_actuation_s": 0.0,
        }

        maintenance_measurements = 0
        if self._maintenance_due():
            maintenance_measurements = self._run_maintenance()

        coherence = coherence_time_s(speed_mph, carrier_hz)
        timing = self._effective_timing()
        budget = measurement_budget(coherence, timing)
        degraded = ""
        reduced = self._reduced_view()
        if searcher is None:
            if budget <= 0:
                degraded = "zero-budget"
            if reduced is not None and reduced.space is not None:
                # Shrink the searcher: pick against the sub-space of
                # responsive elements, holding quarantined digits fixed.
                searcher = pick_searcher(
                    reduced.space,
                    budget,
                    current=reduced.reduce(self.current_configuration),
                )
            else:
                searcher = pick_searcher(
                    self.space, budget, current=self.current_configuration
                )

        def sounded_score(configuration: ArrayConfiguration) -> float:
            target = configuration
            if reduced is not None:
                target = reduced.expand(configuration)
            actual = target
            if plane is not None:
                result = plane.actuate(target, rng=self._rng)
                counters["retries"] += result.retries
                counters["lost"] += result.lost_messages
                counters["sounding_actuation_s"] += result.elapsed_s
                if not result.success:
                    counters["failed"] += 1
                    # Sound the channel the array is *actually* producing:
                    # a partial actuation leaves a mix of old and new
                    # states, and pretending otherwise poisons the search.
                    actual = ArrayConfiguration(result.applied)
            return float(self._objective(self._measure(actual)))

        if reduced is not None and reduced.space is not None:
            reduced_result = searcher.search(reduced.space, sounded_score)
            result = SearchResult(
                best=reduced.expand(reduced_result.best),
                best_score=reduced_result.best_score,
                num_evaluations=reduced_result.num_evaluations,
                trajectory=reduced_result.trajectory,
            )
        elif reduced is not None:
            # Every element is quarantined: nothing left to search.
            held = self.current_configuration
            score = float(self._objective(self._measure(held)))
            result = SearchResult(
                best=held, best_score=score, num_evaluations=1, trajectory=[score]
            )
            degraded = degraded or "all-unresponsive"
        else:
            result = searcher.search(self.space, sounded_score)

        per_sounding_overhead = (
            timing.measurement_time_s + timing.decision_overhead_s
        )
        if plane is not None:
            search_elapsed = (
                counters["sounding_actuation_s"]
                + result.num_evaluations * per_sounding_overhead
            )
        else:
            search_elapsed = result.num_evaluations * timing.per_measurement_s
        search_elapsed += maintenance_measurements * timing.per_measurement_s

        # ------------------------------------------------------------------
        # Adoption: push the winner through the control plane.
        # ------------------------------------------------------------------
        actuation_elapsed = 0.0
        applied = result.best
        if plane is not None:
            remaining = coherence - search_elapsed
            deadline = remaining if remaining > 0 else None
            adoption = plane.actuate(result.best, rng=self._rng, deadline_s=deadline)
            counters["retries"] += adoption.retries
            counters["lost"] += adoption.lost_messages
            actuation_elapsed += adoption.elapsed_s
            if adoption.success:
                applied = result.best
                self.last_acked_configuration = result.best
            else:
                counters["failed"] += 1
                # Graceful degradation: restore the last configuration the
                # whole array acknowledged, so the channel model matches
                # physical reality again.  If even the rollback fails, track
                # the mixed state the array is actually in.
                fallback = self.last_acked_configuration
                if fallback is not None and fallback != result.best:
                    rollback = plane.actuate(fallback, rng=self._rng)
                    counters["retries"] += rollback.retries
                    counters["lost"] += rollback.lost_messages
                    actuation_elapsed += rollback.elapsed_s
                    if rollback.success:
                        applied = fallback
                        degraded = "rolled-back"
                    else:
                        counters["failed"] += 1
                        applied = ArrayConfiguration(rollback.applied)
                        degraded = "partial-state"
                else:
                    applied = ArrayConfiguration(adoption.applied)
                    degraded = "partial-state"
        self.current_configuration = applied

        elapsed = search_elapsed + actuation_elapsed
        telemetry = RoundTelemetry(
            round_index=self._rounds,
            searcher=type(searcher).__name__,
            budget=budget,
            num_evaluations=result.num_evaluations,
            search_elapsed_s=search_elapsed,
            actuation_elapsed_s=actuation_elapsed,
            retries=counters["retries"],
            lost_messages=counters["lost"],
            failed_actuations=counters["failed"],
            degraded=degraded,
            stale=elapsed > coherence,
            unresponsive_elements=self.unresponsive_elements,
            best_score=result.best_score,
        )
        _ROUNDS.inc()
        _SOUNDINGS.inc(result.num_evaluations + maintenance_measurements)
        if degraded:
            _DEGRADED_ROUNDS.inc()
        if telemetry.stale:
            _STALE_ROUNDS.inc()
        _ROUND_ELAPSED_S.observe(elapsed)
        decision = ControlDecision(
            search=result,
            elapsed_s=elapsed,
            coherence_s=coherence,
            applied=applied,
            telemetry=telemetry,
        )
        self.history.append(decision)
        self.telemetry.append(telemetry)
        return decision

    def reoptimize_if_degraded(
        self,
        threshold: float,
        searcher: Optional[Searcher] = None,
        speed_mph: float = 0.5,
    ) -> Optional[ControlDecision]:
        """Re-run the search only if the current configuration's score fell
        below ``threshold`` — the event-driven mode a deployed controller
        would run in to conserve the measurement budget.
        """
        current_score = self.score(self.current_configuration)
        if current_score >= threshold:
            return None
        return self.optimize(searcher=searcher, speed_mph=speed_mph)
