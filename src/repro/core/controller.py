"""The PRESS controller: the measure -> search -> actuate loop of §2.

The controller owns the array and drives the three tasks §2 enumerates:

1. gather channel information between the endpoints (via a measurement
   callback — in this repo, the simulated SDR testbed; in a deployment,
   CSI feedback from receivers);
2. navigate the configuration search space under the coherence-time
   budget;
3. apply the chosen configuration to the array through the control plane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..em.channel import coherence_time_s
from .array import PressArray
from .configuration import ArrayConfiguration, ConfigurationSpace
from .scheduler import TimingModel, measurement_budget, pick_searcher
from .search import SearchResult, Searcher

__all__ = ["ControlDecision", "PressController"]

MeasureFunction = Callable[[ArrayConfiguration], object]
ObjectiveFunction = Callable[[object], float]


@dataclass(frozen=True)
class ControlDecision:
    """Outcome of one optimisation round.

    Attributes
    ----------
    search:
        The search result (best configuration, score, evaluation count).
    elapsed_s:
        Estimated wall-clock time the round took, from the timing model.
    coherence_s:
        The coherence window the round was budgeted against.
    within_coherence:
        Whether the round finished inside the window — if not, the chosen
        configuration may already be stale (§2's core tension).
    """

    search: SearchResult
    elapsed_s: float
    coherence_s: float

    @property
    def within_coherence(self) -> bool:
        return self.elapsed_s <= self.coherence_s

    @property
    def configuration(self) -> ArrayConfiguration:
        return self.search.best


class PressController:
    """Centralised controller for one PRESS array (§4.2 "Mechanism").

    Parameters
    ----------
    array:
        The array under control.
    measure:
        Callback that actuates a configuration and returns a measurement
        (per-subcarrier SNR, MIMO matrices, ... — whatever the objective
        consumes).  Each call models one over-the-air sounding.
    objective:
        Higher-is-better score over measurements.
    timing:
        Latency model for budget accounting.
    """

    def __init__(
        self,
        array: PressArray,
        measure: MeasureFunction,
        objective: ObjectiveFunction,
        timing: TimingModel = TimingModel(),
    ) -> None:
        self.array = array
        self.space: ConfigurationSpace = array.configuration_space()
        self._measure = measure
        self._objective = objective
        self.timing = timing
        self.current_configuration = ArrayConfiguration(
            tuple([0] * array.num_elements)
        )
        self.history: list[ControlDecision] = []

    def score(self, configuration: ArrayConfiguration) -> float:
        """Measure one configuration and score it."""
        return float(self._objective(self._measure(configuration)))

    def optimize(
        self,
        searcher: Optional[Searcher] = None,
        speed_mph: float = 0.5,
        carrier_hz: float = 2.4e9,
    ) -> ControlDecision:
        """Run one optimisation round and adopt the winning configuration.

        When no searcher is given, one is chosen automatically to fit the
        measurement budget implied by the coherence time at ``speed_mph``
        (the §2 trade-off between agility and optimisation quality).
        """
        coherence = coherence_time_s(speed_mph, carrier_hz)
        if searcher is None:
            budget = max(1, measurement_budget(coherence, self.timing))
            searcher = pick_searcher(self.space, budget)
        result = searcher.search(self.space, self.score)
        elapsed = result.num_evaluations * self.timing.per_measurement_s
        decision = ControlDecision(
            search=result, elapsed_s=elapsed, coherence_s=coherence
        )
        self.current_configuration = result.best
        self.history.append(decision)
        return decision

    def reoptimize_if_degraded(
        self,
        threshold: float,
        searcher: Optional[Searcher] = None,
        speed_mph: float = 0.5,
    ) -> Optional[ControlDecision]:
        """Re-run the search only if the current configuration's score fell
        below ``threshold`` — the event-driven mode a deployed controller
        would run in to conserve the measurement budget.
        """
        current_score = self.score(self.current_configuration)
        if current_score >= threshold:
            return None
        return self.optimize(searcher=searcher, speed_mph=speed_mph)
