"""PRESS element hardware model.

Figure 3 of the paper: a PRESS element is an antenna attached (through an
SP4T RF switch) to one of several RF waveguides — open-ended coax stubs of
different lengths that reflect the captured energy with a programmable
phase, or an absorptive load that eliminates the reflection.  §3.2: "Three
of the four waveguides attached to each antenna are left open and the
lengths differ by a quarter of a wavelength which changes the phase of the
reflection from each antenna by pi/2.  The fourth waveguide is terminated
with an absorptive load."

An element state is therefore a complex reflection coefficient Gamma(f):

* open stub with additional (round-trip) path length L:
  ``Gamma(f) = (1 - insertion_loss) * e^{-j 2 pi f_abs L / c}`` — the phase
  is frequency dependent, because the stub is a true delay line (its
  electrical length in radians grows with frequency).  Over the paper's
  20 MHz band at 2.462 GHz this dispersion is small (<1% of the carrier
  phase) but it is physically real and we model it.
* absorptive load ("T" in Figure 4's legend): ``Gamma ~ 0``.

Active elements (§2, §4.1) re-transmit with gain instead of merely
reflecting: |Gamma| may exceed 1, powered by the amplifier.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..constants import CARRIER_FREQUENCY_HZ, SPEED_OF_LIGHT, WAVELENGTH_M
from ..em.antennas import Antenna, OmniAntenna, ParabolicAntenna
from ..em.geometry import Point

__all__ = [
    "ElementState",
    "open_stub_state",
    "absorptive_load_state",
    "active_state",
    "PressElement",
    "sp4t_states",
    "phase_shifter_states",
    "parabolic_element",
    "omni_element",
]

#: Insertion loss of one pass through the SP4T switch [dB].  The PE42441
#: used in §3.1 specifies ~0.45 dB at 2.5 GHz; the reflection traverses the
#: switch twice (in and back out).
SP4T_INSERTION_LOSS_DB = 0.45


@dataclass(frozen=True)
class ElementState:
    """One selectable state of a PRESS element.

    Attributes
    ----------
    label:
        Display label; the paper's figures use the stub phase ("0",
        "0.5:" = pi/2 ... ) or "T" for the terminated/absorptive state.
    extra_path_m:
        Additional round-trip path length contributed by the waveguide stub
        (0, lambda/4, lambda/2 in the prototype).  Converts to a
        frequency-dependent phase and a tiny extra delay.
    magnitude:
        |Gamma| at the reference frequency: ~1 for open stubs (minus switch
        loss), ~0 for the absorptive load, >1 for active elements.
    fixed_phase_rad:
        Frequency-independent phase offset (e.g. from an ideal phase
        shifter, used by the continuous-phase ablations).
    """

    label: str
    extra_path_m: float = 0.0
    magnitude: float = 1.0
    fixed_phase_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.extra_path_m < 0:
            raise ValueError(f"extra_path_m must be non-negative, got {self.extra_path_m}")
        if self.magnitude < 0:
            raise ValueError(f"magnitude must be non-negative, got {self.magnitude}")

    @property
    def is_terminated(self) -> bool:
        """Whether this is (effectively) the absorptive-load state.

        Reflections below -26 dB (the default load leaks at -30 dB) are
        treated as absorbed.
        """
        return self.magnitude < 0.05

    @property
    def extra_delay_s(self) -> float:
        """Group delay added by the stub."""
        return self.extra_path_m / SPEED_OF_LIGHT

    def reflection_coefficient(self, frequency_hz: float = CARRIER_FREQUENCY_HZ) -> complex:
        """Complex Gamma at an absolute frequency.

        The stub phase is ``-2 pi f L / c`` — a pure delay — plus any fixed
        phase-shifter offset.
        """
        if frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
        phase = -2.0 * math.pi * frequency_hz * self.extra_path_m / SPEED_OF_LIGHT
        return self.magnitude * cmath.exp(1j * (phase + self.fixed_phase_rad))

    def nominal_phase_rad(self, frequency_hz: float = CARRIER_FREQUENCY_HZ) -> float:
        """Reflection phase at the reference carrier, wrapped to [0, 2 pi)."""
        gamma = self.reflection_coefficient(frequency_hz)
        return math.atan2(gamma.imag, gamma.real) % (2.0 * math.pi)


def open_stub_state(
    extra_path_wavelengths: float,
    wavelength_m: float = WAVELENGTH_M,
    insertion_loss_db: float = SP4T_INSERTION_LOSS_DB,
    label: Optional[str] = None,
) -> ElementState:
    """An open-waveguide state adding ``extra_path_wavelengths`` of path.

    The prototype's stubs add 0, 1/4 and 1/2 wavelength of *path* length
    (Figure 3), i.e. reflection phases of 0, pi/2 and pi.
    """
    if extra_path_wavelengths < 0:
        raise ValueError(
            f"extra_path_wavelengths must be non-negative, got {extra_path_wavelengths}"
        )
    # Two traversals of the switch (in and out).
    magnitude = 10.0 ** (-2.0 * insertion_loss_db / 20.0)
    if label is None:
        phase = (2.0 * math.pi * extra_path_wavelengths) % (2.0 * math.pi)
        label = _phase_label(phase)
    return ElementState(
        label=label,
        extra_path_m=extra_path_wavelengths * wavelength_m,
        magnitude=magnitude,
    )


def absorptive_load_state(label: str = "T", leakage_db: float = -30.0) -> ElementState:
    """The terminated state: reflection suppressed to ``leakage_db``."""
    return ElementState(label=label, magnitude=10.0 ** (leakage_db / 20.0))


def active_state(
    gain_db: float,
    phase_rad: float,
    label: Optional[str] = None,
) -> ElementState:
    """An active (amplify-and-retransmit) element state (§4.1).

    Active elements contain an amplifier, so |Gamma| > 1 is allowed; they
    are the option the paper reserves for line-of-sight links that passive
    reflections cannot move.
    """
    if label is None:
        label = f"A({gain_db:+.0f}dB,{phase_rad:.2f})"
    return ElementState(
        label=label,
        magnitude=10.0 ** (gain_db / 20.0),
        fixed_phase_rad=phase_rad,
    )


def _phase_label(phase_rad: float) -> str:
    """Label a reflection phase the way the paper's figures do (units of pi)."""
    fraction = (phase_rad / math.pi) % 2.0
    if abs(fraction) < 1e-9:
        return "0"
    if abs(fraction - round(fraction)) < 1e-9:
        return f"{int(round(fraction))}:" if round(fraction) != 1 else ":"
    return f"{fraction:g}:"


def sp4t_states(
    wavelength_m: float = WAVELENGTH_M,
    include_load: bool = True,
    num_phases: int = 3,
) -> tuple[ElementState, ...]:
    """The prototype's SP4T state set.

    §3.2 link-enhancement experiments: three open stubs whose reflection
    phases step by pi/2 (path steps of lambda/4), plus the absorptive load
    "T".  §3.2.2 harmonization uses four reflective lengths and no load
    (``include_load=False, num_phases=4``).
    """
    if num_phases <= 0:
        raise ValueError(f"num_phases must be positive, got {num_phases}")
    states = [
        open_stub_state(k * 0.25, wavelength_m=wavelength_m) for k in range(num_phases)
    ]
    if include_load:
        states.append(absorptive_load_state())
    return tuple(states)


def phase_shifter_states(
    num_phases: int,
    magnitude: float = 1.0,
    include_off: bool = True,
) -> tuple[ElementState, ...]:
    """Idealised continuously-steppable phase states (§4.1 ablation).

    ``num_phases`` evenly spaced frequency-flat phases, optionally plus an
    off state — the design point the paper conjectures at ("around eight
    phase values along with the off state may provide sufficient
    resolution").
    """
    if num_phases <= 0:
        raise ValueError(f"num_phases must be positive, got {num_phases}")
    states = [
        ElementState(
            label=f"P{k}",
            magnitude=magnitude,
            fixed_phase_rad=2.0 * math.pi * k / num_phases,
        )
        for k in range(num_phases)
    ]
    if include_off:
        states.append(absorptive_load_state(label="off"))
    return tuple(states)


@dataclass(frozen=True)
class PressElement:
    """A physical PRESS element: an antenna plus its switchable state set.

    Attributes
    ----------
    position:
        Where the element sits in the floor plan.
    antenna:
        Its radiation pattern (14 dBi parabolic or 2 dBi omni in §3.1).
    states:
        The selectable reflection states (SP4T stubs by default).
    name:
        Identifier used by the control plane.
    """

    position: Point
    antenna: Antenna = field(default_factory=OmniAntenna)
    states: tuple[ElementState, ...] = field(default_factory=sp4t_states)
    name: str = "element"

    def __post_init__(self) -> None:
        if len(self.states) == 0:
            raise ValueError("a PRESS element needs at least one state")

    @property
    def num_states(self) -> int:
        return len(self.states)

    def state(self, index: int) -> ElementState:
        """State by index, with range checking."""
        if not 0 <= index < self.num_states:
            raise IndexError(
                f"state index {index} out of range for {self.num_states} states"
            )
        return self.states[index]

    def pointed_at(self, target: Point) -> "PressElement":
        """A copy with the antenna boresight aimed at ``target``.

        Used when deploying directional (parabolic) elements, which §3.1
        aims at the link; omni elements are unaffected.
        """
        direction = (target - self.position).angle()
        return replace(self, antenna=replace(self.antenna, boresight_rad=direction))


def parabolic_element(
    position: Point,
    name: str = "element",
    states: Optional[Sequence[ElementState]] = None,
) -> PressElement:
    """The §3.1 prototype element: 14 dBi / 21-degree parabolic + SP4T stubs."""
    return PressElement(
        position=position,
        antenna=ParabolicAntenna(),
        states=tuple(states) if states is not None else sp4t_states(),
        name=name,
    )


def omni_element(
    position: Point,
    name: str = "element",
    states: Optional[Sequence[ElementState]] = None,
    gain_dbi: float = 2.0,
) -> PressElement:
    """An omnidirectional PRESS element (used in the §3.2.3 MIMO study)."""
    return PressElement(
        position=position,
        antenna=OmniAntenna(peak_gain_dbi=gain_dbi),
        states=tuple(states) if states is not None else sp4t_states(),
        name=name,
    )
