"""Element fault models: the "maintain the PRESS array" problem (§2).

A building-scale array of cheap switched elements will accumulate faults:
switches stuck in one state, elements gone dark (controller dead, no
actuation — the reflection freezes wherever it was), or elements lost
entirely.  These helpers inject such faults into an array so controllers
and searches can be evaluated for graceful degradation, and provide a
simple fault detector built on the identification measurements of
:mod:`repro.core.prediction`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from .array import PressArray
from .configuration import ArrayConfiguration
from .element import ElementState, PressElement, absorptive_load_state

__all__ = [
    "stuck_element",
    "dead_element",
    "with_faults",
    "detect_unresponsive_elements",
]


def stuck_element(element: PressElement, stuck_state: int) -> PressElement:
    """An element whose switch is stuck: every state maps to one Gamma.

    The control plane can still address it (commands ack fine — the fault
    is in the RF switch), so the configuration space keeps its size; the
    channel just stops responding to this element's digit.
    """
    frozen = element.state(stuck_state)
    states = tuple(
        ElementState(
            label=f"{state.label}(stuck:{frozen.label})",
            extra_path_m=frozen.extra_path_m,
            magnitude=frozen.magnitude,
            fixed_phase_rad=frozen.fixed_phase_rad,
        )
        for state in element.states
    )
    return replace(element, states=states)


def dead_element(element: PressElement) -> PressElement:
    """An element that no longer reflects at all (antenna disconnected).

    Every state becomes an absorptive termination.
    """
    states = tuple(
        absorptive_load_state(label=f"{state.label}(dead)")
        for state in element.states
    )
    return replace(element, states=states)


def with_faults(
    array: PressArray,
    stuck: Optional[dict[int, int]] = None,
    dead: Sequence[int] = (),
) -> PressArray:
    """A copy of ``array`` with faults injected.

    Parameters
    ----------
    array:
        The healthy array.
    stuck:
        Element index -> state index it is stuck in.
    dead:
        Indices of elements that no longer reflect.
    """
    stuck = stuck or {}
    for index in list(stuck) + list(dead):
        if not 0 <= index < array.num_elements:
            raise ValueError(f"element index {index} out of range")
    overlap = set(stuck) & set(dead)
    if overlap:
        raise ValueError(f"elements {sorted(overlap)} marked both stuck and dead")
    elements = []
    for index, element in enumerate(array.elements):
        if index in stuck:
            elements.append(stuck_element(element, stuck[index]))
        elif index in dead:
            elements.append(dead_element(element))
        else:
            elements.append(element)
    return PressArray.from_elements(elements)


def detect_unresponsive_elements(
    array: PressArray,
    measure_cfr,
    threshold: float = 0.05,
) -> list[int]:
    """Find elements whose switching no longer moves the channel.

    Toggles each element between its first state and its terminated state
    (or last state) while holding the others terminated/fixed, and flags
    elements whose toggle changes the CFR by less than ``threshold``
    (relative RMS).  Every toggle is compared against the same all-baseline
    configuration, measured once — N+1 soundings for an N-element array,
    the maintenance sweep a deployed controller runs periodically
    (:class:`~repro.core.controller.PressController` schedules it via
    ``maintenance_interval``).

    Parameters
    ----------
    array:
        The array under test (possibly faulty).
    measure_cfr:
        Callback ``configuration -> complex CFR array``.
    threshold:
        Relative change below which an element counts as unresponsive.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    baseline_states = []
    for element in array.elements:
        off = next(
            (i for i, s in enumerate(element.states) if s.is_terminated),
            element.num_states - 1,
        )
        baseline_states.append(off)
    config_a = ArrayConfiguration(tuple(baseline_states))
    cfr_a = np.asarray(measure_cfr(config_a), dtype=complex)
    scale = max(float(np.linalg.norm(cfr_a)), 1e-30)
    unresponsive = []
    for index, element in enumerate(array.elements):
        config_b = config_a.with_element_state(index, 0)
        if baseline_states[index] == 0:
            config_b = config_a.with_element_state(index, element.num_states - 1)
        cfr_b = np.asarray(measure_cfr(config_b), dtype=complex)
        change = float(np.linalg.norm(cfr_b - cfr_a)) / scale
        if change < threshold:
            unresponsive.append(index)
    return unresponsive
