"""Passive-active hybrid and multi-tier array designs (§4.1).

"A small number of active PRESS elements might replace several more
passive elements.  As noted in §3, these active elements can help effect
changes on line-of-sight links as well as reducing the overall PRESS array
size.  Power issues for the active elements could be addressed with energy
harvesting devices.  Further, we might divide the elements into groups, to
harness diversity or power gains within each group and multiplex across
groups, analogous to how Hekaton groups antennas."

This module provides:

* :func:`hybrid_array` — mix a few active elements into a passive array
  ("the latter significantly outnumbering the former", §2);
* :class:`ElementGroup` / :func:`tiered_groups` — the Hekaton-style
  grouping: a coarse tier (which groups participate) over a fine tier
  (per-element phases within a group), shrinking the search space from
  M^N to 2^G * M^(N/G) per group decision;
* :class:`GroupedConfigurationSpace` — search over group-level decisions
  with a per-group canned phase profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from ..em.geometry import Point
from .array import PressArray
from .configuration import ArrayConfiguration, ConfigurationSpace
from .element import (
    ElementState,
    PressElement,
    absorptive_load_state,
    active_state,
    omni_element,
)

__all__ = [
    "hybrid_array",
    "ElementGroup",
    "tiered_groups",
    "GroupedConfigurationSpace",
]


def hybrid_array(
    passive_positions: Sequence[Point],
    active_positions: Sequence[Point],
    passive_states: Optional[Sequence[ElementState]] = None,
    active_gain_db: float = 20.0,
    num_active_phases: int = 4,
    element_gain_dbi: float = 0.0,
) -> PressArray:
    """Build a mixed passive/active array.

    Active elements get ``num_active_phases`` amplify-and-retransmit states
    (|Gamma| > 1) plus an off state; passive elements keep the usual SP4T
    states.  §2 expects passives to "significantly outnumber" actives —
    asserted here as a sanity check on the caller's design.
    """
    if len(passive_positions) == 0 and len(active_positions) == 0:
        raise ValueError("need at least one element")
    if active_positions and len(passive_positions) < len(active_positions):
        raise ValueError(
            "hybrid designs should have at least as many passive as active "
            f"elements (got {len(passive_positions)} passive, "
            f"{len(active_positions)} active)"
        )
    elements: list[PressElement] = []
    for index, position in enumerate(passive_positions):
        elements.append(
            omni_element(
                position,
                name=f"p{index}",
                gain_dbi=element_gain_dbi,
                states=tuple(passive_states) if passive_states is not None else None,
            )
        )
    active_state_set = tuple(
        active_state(
            gain_db=active_gain_db,
            phase_rad=2.0 * np.pi * k / num_active_phases,
            label=f"A{k}",
        )
        for k in range(num_active_phases)
    ) + (absorptive_load_state(label="off"),)
    for index, position in enumerate(active_positions):
        elements.append(
            omni_element(
                position,
                name=f"a{index}",
                gain_dbi=element_gain_dbi,
                states=active_state_set,
            )
        )
    return PressArray.from_elements(elements)


@dataclass(frozen=True)
class ElementGroup:
    """A contiguous group of element indices sharing a tier decision.

    Attributes
    ----------
    name:
        Group label.
    element_indices:
        Indices into the array's element tuple.
    profiles:
        Candidate per-element state profiles the group can adopt when
        active (each a tuple of state indices, one per member).
    off_profile:
        State indices used when the group is switched off (typically all
        terminated).
    """

    name: str
    element_indices: tuple[int, ...]
    profiles: tuple[tuple[int, ...], ...]
    off_profile: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.element_indices) == 0:
            raise ValueError("a group needs at least one element")
        for profile in self.profiles + (self.off_profile,):
            if len(profile) != len(self.element_indices):
                raise ValueError(
                    f"profile length {len(profile)} != group size "
                    f"{len(self.element_indices)}"
                )
        if len(self.profiles) == 0:
            raise ValueError("a group needs at least one active profile")


def tiered_groups(
    array: PressArray,
    group_size: int,
    num_profiles: int = 4,
) -> list[ElementGroup]:
    """Partition an array into groups with phase-profile candidates.

    Each group's candidate profiles set all members to the same reflective
    state (profile k = state k everywhere) — the "diversity or power gains
    within each group" tier; which groups participate is the multiplexing
    tier above it.  The off profile uses each element's terminated state
    when present, else state 0.
    """
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    groups = []
    for start in range(0, array.num_elements, group_size):
        indices = tuple(range(start, min(start + group_size, array.num_elements)))
        members = [array.elements[i] for i in indices]
        max_state = min(element.num_states for element in members)
        profiles = tuple(
            tuple([state] * len(indices))
            for state in range(min(num_profiles, max_state))
            if not all(
                member.state(state).is_terminated for member in members
            )
        )
        off = []
        for member in members:
            terminated = next(
                (
                    i
                    for i, state in enumerate(member.states)
                    if state.is_terminated
                ),
                0,
            )
            off.append(terminated)
        groups.append(
            ElementGroup(
                name=f"g{start // group_size}",
                element_indices=indices,
                profiles=profiles,
                off_profile=tuple(off),
            )
        )
    return groups


class GroupedConfigurationSpace:
    """Search over group-tier decisions instead of raw element states.

    A grouped decision assigns each group either "off" or one of its
    profiles; :meth:`to_configuration` expands a decision into a full
    element-level :class:`ArrayConfiguration`.  The grouped space has
    ``prod_g (1 + |profiles_g|)`` points — exponentially smaller than the
    raw M^N space for large arrays.
    """

    def __init__(self, array: PressArray, groups: Sequence[ElementGroup]) -> None:
        covered = sorted(i for group in groups for i in group.element_indices)
        if covered != list(range(array.num_elements)):
            raise ValueError("groups must partition the array's elements")
        self.array = array
        self.groups = tuple(groups)

    @property
    def size(self) -> int:
        product = 1
        for group in self.groups:
            product *= 1 + len(group.profiles)
        return product

    def decision_space(self) -> ConfigurationSpace:
        """The grouped decisions as a plain configuration space.

        Decision 0 = group off; decision k (k >= 1) = profile k-1.
        """
        return ConfigurationSpace(
            tuple(1 + len(group.profiles) for group in self.groups)
        )

    def to_configuration(self, decision: ArrayConfiguration) -> ArrayConfiguration:
        """Expand a group-tier decision to element-level states."""
        self.decision_space().validate(decision)
        states = [0] * self.array.num_elements
        for group, choice in zip(self.groups, decision.indices):
            profile = (
                group.off_profile if choice == 0 else group.profiles[choice - 1]
            )
            for element_index, state in zip(group.element_indices, profile):
                states[element_index] = state
        return ArrayConfiguration(tuple(states))

    def all_configurations(self) -> Iterator[ArrayConfiguration]:
        """Element-level configurations of every grouped decision."""
        for decision in self.decision_space().all_configurations():
            yield self.to_configuration(decision)
