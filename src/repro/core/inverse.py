"""The PRESS inverse problem (§2, second challenge).

The forward model predicts the channel from path parameters.  "But PRESS
demands the inverse direction of this calculation: given the existing
wireless channel ... we seek to compute the signal path parameters
{phi_m, tau_m, gamma_m, theta_m, ...} for an existing or additional path or
paths such that the superposition of the existing, modified, and additional
paths yields the desired wireless channel."

Two inverse tools are provided:

* **Element-coefficient synthesis** — because each PRESS element's
  geometric contribution is fixed (it sits where it sits), the only free
  parameter per element is its complex reflection coefficient.  The channel
  is linear in those coefficients:  ``H(f) = H_env(f) + U(f) c`` where
  column ``e`` of the basis ``U`` is element ``e``'s unit-reflectivity CFR.
  :func:`solve_element_coefficients` least-squares-solves for ``c`` and
  :func:`quantize_to_states` snaps it onto the hardware's discrete switch
  states.
* **Path-parameter recovery** — :func:`matching_pursuit_paths` decomposes a
  (residual) CFR into discrete paths {gain, delay} by greedy correlation
  with delay steering vectors, recovering the signal-model parameters of
  the paths that must be added or removed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..em.antennas import Antenna, IsotropicAntenna
from ..em.geometry import Point
from ..em.paths import SignalPath, paths_to_cfr
from ..em.raytracer import RayTracer
from .array import PressArray
from .configuration import ArrayConfiguration

__all__ = [
    "element_basis",
    "solve_element_coefficients",
    "quantize_to_states",
    "matching_pursuit_paths",
    "InverseSolution",
    "synthesize_configuration",
]


def element_basis(
    array: PressArray,
    tx: Point,
    rx: Point,
    tracer: RayTracer,
    frequencies_hz: np.ndarray,
    tx_antenna: Antenna = IsotropicAntenna(),
    rx_antenna: Antenna = IsotropicAntenna(),
) -> np.ndarray:
    """Unit-reflectivity CFR contribution of each element.

    Returns a (num_frequencies, num_elements) complex matrix ``U`` such
    that, for element reflection coefficients ``c``, the array adds
    ``U @ c`` to the environment CFR.  Elements with a blocked view of TX
    or RX contribute a zero column.
    """
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    basis = np.zeros((frequencies_hz.size, array.num_elements), dtype=complex)
    for index, element in enumerate(array.elements):
        path = tracer.relay_path(
            tx,
            element.position,
            rx,
            tx_antenna=tx_antenna,
            rx_antenna=rx_antenna,
            relay_antenna_in=element.antenna,
            relay_antenna_out=element.antenna,
            reflectivity=1.0 + 0.0j,
            kind="press-element",
        )
        if path is not None:
            basis[:, index] = paths_to_cfr([path], frequencies_hz)
    return basis


def solve_element_coefficients(
    target_cfr: np.ndarray,
    environment_cfr: np.ndarray,
    basis: np.ndarray,
    max_magnitude: Optional[float] = 1.0,
    regularization: float = 0.0,
) -> np.ndarray:
    """Least-squares reflection coefficients achieving a target channel.

    Solves ``min_c || environment + U c - target ||^2`` (optionally ridge-
    regularised), then projects each coefficient onto the passivity disc
    ``|c| <= max_magnitude`` — a passive element cannot reflect more energy
    than it captures.  Pass ``max_magnitude=None`` for active elements.
    """
    target = np.asarray(target_cfr, dtype=complex).ravel()
    environment = np.asarray(environment_cfr, dtype=complex).ravel()
    basis = np.asarray(basis, dtype=complex)
    if basis.shape[0] != target.size or environment.size != target.size:
        raise ValueError(
            f"shape mismatch: basis {basis.shape}, target {target.shape}, "
            f"environment {environment.shape}"
        )
    residual = target - environment
    if regularization > 0:
        gram = basis.conj().T @ basis + regularization * np.eye(basis.shape[1])
        coefficients = np.linalg.solve(gram, basis.conj().T @ residual)
    else:
        coefficients, *_ = np.linalg.lstsq(basis, residual, rcond=None)
    if max_magnitude is not None:
        magnitudes = np.abs(coefficients)
        over = magnitudes > max_magnitude
        scale = np.ones_like(magnitudes)
        scale[over] = max_magnitude / magnitudes[over]
        coefficients = coefficients * scale
    return coefficients


def quantize_to_states(
    coefficients: np.ndarray,
    array: PressArray,
    frequency_hz: float,
) -> ArrayConfiguration:
    """Snap continuous reflection coefficients onto hardware switch states.

    Per element, picks the state whose Gamma at the carrier is closest (in
    the complex plane) to the requested coefficient — the quantisation a
    real SP4T-based element imposes on the ideal solution.
    """
    coefficients = np.asarray(coefficients, dtype=complex).ravel()
    if coefficients.size != array.num_elements:
        raise ValueError(
            f"{coefficients.size} coefficients for {array.num_elements} elements"
        )
    indices = []
    for element, wanted in zip(array.elements, coefficients):
        gammas = np.array(
            [state.reflection_coefficient(frequency_hz) for state in element.states]
        )
        indices.append(int(np.argmin(np.abs(gammas - wanted))))
    return ArrayConfiguration(tuple(indices))


def matching_pursuit_paths(
    cfr: np.ndarray,
    frequencies_hz: np.ndarray,
    max_delay_s: float = 400e-9,
    delay_resolution_s: float = 2e-9,
    num_paths: int = 8,
    stop_energy_fraction: float = 1e-3,
) -> list[SignalPath]:
    """Decompose a CFR into discrete {gain, delay} paths by matching pursuit.

    Greedily picks the delay whose steering vector ``e^{-j 2 pi f tau}``
    best correlates with the residual, solves the complex gain in closed
    form, subtracts, and repeats — recovering the signal-model parameters
    (§2) of the dominant paths.

    Parameters
    ----------
    cfr:
        Channel frequency response to explain.
    frequencies_hz:
        Baseband frequency grid of ``cfr``.
    max_delay_s, delay_resolution_s:
        Extent and granularity of the delay search grid.
    num_paths:
        Maximum number of paths to extract.
    stop_energy_fraction:
        Stop once the residual energy falls below this fraction of the
        input energy.
    """
    if max_delay_s <= 0 or delay_resolution_s <= 0:
        raise ValueError("delay grid parameters must be positive")
    if num_paths <= 0:
        raise ValueError(f"num_paths must be positive, got {num_paths}")
    cfr = np.asarray(cfr, dtype=complex).ravel()
    frequencies = np.asarray(frequencies_hz, dtype=float).ravel()
    if cfr.size != frequencies.size:
        raise ValueError(f"cfr size {cfr.size} != frequency grid {frequencies.size}")
    delays = np.arange(0.0, max_delay_s, delay_resolution_s)
    # Steering matrix: (delays, frequencies).
    steering = np.exp(-2.0j * math.pi * delays[:, None] * frequencies[None, :])
    residual = cfr.copy()
    total_energy = float(np.sum(np.abs(cfr) ** 2))
    if total_energy == 0:
        return []
    paths: list[SignalPath] = []
    n = frequencies.size
    for _ in range(num_paths):
        correlations = steering.conj() @ residual / n
        best = int(np.argmax(np.abs(correlations)))
        gain = correlations[best]
        if abs(gain) == 0:
            break
        residual = residual - gain * steering[best]
        paths.append(
            SignalPath(gain=complex(gain), delay_s=float(delays[best]), kind="recovered")
        )
        if float(np.sum(np.abs(residual) ** 2)) < stop_energy_fraction * total_energy:
            break
    return paths


@dataclass(frozen=True)
class InverseSolution:
    """Result of end-to-end configuration synthesis.

    Attributes
    ----------
    configuration:
        The quantised switch settings.
    coefficients:
        The ideal (continuous) per-element reflection coefficients.
    achieved_cfr:
        CFR predicted for ``configuration``.
    residual_rms:
        RMS complex error between achieved and target CFR.
    """

    configuration: ArrayConfiguration
    coefficients: np.ndarray
    achieved_cfr: np.ndarray
    residual_rms: float


def synthesize_configuration(
    array: PressArray,
    target_cfr: np.ndarray,
    environment_paths: Sequence[SignalPath],
    tx: Point,
    rx: Point,
    tracer: RayTracer,
    frequencies_hz: np.ndarray,
    tx_antenna: Antenna = IsotropicAntenna(),
    rx_antenna: Antenna = IsotropicAntenna(),
    max_magnitude: Optional[float] = 1.0,
) -> InverseSolution:
    """Solve the inverse problem end to end: target CFR -> switch settings.

    Solves the continuous least-squares problem, quantises to the hardware
    states, and reports the CFR the quantised configuration actually
    achieves (through the full forward model, stub dispersion included).
    """
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    environment_cfr = paths_to_cfr(list(environment_paths), frequencies_hz)
    basis = element_basis(
        array, tx, rx, tracer, frequencies_hz, tx_antenna, rx_antenna
    )
    coefficients = solve_element_coefficients(
        target_cfr, environment_cfr, basis, max_magnitude=max_magnitude
    )
    configuration = quantize_to_states(coefficients, array, tracer.frequency_hz)
    element_paths = array.element_paths(
        configuration, tx, rx, tracer, tx_antenna, rx_antenna
    )
    achieved = environment_cfr + paths_to_cfr(element_paths, frequencies_hz)
    target = np.asarray(target_cfr, dtype=complex).ravel()
    residual_rms = float(np.sqrt(np.mean(np.abs(achieved - target) ** 2)))
    return InverseSolution(
        configuration=configuration,
        coefficients=coefficients,
        achieved_cfr=achieved,
        residual_rms=residual_rms,
    )
