"""Joint multi-link optimisation: the §2 agility-vs-optimisation trade-off.

"If the current communication patterns involve multiple wireless links
operating over different time or frequency slots, we would like the system
to attempt to optimize them jointly and simultaneously, if possible. ...
a trade-off exists between agility and optimization: one might jointly
optimize over a large set of likely communication links, obviating the
need to change the PRESS array for each link's communication, but possibly
complicating the optimization problem.  On the other end of the design
space, one might optimize solely over a single communication link ...
One can imagine hybrid tradeoffs and dynamic strategies."

This module implements all three points on that spectrum:

* **per-link** — each link gets its own optimal configuration and the array
  switches between them on packet timescales (maximum quality, maximum
  switching load);
* **joint** — a single configuration serves all links at once (zero
  switching, possibly compromised quality);
* **hybrid** — links are clustered greedily; links whose optima are
  compatible share a configuration, the rest get their own.

Links come in two flavours.  :class:`LinkObjective` wraps an arbitrary
``configuration -> measurement`` callback (over-the-air soundings, MIMO
matrices, ...).  :class:`BasisLink` wraps a precomputed
:class:`~repro.core.basis.BasisEvaluator`; when every link is
basis-backed and the searcher is delta-capable, the joint strategies run
on a :class:`~repro.core.basis.MultiLinkDeltaEvaluator` — one cached
element sum per link, O(K·L) per flip — so they scale to wall-sized
arrays where the callback path's O(M^N) enumeration is impossible.

Joint scores are combined by a
:data:`~repro.core.objectives.LinkAggregate` (weighted mean by default;
worst-link max-min and lexicographic leximin via
:mod:`repro.core.objectives`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from .basis import BasisEvaluator, MultiLinkDeltaEvaluator
from .configuration import ArrayConfiguration, ConfigurationSpace
from .scheduler import SwitchingSchedule, TimingModel, packet_timescale_schedule
from .search import Searcher, ExhaustiveSearch

__all__ = [
    "LinkObjective",
    "BasisLink",
    "JointResult",
    "optimize_per_link",
    "optimize_joint",
    "optimize_hybrid",
    "compare_strategies",
]

MeasureFunction = Callable[[ArrayConfiguration], np.ndarray]
LinkAggregate = Callable[[np.ndarray, np.ndarray], float]


def _validate_weight(name: str, weight: float) -> None:
    if not math.isfinite(weight) or weight <= 0.0:
        raise ValueError(
            f"link {name!r} weight must be finite and positive, got {weight}"
        )


@dataclass(frozen=True)
class LinkObjective:
    """One link under joint optimisation.

    Attributes
    ----------
    name:
        Link identifier (used in schedules).
    measure:
        Configuration -> per-subcarrier SNR for this link.
    objective:
        Per-link score over that SNR (higher is better).
    weight:
        Relative weight in joint aggregates; must be finite and positive
        (zero or negative weights would silently sign-flip or zero out the
        weighted-mean aggregate).
    """

    name: str
    measure: MeasureFunction
    objective: Callable[[np.ndarray], float]
    weight: float = 1.0

    def __post_init__(self) -> None:
        _validate_weight(self.name, self.weight)

    def score(self, configuration: ArrayConfiguration) -> float:
        return float(self.objective(self.measure(configuration)))


@dataclass(frozen=True)
class BasisLink:
    """One basis-backed link under joint optimisation.

    The scalable twin of :class:`LinkObjective`: the link's score function
    is a :class:`~repro.core.basis.BasisEvaluator` over its own traced
    :class:`~repro.core.basis.ChannelBasis` (every link shares the array,
    so every basis shares one configuration space).  When all links in a
    strategy call are ``BasisLink`` and the searcher is delta-capable,
    the strategies route through the incremental multi-link scorer.
    """

    name: str
    evaluator: BasisEvaluator
    weight: float = 1.0

    def __post_init__(self) -> None:
        _validate_weight(self.name, self.weight)

    def score(self, configuration: ArrayConfiguration) -> float:
        return self.evaluator(configuration)


Link = Union[LinkObjective, BasisLink]


def _link_weights(links: Sequence[Link]) -> np.ndarray:
    """Validated per-link weight vector; raises on empty/zero aggregates."""
    if not links:
        raise ValueError("need at least one link")
    weights = np.array([link.weight for link in links], dtype=float)
    total = float(weights.sum())
    if not math.isfinite(total) or total <= 0.0:
        raise ValueError(
            f"link weights must sum to a positive total, got {total}"
        )
    return weights


def _all_basis_links(links: Sequence[Link]) -> bool:
    return bool(links) and all(isinstance(link, BasisLink) for link in links)


def _shared_space(
    links: Sequence[BasisLink], space: Optional[ConfigurationSpace]
) -> ConfigurationSpace:
    """The configuration space every basis link shares (validated)."""
    shared = links[0].evaluator.basis.space
    for link in links[1:]:
        if link.evaluator.basis.space.state_counts != shared.state_counts:
            raise ValueError(
                f"link {link.name!r} basis has state counts "
                f"{link.evaluator.basis.space.state_counts}, expected "
                f"{shared.state_counts}; every link sees the same array"
            )
    if space is not None and space.state_counts != shared.state_counts:
        raise ValueError(
            f"explicit space has state counts {space.state_counts} but the "
            f"link bases share {shared.state_counts}"
        )
    return shared


@dataclass(frozen=True)
class JointResult:
    """Outcome of a multi-link optimisation strategy.

    Attributes
    ----------
    strategy:
        "per-link", "joint" or "hybrid".
    assignments:
        Configuration used for each link, by name.
    per_link_scores:
        Each link's score under its assigned configuration.
    num_measurements:
        Over-the-air soundings spent across all searches.  Exact: a joint
        probe sounds every link once; a configuration already measured
        within the coherence time is never re-charged (per-link scores at
        the winning configuration are read from the search's own probes).
    num_distinct_configurations:
        How many configurations the array must switch between (the
        switching load; 1 = no packet-timescale switching needed).
    """

    strategy: str
    assignments: dict[str, ArrayConfiguration]
    per_link_scores: dict[str, float]
    num_measurements: int
    num_distinct_configurations: int

    def aggregate_score(
        self,
        links: Sequence[Link],
        aggregate: Optional[LinkAggregate] = None,
    ) -> float:
        """Aggregate of per-link scores (weighted mean by default)."""
        weights = _link_weights(links)
        scores = np.array(
            [self.per_link_scores[link.name] for link in links], dtype=float
        )
        if aggregate is None:
            return float(np.dot(weights, scores) / weights.sum())
        return float(aggregate(scores, weights))

    def worst_link_score(self) -> float:
        return min(self.per_link_scores.values())

    def schedule(
        self,
        slot_duration_s: float = 1.5e-3,
        timing: TimingModel = TimingModel(),
        space: Optional[ConfigurationSpace] = None,
    ) -> SwitchingSchedule:
        """The packet-timescale schedule this strategy implies.

        With ``space`` the slot ranks are true space indices.  Without it
        ranks are derived from the *distinct* assigned configurations (in
        first-appearance order over the sorted link names), so links that
        share a configuration share a rank and the schedule charges no
        switching between bit-identical configurations — a joint result
        yields zero switches either way.
        """
        names = sorted(self.assignments)
        if space is not None:
            ranks = [space.index_of(self.assignments[name]) for name in names]
        else:
            order: dict[tuple[int, ...], int] = {}
            ranks = []
            for name in names:
                key = self.assignments[name].indices
                if key not in order:
                    order[key] = len(order)
                ranks.append(order[key])
        return packet_timescale_schedule(
            names, ranks, slot_duration_s=slot_duration_s, timing=timing
        )


def optimize_per_link(
    links: Sequence[Link],
    space: Optional[ConfigurationSpace] = None,
    searcher: Searcher = ExhaustiveSearch(),
) -> JointResult:
    """Each link gets its own optimum (the agile extreme)."""
    links = list(links)
    _link_weights(links)
    assignments: dict[str, ArrayConfiguration] = {}
    scores: dict[str, float] = {}
    measurements = 0
    if _all_basis_links(links):
        _shared_space(links, space)
        for link in links:
            evaluator = link.evaluator
            result = searcher.search_basis(
                evaluator.basis,
                evaluator.objective,
                tx_power_dbm=evaluator.tx_power_dbm,
                noise_figure_db=evaluator.noise_figure_db,
                mask=evaluator.mask,
            )
            assignments[link.name] = result.best
            scores[link.name] = result.best_score
            measurements += result.num_evaluations
    else:
        if space is None:
            raise ValueError("space is required for callback-measured links")
        for link in links:
            result = searcher.search(space, link.score)
            assignments[link.name] = result.best
            scores[link.name] = result.best_score
            measurements += result.num_evaluations
    distinct = len({assignment.indices for assignment in assignments.values()})
    return JointResult(
        strategy="per-link",
        assignments=assignments,
        per_link_scores=scores,
        num_measurements=measurements,
        num_distinct_configurations=distinct,
    )


def optimize_joint(
    links: Sequence[Link],
    space: Optional[ConfigurationSpace] = None,
    searcher: Searcher = ExhaustiveSearch(),
    aggregate: Optional[LinkAggregate] = None,
    resync_interval: int = 4096,
) -> JointResult:
    """One configuration for all links (the static extreme).

    The joint score is ``aggregate(per_link_scores, weights)`` — the
    weighted mean when ``aggregate`` is ``None``.  Each search probe
    sounds every link, which the measurement count reflects exactly: the
    per-link scores of the winning configuration are read back from the
    search's own probes, never re-measured.

    When every link is a :class:`BasisLink` and the searcher is
    delta-capable (``uses_delta``), the search runs on a
    :class:`~repro.core.basis.MultiLinkDeltaEvaluator` — O(K·L) per flip,
    independent of array size — so joint optimisation works on spaces far
    past :data:`~repro.core.basis.MAX_ENUMERABLE_CONFIGS`.
    """
    links = list(links)
    weights = _link_weights(links)

    if _all_basis_links(links) and searcher.uses_delta:
        _shared_space(links, space)
        evaluator = MultiLinkDeltaEvaluator(
            [link.evaluator for link in links],
            weights=weights,
            aggregate=aggregate,
            resync_interval=resync_interval,
        )
        best, _ = searcher.run_delta(evaluator)
        # The winner was probed during the search; reading its per-link
        # scores off the basis costs no new soundings.
        scores = {link.name: link.evaluator(best) for link in links}
        return JointResult(
            strategy="joint",
            assignments={link.name: best for link in links},
            per_link_scores=scores,
            num_measurements=evaluator.num_scores * len(links),
            num_distinct_configurations=1,
        )

    if space is None:
        if _all_basis_links(links):
            space = _shared_space(links, None)
        else:
            raise ValueError("space is required for callback-measured links")

    total_weight = float(weights.sum())
    per_link_cache: dict[tuple[int, ...], np.ndarray] = {}

    def joint_score(configuration: ArrayConfiguration) -> float:
        link_scores = np.array([link.score(configuration) for link in links])
        per_link_cache[configuration.indices] = link_scores
        if aggregate is None:
            return float(np.dot(weights, link_scores) / total_weight)
        return float(aggregate(link_scores, weights))

    result = searcher.search(space, joint_score)
    cached = per_link_cache.get(result.best.indices)
    measurements = result.num_evaluations * len(links)
    if cached is None:  # pragma: no cover - searchers always probe their winner
        cached = np.array([link.score(result.best) for link in links])
        measurements += len(links)
    scores = {link.name: float(cached[i]) for i, link in enumerate(links)}
    return JointResult(
        strategy="joint",
        assignments={link.name: result.best for link in links},
        per_link_scores=scores,
        num_measurements=measurements,
        num_distinct_configurations=1,
    )


def optimize_hybrid(
    links: Sequence[Link],
    space: Optional[ConfigurationSpace] = None,
    searcher: Searcher = ExhaustiveSearch(),
    tolerance: float = 1.0,
) -> JointResult:
    """Greedy clustering between the two extremes.

    Starts from the per-link optima; a link joins an existing cluster's
    configuration if doing so costs it at most ``tolerance`` of score,
    otherwise it founds a new cluster.  The result keeps near-per-link
    quality with (often far) fewer distinct configurations to switch among.
    Each cluster-membership probe is one counted sounding.
    """
    links = list(links)
    _link_weights(links)
    per_link = optimize_per_link(links, space, searcher)
    measurements = per_link.num_measurements
    cluster_configs: list[ArrayConfiguration] = []
    assignments: dict[str, ArrayConfiguration] = {}
    scores: dict[str, float] = {}
    # Greedy pass in link order.
    for link in links:
        own_best = per_link.per_link_scores[link.name]
        chosen: Optional[ArrayConfiguration] = None
        chosen_score = -np.inf
        for config in cluster_configs:
            score = link.score(config)
            measurements += 1
            if score >= own_best - tolerance and score > chosen_score:
                chosen, chosen_score = config, score
        if chosen is None:
            chosen = per_link.assignments[link.name]
            chosen_score = own_best
            cluster_configs.append(chosen)
        assignments[link.name] = chosen
        scores[link.name] = chosen_score
    return JointResult(
        strategy="hybrid",
        assignments=assignments,
        per_link_scores=scores,
        num_measurements=measurements,
        num_distinct_configurations=len(cluster_configs),
    )


def compare_strategies(
    links: Sequence[Link],
    space: Optional[ConfigurationSpace] = None,
    searcher: Searcher = ExhaustiveSearch(),
    tolerance: float = 1.0,
    aggregate: Optional[LinkAggregate] = None,
) -> dict[str, JointResult]:
    """Run all three strategies for a side-by-side comparison."""
    return {
        "per-link": optimize_per_link(links, space, searcher),
        "joint": optimize_joint(links, space, searcher, aggregate=aggregate),
        "hybrid": optimize_hybrid(links, space, searcher, tolerance=tolerance),
    }
