"""Joint multi-link optimisation: the §2 agility-vs-optimisation trade-off.

"If the current communication patterns involve multiple wireless links
operating over different time or frequency slots, we would like the system
to attempt to optimize them jointly and simultaneously, if possible. ...
a trade-off exists between agility and optimization: one might jointly
optimize over a large set of likely communication links, obviating the
need to change the PRESS array for each link's communication, but possibly
complicating the optimization problem.  On the other end of the design
space, one might optimize solely over a single communication link ...
One can imagine hybrid tradeoffs and dynamic strategies."

This module implements all three points on that spectrum:

* **per-link** — each link gets its own optimal configuration and the array
  switches between them on packet timescales (maximum quality, maximum
  switching load);
* **joint** — a single configuration serves all links at once (zero
  switching, possibly compromised quality);
* **hybrid** — links are clustered greedily; links whose optima are
  compatible share a configuration, the rest get their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .configuration import ArrayConfiguration, ConfigurationSpace
from .scheduler import SwitchingSchedule, TimingModel, packet_timescale_schedule
from .search import Searcher, ExhaustiveSearch

__all__ = [
    "LinkObjective",
    "JointResult",
    "optimize_per_link",
    "optimize_joint",
    "optimize_hybrid",
    "compare_strategies",
]

MeasureFunction = Callable[[ArrayConfiguration], np.ndarray]


@dataclass(frozen=True)
class LinkObjective:
    """One link under joint optimisation.

    Attributes
    ----------
    name:
        Link identifier (used in schedules).
    measure:
        Configuration -> per-subcarrier SNR for this link.
    objective:
        Per-link score over that SNR (higher is better).
    weight:
        Relative weight in joint aggregates.
    """

    name: str
    measure: MeasureFunction
    objective: Callable[[np.ndarray], float]
    weight: float = 1.0

    def score(self, configuration: ArrayConfiguration) -> float:
        return float(self.objective(self.measure(configuration)))


@dataclass(frozen=True)
class JointResult:
    """Outcome of a multi-link optimisation strategy.

    Attributes
    ----------
    strategy:
        "per-link", "joint" or "hybrid".
    assignments:
        Configuration used for each link, by name.
    per_link_scores:
        Each link's score under its assigned configuration.
    num_measurements:
        Over-the-air soundings spent across all searches.
    num_distinct_configurations:
        How many configurations the array must switch between (the
        switching load; 1 = no packet-timescale switching needed).
    """

    strategy: str
    assignments: dict[str, ArrayConfiguration]
    per_link_scores: dict[str, float]
    num_measurements: int
    num_distinct_configurations: int

    def aggregate_score(self, links: Sequence[LinkObjective]) -> float:
        """Weighted mean of per-link scores."""
        total_weight = sum(link.weight for link in links)
        return float(
            sum(link.weight * self.per_link_scores[link.name] for link in links)
            / total_weight
        )

    def worst_link_score(self) -> float:
        return min(self.per_link_scores.values())

    def schedule(
        self,
        slot_duration_s: float = 1.5e-3,
        timing: TimingModel = TimingModel(),
        space: Optional[ConfigurationSpace] = None,
    ) -> SwitchingSchedule:
        """The packet-timescale schedule this strategy implies."""
        names = sorted(self.assignments)
        if space is not None:
            ranks = [space.index_of(self.assignments[name]) for name in names]
        else:
            ranks = list(range(len(names)))
        return packet_timescale_schedule(
            names, ranks, slot_duration_s=slot_duration_s, timing=timing
        )


def optimize_per_link(
    links: Sequence[LinkObjective],
    space: ConfigurationSpace,
    searcher: Searcher = ExhaustiveSearch(),
) -> JointResult:
    """Each link gets its own optimum (the agile extreme)."""
    if not links:
        raise ValueError("need at least one link")
    assignments: dict[str, ArrayConfiguration] = {}
    scores: dict[str, float] = {}
    measurements = 0
    for link in links:
        result = searcher.search(space, link.score)
        assignments[link.name] = result.best
        scores[link.name] = result.best_score
        measurements += result.num_evaluations
    distinct = len({assignment.indices for assignment in assignments.values()})
    return JointResult(
        strategy="per-link",
        assignments=assignments,
        per_link_scores=scores,
        num_measurements=measurements,
        num_distinct_configurations=distinct,
    )


def optimize_joint(
    links: Sequence[LinkObjective],
    space: ConfigurationSpace,
    searcher: Searcher = ExhaustiveSearch(),
) -> JointResult:
    """One configuration for all links (the static extreme).

    The joint score is the weighted mean of per-link objectives; each
    search step measures every link, which the measurement count reflects.
    """
    if not links:
        raise ValueError("need at least one link")
    total_weight = sum(link.weight for link in links)

    def joint_score(configuration: ArrayConfiguration) -> float:
        return (
            sum(link.weight * link.score(configuration) for link in links)
            / total_weight
        )

    result = searcher.search(space, joint_score)
    assignments = {link.name: result.best for link in links}
    scores = {link.name: link.score(result.best) for link in links}
    return JointResult(
        strategy="joint",
        assignments=assignments,
        per_link_scores=scores,
        num_measurements=result.num_evaluations * len(links),
        num_distinct_configurations=1,
    )


def optimize_hybrid(
    links: Sequence[LinkObjective],
    space: ConfigurationSpace,
    searcher: Searcher = ExhaustiveSearch(),
    tolerance: float = 1.0,
) -> JointResult:
    """Greedy clustering between the two extremes.

    Starts from the per-link optima; a link joins an existing cluster's
    configuration if doing so costs it at most ``tolerance`` of score,
    otherwise it founds a new cluster.  The result keeps near-per-link
    quality with (often far) fewer distinct configurations to switch among.
    """
    if not links:
        raise ValueError("need at least one link")
    per_link = optimize_per_link(links, space, searcher)
    measurements = per_link.num_measurements
    cluster_configs: list[ArrayConfiguration] = []
    assignments: dict[str, ArrayConfiguration] = {}
    scores: dict[str, float] = {}
    # Greedy pass in link order.
    for link in links:
        own_best = per_link.per_link_scores[link.name]
        chosen: Optional[ArrayConfiguration] = None
        chosen_score = -np.inf
        for config in cluster_configs:
            score = link.score(config)
            measurements += 1
            if score >= own_best - tolerance and score > chosen_score:
                chosen, chosen_score = config, score
        if chosen is None:
            chosen = per_link.assignments[link.name]
            chosen_score = own_best
            cluster_configs.append(chosen)
        assignments[link.name] = chosen
        scores[link.name] = chosen_score
    return JointResult(
        strategy="hybrid",
        assignments=assignments,
        per_link_scores=scores,
        num_measurements=measurements,
        num_distinct_configurations=len(cluster_configs),
    )


def compare_strategies(
    links: Sequence[LinkObjective],
    space: ConfigurationSpace,
    searcher: Searcher = ExhaustiveSearch(),
    tolerance: float = 1.0,
) -> dict[str, JointResult]:
    """Run all three strategies for a side-by-side comparison."""
    return {
        "per-link": optimize_per_link(links, space, searcher),
        "joint": optimize_joint(links, space, searcher),
        "hybrid": optimize_hybrid(links, space, searcher, tolerance=tolerance),
    }
