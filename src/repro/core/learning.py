"""Learning-based search (§4.2: "machine learning techniques, as Remy has
used in congestion control").

Two learners over the configuration space:

* :class:`CrossEntropySearch` — a distribution-based optimiser: maintain an
  independent categorical distribution per element, sample configurations,
  refit the distribution to the elite fraction.  Scales to arrays far past
  exhaustive enumeration and parallelises naturally over sounding frames.
* :class:`EpsilonGreedyBandit` — an online learner for *time-varying*
  channels: keeps running value estimates per configuration (with
  exponential forgetting so stale measurements decay), explores with
  probability epsilon, exploits otherwise.  This is the §2 story of a
  controller that must keep re-learning as the coherence time expires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .configuration import ArrayConfiguration, ConfigurationSpace
from .search import Searcher, ScoreFunction

__all__ = ["CrossEntropySearch", "EpsilonGreedyBandit", "BanditState"]


@dataclass(frozen=True)
class CrossEntropySearch(Searcher):
    """Cross-entropy method over per-element categorical distributions.

    Attributes
    ----------
    population:
        Samples per iteration.
    iterations:
        Refinement rounds.
    elite_fraction:
        Fraction of samples used to refit the distribution.
    smoothing:
        Convex mixing of the new distribution with the old (stabilises
        small populations).
    """

    population: int = 16
    iterations: int = 6
    elite_fraction: float = 0.25
    smoothing: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be >= 2, got {self.population}")
        if self.iterations <= 0:
            raise ValueError(f"iterations must be positive, got {self.iterations}")
        if not 0.0 < self.elite_fraction <= 1.0:
            raise ValueError(
                f"elite_fraction must be in (0, 1], got {self.elite_fraction}"
            )
        if not 0.0 <= self.smoothing <= 1.0:
            raise ValueError(f"smoothing must be in [0, 1], got {self.smoothing}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        distributions = [
            np.full(count, 1.0 / count) for count in space.state_counts
        ]
        num_elite = max(1, int(round(self.population * self.elite_fraction)))
        best: Optional[ArrayConfiguration] = None
        best_score = -math.inf
        for _ in range(self.iterations):
            samples = []
            for _ in range(self.population):
                indices = tuple(
                    int(rng.choice(len(dist), p=dist)) for dist in distributions
                )
                samples.append(ArrayConfiguration(indices))
            scored = [(score(sample), sample) for sample in samples]
            scored.sort(key=lambda pair: pair[0], reverse=True)
            if scored[0][0] > best_score:
                best_score, best = scored[0]
            elites = [sample for _, sample in scored[:num_elite]]
            for element in range(space.num_elements):
                counts = np.zeros(space.state_counts[element])
                for elite in elites:
                    counts[elite.indices[element]] += 1.0
                refit = counts / counts.sum()
                distributions[element] = (
                    self.smoothing * refit
                    + (1.0 - self.smoothing) * distributions[element]
                )
        assert best is not None
        return best, best_score


@dataclass
class BanditState:
    """Running value estimate for one configuration."""

    value: float = 0.0
    pulls: int = 0


class EpsilonGreedyBandit:
    """Online configuration selection for time-varying channels.

    Each call to :meth:`step` picks a configuration (explore with
    probability ``epsilon``, else exploit the best current estimate),
    observes its reward through the supplied function, and updates an
    exponentially-forgetting value estimate.  Forgetting matters because
    the channel decorrelates: a configuration that was optimal two
    coherence times ago carries little evidence now.

    Parameters
    ----------
    space:
        The configuration space.
    epsilon:
        Exploration probability.
    forgetting:
        Per-update learning rate in (0, 1]; 1 = keep only the latest
        observation, small values average over history.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        epsilon: float = 0.1,
        forgetting: float = 0.3,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(f"forgetting must be in (0, 1], got {forgetting}")
        self.space = space
        self.epsilon = epsilon
        self.forgetting = forgetting
        self._rng = np.random.default_rng(seed)
        self._states: dict[tuple[int, ...], BanditState] = {}
        self.total_pulls = 0

    def _estimate(self, configuration: ArrayConfiguration) -> BanditState:
        return self._states.setdefault(configuration.indices, BanditState())

    def best_known(self) -> Optional[ArrayConfiguration]:
        """The configuration with the highest current value estimate."""
        if not self._states:
            return None
        indices = max(self._states, key=lambda key: self._states[key].value)
        return ArrayConfiguration(indices)

    def select(self) -> ArrayConfiguration:
        """Pick the next configuration to try (explore or exploit)."""
        explore = self._rng.random() < self.epsilon or not self._states
        if explore:
            return self.space.random_configuration(self._rng)
        best = self.best_known()
        assert best is not None
        return best

    def update(self, configuration: ArrayConfiguration, reward: float) -> None:
        """Fold one observed reward into the value estimate."""
        state = self._estimate(configuration)
        if state.pulls == 0:
            state.value = float(reward)
        else:
            state.value += self.forgetting * (float(reward) - state.value)
        state.pulls += 1
        self.total_pulls += 1

    def step(self, reward_fn: Callable[[ArrayConfiguration], float]) -> tuple[
        ArrayConfiguration, float
    ]:
        """One explore/exploit round: select, observe, update."""
        configuration = self.select()
        reward = float(reward_fn(configuration))
        self.update(configuration, reward)
        return configuration, reward
