"""Objective functions the PRESS controller optimises.

Each of §1's three applications maps to an objective over the measured
channel:

* link enhancement -> raise the worst subcarrier / remove nulls
  (:class:`MinSnrObjective`, :class:`FlatnessObjective`,
  :class:`ThroughputObjective`);
* network harmonization / spatial partitioning -> shape per-sub-band gains
  (:class:`SubbandContrastObjective`, :class:`InterferenceRatioObjective`);
* large-MIMO conditioning -> lower the channel-matrix condition number
  (:class:`ConditionNumberObjective`, :class:`CapacityObjective`).

All objectives are "higher is better" callables so every search algorithm
in :mod:`repro.core.search` can maximise them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..mimo.channel_matrix import condition_numbers_db
from ..phy.rates import expected_throughput_mbps
from ..phy.snr import effective_snr_db

__all__ = [
    "MinSnrObjective",
    "MeanSnrObjective",
    "FlatnessObjective",
    "EffectiveSnrObjective",
    "ThroughputObjective",
    "SubbandContrastObjective",
    "InterferenceRatioObjective",
    "ConditionNumberObjective",
    "CapacityObjective",
    "WeightedObjective",
    "TargetCfrObjective",
    "LinkAggregate",
    "WeightedMeanAggregate",
    "WorstLinkAggregate",
    "LexicographicAggregate",
    "joint_aggregate",
    "JOINT_AGGREGATE_NAMES",
]


@dataclass(frozen=True)
class MinSnrObjective:
    """Maximise the minimum per-subcarrier SNR (dB) — kill the deepest null."""

    def __call__(self, snr_db: np.ndarray) -> float:
        return float(np.min(np.asarray(snr_db, dtype=float)))


@dataclass(frozen=True)
class MeanSnrObjective:
    """Maximise the mean per-subcarrier SNR (dB)."""

    def __call__(self, snr_db: np.ndarray) -> float:
        return float(np.mean(np.asarray(snr_db, dtype=float)))


@dataclass(frozen=True)
class FlatnessObjective:
    """Maximise spectral flatness: negative standard deviation of SNR (dB).

    A "flatter" channel is the §1 goal — OFDM "could offer a greater bit
    rate" over it.
    """

    def __call__(self, snr_db: np.ndarray) -> float:
        return float(-np.std(np.asarray(snr_db, dtype=float)))


@dataclass(frozen=True)
class EffectiveSnrObjective:
    """Maximise the capacity-equivalent effective SNR (dB)."""

    def __call__(self, snr_db: np.ndarray) -> float:
        return effective_snr_db(np.asarray(snr_db, dtype=float))


@dataclass(frozen=True)
class ThroughputObjective:
    """Maximise predicted goodput (Mbps) through the MCS ladder."""

    frame_bits: int = 8000

    def __call__(self, snr_db: np.ndarray) -> float:
        return expected_throughput_mbps(
            np.asarray(snr_db, dtype=float), frame_bits=self.frame_bits
        )


@dataclass(frozen=True)
class SubbandContrastObjective:
    """Favour one half of the band over the other (Figure 7 harmonization).

    Score = mean SNR over the favoured half minus mean SNR over the other
    half, so maximising it produces exactly the "clear and opposite
    frequency selectivity" of §3.2.2.

    Attributes
    ----------
    favor_upper:
        Whether the upper half-band is the one to enhance.
    """

    favor_upper: bool = False

    def __call__(self, snr_db: np.ndarray) -> float:
        snr = np.asarray(snr_db, dtype=float)
        half = snr.size // 2
        lower, upper = snr[:half], snr[half:]
        contrast = float(np.mean(upper) - np.mean(lower))
        return contrast if self.favor_upper else -contrast


@dataclass(frozen=True)
class InterferenceRatioObjective:
    """Maximise signal-to-interference contrast across two channels.

    For the §1 "network harmonization" picture: strengthen the
    communication channel while weakening the interference channel.  The
    two channels' per-subcarrier SNRs are concatenated by the caller into a
    tuple; the score is mean(signal) - weight * mean(interference).
    """

    interference_weight: float = 1.0

    def __call__(self, snrs: tuple[np.ndarray, np.ndarray]) -> float:
        signal, interference = snrs
        return float(
            np.mean(np.asarray(signal, dtype=float))
            - self.interference_weight * np.mean(np.asarray(interference, dtype=float))
        )


@dataclass(frozen=True)
class ConditionNumberObjective:
    """Minimise the mean per-subcarrier MIMO condition number (dB).

    Called with a stack of per-subcarrier channel matrices
    (subcarriers, rx, tx); returns the negated mean condition number so
    higher is better.
    """

    def __call__(self, matrices: np.ndarray) -> float:
        return float(-np.mean(condition_numbers_db(np.asarray(matrices, dtype=complex))))


@dataclass(frozen=True)
class CapacityObjective:
    """Maximise mean equal-power MIMO capacity at a reference SNR."""

    snr_db: float = 20.0

    def __call__(self, matrices: np.ndarray) -> float:
        from ..mimo.capacity import ofdm_capacity_bits

        matrices = np.asarray(matrices, dtype=complex)
        # Normalise so conditioning, not raw gain, drives the score.
        scale = np.sqrt(np.mean(np.abs(matrices) ** 2))
        if scale == 0:
            return 0.0
        return ofdm_capacity_bits(matrices / scale, 10.0 ** (self.snr_db / 10.0))


@dataclass(frozen=True)
class TargetCfrObjective:
    """Minimise distance to a desired channel frequency response.

    The forward form of §2's inverse problem: score a configuration by how
    closely its complex CFR matches the target (negative mean squared
    error, optionally magnitude-only).
    """

    target_cfr: tuple[complex, ...]
    magnitude_only: bool = False

    def __call__(self, cfr: np.ndarray) -> float:
        cfr = np.asarray(cfr, dtype=complex)
        target = np.asarray(self.target_cfr, dtype=complex)
        if cfr.shape != target.shape:
            raise ValueError(f"CFR shape {cfr.shape} != target {target.shape}")
        if self.magnitude_only:
            error = np.abs(cfr) - np.abs(target)
            return float(-np.mean(error**2))
        return float(-np.mean(np.abs(cfr - target) ** 2))


#: Protocol of the joint multi-link scoring modes: an aggregate maps the
#: per-link score vector (shape ``(L,)``) and the per-link weights (shape
#: ``(L,)``, all positive) to one scalar, higher is better.  Used by
#: :class:`repro.core.basis.MultiLinkDeltaEvaluator` and
#: :func:`repro.core.joint.optimize_joint`.
LinkAggregate = Callable[[np.ndarray, np.ndarray], float]


@dataclass(frozen=True)
class WeightedMeanAggregate:
    """Weighted mean of per-link scores (the utilitarian default).

    Matches :meth:`repro.core.joint.JointResult.aggregate_score`, so joint
    optimisation under this aggregate maximises exactly the quantity the
    strategy comparison reports.
    """

    def __call__(self, scores: np.ndarray, weights: np.ndarray) -> float:
        scores = np.asarray(scores, dtype=float)
        weights = np.asarray(weights, dtype=float)
        total = float(np.sum(weights))
        if total <= 0.0:
            raise ValueError(
                f"aggregate weights must sum to a positive total, got {total}"
            )
        return float(np.dot(weights, scores) / total)


@dataclass(frozen=True)
class WorstLinkAggregate:
    """Max-min fairness: the worst link's score drives the joint objective.

    Weights are ignored — a floor is a floor regardless of how much a
    tenant pays for it.  Maximising this aggregate lifts the weakest link,
    the Pareto corner of the §2 joint-optimisation trade-off.
    """

    def __call__(self, scores: np.ndarray, weights: np.ndarray) -> float:
        return float(np.min(np.asarray(scores, dtype=float)))


@dataclass(frozen=True)
class LexicographicAggregate:
    """Leximin scalarisation: worst link first, then second-worst, ...

    Per-link scores are sorted ascending and folded with geometrically
    decaying coefficients ``epsilon**i``, so the worst link dominates and
    each successive rank only breaks ties among configurations whose
    worse-ranked links are (nearly) equal.  ``epsilon`` must be small
    relative to the score differences that matter; the default trades a
    strict lexicographic order for a smooth, searchable scalar.
    """

    epsilon: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")

    def __call__(self, scores: np.ndarray, weights: np.ndarray) -> float:
        ordered = np.sort(np.asarray(scores, dtype=float))
        coefficients = self.epsilon ** np.arange(ordered.size)
        return float(np.dot(coefficients, ordered))


#: Names accepted by :func:`joint_aggregate` (the serve/CLI spelling of the
#: scoring modes).
JOINT_AGGREGATE_NAMES = ("mean", "worst", "lexicographic")


def joint_aggregate(name: str) -> LinkAggregate:
    """Look up a joint scoring mode by its serve/CLI name."""
    if name == "mean":
        return WeightedMeanAggregate()
    if name == "worst":
        return WorstLinkAggregate()
    if name == "lexicographic":
        return LexicographicAggregate()
    raise ValueError(
        f"unknown joint aggregate {name!r}; expected one of {JOINT_AGGREGATE_NAMES}"
    )


@dataclass(frozen=True)
class WeightedObjective:
    """A weighted sum of objectives evaluated on the same measurement."""

    objectives: tuple[Callable, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.objectives) != len(self.weights):
            raise ValueError(
                f"{len(self.objectives)} objectives but {len(self.weights)} weights"
            )
        if len(self.objectives) == 0:
            raise ValueError("need at least one objective")

    def __call__(self, measurement) -> float:
        return float(
            sum(
                weight * objective(measurement)
                for objective, weight in zip(self.objectives, self.weights)
            )
        )
