"""Model-based channel prediction: measure K configurations, predict all M^N.

§2's first actuation task is to "gather all the required wireless channel
information", and its second is to "quickly navigate through an enormous
search space".  Both collapse if the controller exploits the structure of
the PRESS channel: the CFR is *linear* in the element reflection
coefficients,

    H(f; c) = H_env(f) + sum_e U_e(f) * c_e,

so the unknowns are the environment response ``H_env`` and one basis column
``U_e`` per element — N+1 complex vectors, not M^N channels.  Measuring a
handful of configurations with known coefficient vectors lets the
controller solve for those unknowns by least squares and then *predict* the
channel of every other configuration for free, turning the over-the-air
search cost from O(M^N) into O(N).

This is the same identification trick modern RIS channel-estimation papers
use (ON/OFF and DFT switching patterns); here it falls directly out of the
paper's own signal model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .array import PressArray
from .configuration import ArrayConfiguration

__all__ = [
    "coefficient_vector",
    "identification_configurations",
    "LinearChannelModel",
    "fit_channel_model",
    "predict_and_pick",
]


def coefficient_vector(
    array: PressArray,
    configuration: ArrayConfiguration,
    frequency_hz: float,
) -> np.ndarray:
    """Per-element reflection coefficients Gamma_e of a configuration."""
    array.configuration_space().validate(configuration)
    return np.array(
        [
            element.state(index).reflection_coefficient(frequency_hz)
            for element, index in zip(array.elements, configuration.indices)
        ]
    )


def _default_probe_rng() -> np.random.Generator:
    """The documented fixed stream used when no probe rng is threaded.

    Module-level by design: every caller that omits ``rng`` shares one
    well-known schedule, and the seed lives in exactly one place.
    """
    return np.random.default_rng(0)


def identification_configurations(
    array: PressArray,
    extra: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> list[ArrayConfiguration]:
    """A measurement schedule that makes the linear model identifiable.

    Returns the all-terminated configuration (isolating ``H_env``) when the
    hardware has one, plus one configuration per element with only that
    element reflecting (isolating its basis column), plus ``extra`` random
    configurations for noise averaging.  Falls back to random probing when
    the state set has no terminated state.
    """
    if extra < 0:
        raise ValueError(f"extra must be non-negative, got {extra}")
    space = array.configuration_space()
    off_indices = []
    for element in array.elements:
        off = next(
            (i for i, state in enumerate(element.states) if state.is_terminated),
            None,
        )
        off_indices.append(off)
    schedule: list[ArrayConfiguration] = []
    if all(off is not None for off in off_indices):
        base = ArrayConfiguration(tuple(off_indices))
        schedule.append(base)
        for index in range(array.num_elements):
            schedule.append(base.with_element_state(index, 0))
    else:
        # No off state: use N+1 random configurations (generically
        # identifiable because the Gamma vectors differ).
        rng = rng if rng is not None else _default_probe_rng()
        schedule.extend(
            space.random_configuration(rng) for _ in range(array.num_elements + 1)
        )
    if extra:
        rng = rng if rng is not None else _default_probe_rng()
        schedule.extend(space.random_configuration(rng) for _ in range(extra))
    return schedule


@dataclass(frozen=True)
class LinearChannelModel:
    """The identified linear PRESS channel model.

    Attributes
    ----------
    environment_cfr:
        Estimated H_env per subcarrier.
    basis:
        Estimated (num_subcarriers, num_elements) element basis U.
    frequency_hz:
        Carrier used to evaluate element reflection coefficients.
    """

    environment_cfr: np.ndarray
    basis: np.ndarray
    frequency_hz: float

    def predict_cfr(
        self, array: PressArray, configuration: ArrayConfiguration
    ) -> np.ndarray:
        """Predicted complex CFR of a configuration."""
        gammas = coefficient_vector(array, configuration, self.frequency_hz)
        return self.environment_cfr + self.basis @ gammas

    def predict_gain_db(
        self, array: PressArray, configuration: ArrayConfiguration
    ) -> np.ndarray:
        """Predicted per-subcarrier channel gain |H|^2 in dB."""
        cfr = self.predict_cfr(array, configuration)
        return 20.0 * np.log10(np.maximum(np.abs(cfr), 1e-15))


def fit_channel_model(
    array: PressArray,
    configurations: Sequence[ArrayConfiguration],
    measured_cfrs: Sequence[np.ndarray],
    frequency_hz: float,
    regularization: float = 0.0,
) -> LinearChannelModel:
    """Least-squares fit of (H_env, U) from measured configurations.

    Per subcarrier, stacks the linear system ``H_k = H_env + Gamma^T u_k``
    over the measured configurations and solves for the N+1 unknowns
    jointly across all subcarriers (one shared design matrix).

    Parameters
    ----------
    array:
        The array whose states produced the measurements.
    configurations:
        The measured configurations (at least ``num_elements + 1`` with
        linearly independent coefficient vectors).
    measured_cfrs:
        One complex CFR per configuration (same length each).
    frequency_hz:
        Carrier for reflection-coefficient evaluation.
    regularization:
        Optional ridge term for noisy measurements.
    """
    if len(configurations) != len(measured_cfrs):
        raise ValueError(
            f"{len(configurations)} configurations but {len(measured_cfrs)} CFRs"
        )
    num_unknowns = array.num_elements + 1
    if len(configurations) < num_unknowns:
        raise ValueError(
            f"need at least {num_unknowns} measurements to identify the model, "
            f"got {len(configurations)}"
        )
    design = np.ones((len(configurations), num_unknowns), dtype=complex)
    for row, configuration in enumerate(configurations):
        design[row, 1:] = coefficient_vector(array, configuration, frequency_hz)
    observations = np.stack([np.asarray(cfr, dtype=complex) for cfr in measured_cfrs])
    if regularization > 0:
        gram = design.conj().T @ design + regularization * np.eye(num_unknowns)
        solution = np.linalg.solve(gram, design.conj().T @ observations)
    else:
        solution, *_ = np.linalg.lstsq(design, observations, rcond=None)
    return LinearChannelModel(
        environment_cfr=solution[0],
        basis=solution[1:].T,
        frequency_hz=frequency_hz,
    )


def predict_and_pick(
    array: PressArray,
    model: LinearChannelModel,
    objective: Callable[[np.ndarray], float],
    noise_floor_db: float = -200.0,
) -> tuple[ArrayConfiguration, float]:
    """Evaluate the objective on *predicted* channels for every configuration.

    Returns the predicted-best configuration and its predicted score —
    without a single additional over-the-air measurement.  The objective
    receives the predicted per-subcarrier gain in dB (offset-free scores
    like min-over-subcarriers or flatness transfer directly to SNR-based
    objectives up to a constant).
    """
    space = array.configuration_space()
    best: Optional[ArrayConfiguration] = None
    best_score = -np.inf
    for configuration in space.all_configurations():
        gains = np.maximum(model.predict_gain_db(array, configuration), noise_floor_db)
        score = float(objective(gains))
        if score > best_score:
            best, best_score = configuration, score
    assert best is not None
    return best, best_score
