"""Continuous-phase relaxation (§4.2: "the application of convex
optimization").

The discrete M^N switch-state space embeds in a continuous one: let every
element take any unit-magnitude reflection coefficient Gamma_e = e^{j
theta_e}.  Over the identified linear channel model (H = H_env + U Gamma,
see :mod:`repro.core.prediction`) the worst-subcarrier power is a smooth
function of the phases, so projected gradient ascent on a soft-min
surrogate finds a continuous optimum; rounding onto the hardware's discrete
states then gives both a deployable configuration *and* an upper bound that
quantifies what finer phase hardware (§4.1's "continuously-variable phase
shifting hardware") would buy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .array import PressArray
from .configuration import ArrayConfiguration
from .inverse import quantize_to_states
from .prediction import LinearChannelModel

__all__ = ["ContinuousSolution", "optimize_phases", "softmin_power_db"]


def softmin_power_db(cfr: np.ndarray, sharpness: float = 2.0) -> float:
    """Smooth lower envelope of per-subcarrier power in dB.

    A log-sum-exp soft minimum: as ``sharpness`` grows this approaches the
    true min; moderate values keep gradients informative across all
    subcarriers near the null.
    """
    if sharpness <= 0:
        raise ValueError(f"sharpness must be positive, got {sharpness}")
    power_db = 10.0 * np.log10(np.maximum(np.abs(cfr) ** 2, 1e-30))
    scaled = -sharpness * (power_db - power_db.min())
    weights = np.exp(scaled)
    return float(np.sum(weights * power_db) / np.sum(weights))


@dataclass(frozen=True)
class ContinuousSolution:
    """Result of the continuous-phase optimisation.

    Attributes
    ----------
    phases_rad:
        Optimised per-element phases.
    continuous_min_db:
        Worst-subcarrier power (dB) achieved by the continuous phases — an
        upper bound on what any discrete state set can reach.
    configuration:
        The continuous solution rounded onto the array's hardware states.
    quantized_min_db:
        Worst-subcarrier power (dB) predicted for the rounded
        configuration; the gap to ``continuous_min_db`` is the quantisation
        loss of the installed hardware.
    """

    phases_rad: np.ndarray
    continuous_min_db: float
    configuration: ArrayConfiguration
    quantized_min_db: float

    @property
    def quantization_loss_db(self) -> float:
        return self.continuous_min_db - self.quantized_min_db


def optimize_phases(
    array: PressArray,
    model: LinearChannelModel,
    iterations: int = 200,
    step_rad: float = 0.2,
    sharpness: float = 2.0,
    magnitude: float = 1.0,
    initial_phases: Optional[np.ndarray] = None,
    restarts: int = 8,
    seed: int = 0,
) -> ContinuousSolution:
    """Maximise the soft-min subcarrier power over continuous element phases.

    Projected gradient ascent: phases move along the analytic gradient of
    the soft-min surrogate with a backtracking step; magnitudes stay fixed
    at ``magnitude`` (a passive element cannot exceed 1).

    The surrogate is non-convex, so the ascent restarts from ``restarts``
    random phase vectors (plus ``initial_phases`` when given) and keeps the
    best.

    Parameters
    ----------
    array:
        The installed array (supplies the discrete states for rounding).
    model:
        Identified linear channel model (environment + element basis).
    iterations:
        Gradient steps per restart.
    step_rad:
        Initial step size in radians.
    sharpness:
        Soft-min sharpness (see :func:`softmin_power_db`).
    magnitude:
        |Gamma| of every element in the relaxation.
    initial_phases:
        Extra starting point (zeros used when None).
    restarts:
        Number of random restarts.
    seed:
        Seed for the restart draws.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    if not 0.0 < magnitude <= 1.0:
        raise ValueError(f"magnitude must be in (0, 1], got {magnitude}")
    num_elements = array.num_elements
    if model.basis.shape[1] != num_elements:
        raise ValueError(
            f"model has {model.basis.shape[1]} basis columns for "
            f"{num_elements} elements"
        )
    if restarts < 0:
        raise ValueError(f"restarts must be non-negative, got {restarts}")
    first = (
        np.zeros(num_elements)
        if initial_phases is None
        else np.asarray(initial_phases, dtype=float).copy()
    )
    if first.shape != (num_elements,):
        raise ValueError(f"initial_phases must have shape ({num_elements},)")
    rng = np.random.default_rng(seed)
    starts = [first] + [
        rng.uniform(0.0, 2.0 * np.pi, num_elements) for _ in range(restarts)
    ]

    def cfr_for(phases_rad: np.ndarray) -> np.ndarray:
        gammas = magnitude * np.exp(1j * phases_rad)
        return model.environment_cfr + model.basis @ gammas

    def objective(phases_rad: np.ndarray) -> float:
        return softmin_power_db(cfr_for(phases_rad), sharpness)

    def ascend(start: np.ndarray) -> tuple[np.ndarray, float]:
        phases = start.copy()
        step = step_rad
        current = objective(phases)
        for _ in range(iterations):
            cfr = cfr_for(phases)
            power_db = 10.0 * np.log10(np.maximum(np.abs(cfr) ** 2, 1e-30))
            scaled = -sharpness * (power_db - power_db.min())
            weights = np.exp(scaled)
            weights = weights / weights.sum()
            # d(power_db_k)/d(theta_e) =
            #     (20/ln10) * Im[conj(H_k) U_ke Gamma_e] / |H_k|^2
            gammas = magnitude * np.exp(1j * phases)
            numer = np.imag(np.conj(cfr)[:, None] * model.basis * gammas[None, :])
            denom = np.maximum(np.abs(cfr) ** 2, 1e-30)[:, None]
            grad_power = (20.0 / np.log(10.0)) * numer / denom
            # Soft-min gradient: weighted combination (ignoring the weight
            # derivative, a standard and stable approximation).
            gradient = weights @ grad_power
            norm = np.linalg.norm(gradient)
            if norm < 1e-12:
                break
            # Maximise: move along +gradient (normalised step).
            candidate = phases + step * gradient / norm
            value = objective(candidate)
            if value > current:
                phases, current = candidate, value
                step = min(step * 1.2, 0.5)
            else:
                step *= 0.5
                if step < 1e-4:
                    break
        return phases, current

    phases, current = ascend(starts[0])
    for start in starts[1:]:
        other_phases, other = ascend(start)
        if other > current:
            phases, current = other_phases, other
    continuous_min = float(
        np.min(10.0 * np.log10(np.maximum(np.abs(cfr_for(phases)) ** 2, 1e-30)))
    )
    coefficients = magnitude * np.exp(1j * phases)
    configuration = quantize_to_states(coefficients, array, model.frequency_hz)
    quantized_cfr = model.predict_cfr(array, configuration)
    quantized_min = float(
        np.min(10.0 * np.log10(np.maximum(np.abs(quantized_cfr) ** 2, 1e-30)))
    )
    return ContinuousSolution(
        phases_rad=phases,
        continuous_min_db=continuous_min,
        configuration=configuration,
        quantized_min_db=quantized_min,
    )
