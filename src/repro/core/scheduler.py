"""Timing: coherence-time budgets and packet-timescale switching (§2).

"In order for ongoing communication to reap the benefits of the PRESS
array, the latter must perform the above all during the channel coherence
time" — ~80 ms while almost stationary down to ~6 ms at running speed.
"PRESS will very likely reap additional performance benefits from switching
strategies on packet-level timescales of one to two milliseconds."

This module turns those constraints into numbers: how many over-the-air
configuration measurements fit in a coherence window given the control
plane's actuation latency, which search strategy fits the budget, and
whether per-link switching can keep up with a packet schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..constants import ISM_BAND_2G4_HZ
from ..em.channel import coherence_time_s
from .configuration import ArrayConfiguration, ConfigurationSpace
from .basis import MAX_ENUMERABLE_CONFIGS
from .search import (
    ExhaustiveSearch,
    GreedyCoordinateDescent,
    RandomSearch,
    RFocusMajoritySearch,
    Searcher,
    SingleProbeSearch,
)

__all__ = [
    "TimingModel",
    "measurement_budget",
    "pick_searcher",
    "LinkSlot",
    "SwitchingSchedule",
    "packet_timescale_schedule",
]


@dataclass(frozen=True)
class TimingModel:
    """Per-measurement latency budget of the measure->actuate loop.

    Attributes
    ----------
    actuation_latency_s:
        Control-plane time to command the array into a new configuration
        (message transfer + switch settling).  The §3 prototype took ~78 ms
        per configuration (5 s / 64); a wired control plane gets to tens of
        microseconds.
    measurement_time_s:
        Time to sound the channel: one frame (~a few hundred microseconds
        of OFDM symbols) plus CSI extraction.
    decision_overhead_s:
        Controller compute time per iteration.
    """

    actuation_latency_s: float = 100e-6
    measurement_time_s: float = 500e-6
    decision_overhead_s: float = 10e-6

    def __post_init__(self) -> None:
        for name in ("actuation_latency_s", "measurement_time_s", "decision_overhead_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def per_measurement_s(self) -> float:
        """Wall-clock cost of one configuration trial."""
        return (
            self.actuation_latency_s
            + self.measurement_time_s
            + self.decision_overhead_s
        )


def measurement_budget(
    coherence_s: float,
    timing: TimingModel,
    safety_fraction: float = 0.5,
) -> int:
    """Configurations measurable within one coherence window.

    ``safety_fraction`` reserves part of the window so the *chosen*
    configuration still has time to carry useful traffic before the channel
    decorrelates.
    """
    if coherence_s <= 0:
        raise ValueError(f"coherence_s must be positive, got {coherence_s}")
    if not 0.0 < safety_fraction <= 1.0:
        raise ValueError(f"safety_fraction must be in (0, 1], got {safety_fraction}")
    usable = coherence_s * safety_fraction
    if timing.per_measurement_s <= 0:
        return 10**9
    return int(usable / timing.per_measurement_s)


def pick_searcher(
    space: ConfigurationSpace,
    budget: int,
    seed: int = 0,
    current: Optional[ArrayConfiguration] = None,
) -> Searcher:
    """Choose a search strategy that fits a measurement budget.

    * budget >= |space|  -> exhaustive sweep (optimal; what §3.2 does);
    * budget >= one coordinate-descent sweep -> greedy coordinate descent;
    * budget >= 1 -> random sampling of whatever budget remains — except
      on RFocus-scale spaces (> :data:`~repro.core.basis.MAX_ENUMERABLE_CONFIGS`
      configurations), where :class:`RFocusMajoritySearch` sized to the
      budget replaces blind random sampling: its per-element majority
      voting extracts N per-element decisions from each whole-array
      sounding, the only strategy that makes progress when even one
      coordinate-descent sweep exceeds the budget;
    * budget <= 0 -> keep-current single probe (:class:`SingleProbeSearch`).

    The degenerate last case is not an error: ``measurement_budget``
    legitimately returns 0 whenever the coherence window is smaller than
    one measurement (e.g. sub-GHz ISM actuation at running-speed ~6 ms
    coherence), and the documented composition
    ``pick_searcher(space, measurement_budget(...))`` must degrade
    gracefully in exactly that regime instead of raising.  ``current``
    names the configuration to hold; ``None`` holds the all-zeros one.
    """
    if budget <= 0:
        return SingleProbeSearch(
            indices=None if current is None else tuple(current.indices)
        )
    if budget >= space.size:
        return ExhaustiveSearch()
    sweep_cost = sum(count - 1 for count in space.state_counts) + 1
    if budget >= sweep_cost:
        max_sweeps = max(1, budget // max(sweep_cost, 1))
        return GreedyCoordinateDescent(max_sweeps=min(max_sweeps, 4), seed=seed)
    if space.size > MAX_ENUMERABLE_CONFIGS:
        # Budget below one greedy sweep on a space too large to enumerate:
        # spend it on majority-voted whole-array perturbations.  Each round
        # costs perturbations + 1 soundings (the +1 scores the voted
        # candidate).
        perturbations = max(2, min(budget - 1, 24))
        rounds = max(1, budget // (perturbations + 1))
        return RFocusMajoritySearch(
            rounds=rounds, perturbations=perturbations, seed=seed
        )
    return RandomSearch(budget=budget, seed=seed)


@dataclass(frozen=True)
class LinkSlot:
    """One link's turn in a packet-timescale switching schedule."""

    link_name: str
    start_s: float
    duration_s: float
    configuration_rank: int


@dataclass(frozen=True)
class SwitchingSchedule:
    """A periodic per-link PRESS switching plan.

    Attributes
    ----------
    slots:
        The slots of one period, in time order.
    period_s:
        Schedule period.
    feasible:
        Whether the actuation latency fits inside every inter-slot gap.
    num_switches:
        Array reconfigurations per period: slot boundaries (cyclic, so the
        wrap from the last slot back to the first counts) whose
        configuration ranks differ.  Adjacent slots holding the same
        configuration cost nothing — a joint result switches zero times.
    switching_time_per_period_s:
        Actuation time spent per period (``num_switches`` × actuation
        latency) — the switching load a strategy imposes on the array.
    """

    slots: tuple[LinkSlot, ...]
    period_s: float
    feasible: bool
    num_switches: int = 0
    switching_time_per_period_s: float = 0.0


def packet_timescale_schedule(
    link_names: Sequence[str],
    configuration_ranks: Sequence[int],
    slot_duration_s: float = 1.5e-3,
    timing: TimingModel = TimingModel(),
    guard_fraction: float = 0.1,
) -> SwitchingSchedule:
    """Build a round-robin per-link switching schedule (§2's agile extreme).

    Each link gets a slot of 1-2 ms (the packet-level timescale the paper
    cites) during which the array holds that link's preferred configuration;
    a guard interval at the head of each slot absorbs the actuation latency.
    The schedule is infeasible if actuation cannot complete within the
    guard.

    Parameters
    ----------
    link_names:
        One entry per link sharing the array.
    configuration_ranks:
        The array configuration (as a rank in the configuration space) each
        link wants; must align with ``link_names``.
    slot_duration_s:
        Length of each link's slot.
    timing:
        Control-plane timing model.
    guard_fraction:
        Fraction of the slot reserved for reconfiguration.
    """
    if len(link_names) != len(configuration_ranks):
        raise ValueError(
            f"{len(link_names)} links but {len(configuration_ranks)} configurations"
        )
    if len(link_names) == 0:
        raise ValueError("need at least one link")
    if slot_duration_s <= 0:
        raise ValueError(f"slot_duration_s must be positive, got {slot_duration_s}")
    if not 0.0 < guard_fraction < 1.0:
        raise ValueError(f"guard_fraction must be in (0, 1), got {guard_fraction}")
    guard = slot_duration_s * guard_fraction
    feasible = timing.actuation_latency_s <= guard
    slots = []
    for index, (name, rank) in enumerate(zip(link_names, configuration_ranks)):
        slots.append(
            LinkSlot(
                link_name=name,
                start_s=index * slot_duration_s,
                duration_s=slot_duration_s,
                configuration_rank=int(rank),
            )
        )
    ranks = [int(rank) for rank in configuration_ranks]
    if len(ranks) > 1:
        num_switches = sum(
            1
            for index, rank in enumerate(ranks)
            if rank != ranks[(index + 1) % len(ranks)]
        )
    else:
        num_switches = 0
    return SwitchingSchedule(
        slots=tuple(slots),
        period_s=slot_duration_s * len(link_names),
        feasible=feasible,
        num_switches=num_switches,
        switching_time_per_period_s=num_switches * timing.actuation_latency_s,
    )


def coherence_budget_table(
    timing: TimingModel,
    speeds_mph: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 6.0),
    carrier_hz: float = ISM_BAND_2G4_HZ,
) -> list[dict]:
    """Measurement budgets across the §2 mobility range (for reports)."""
    rows = []
    for speed in speeds_mph:
        coherence = coherence_time_s(speed, carrier_hz)
        rows.append(
            {
                "speed_mph": speed,
                "coherence_ms": coherence * 1e3,
                "budget": measurement_budget(coherence, timing),
            }
        )
    return rows
