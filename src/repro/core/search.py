"""Search strategies over the PRESS configuration space.

§4.2 ("Navigating the search space"): "With N PRESS elements, each having M
possible reflection coefficients, enumerating the M^N possibilities in the
search space for the optimal configuration becomes impractical."  The
prototype's 64-configuration space is exhaustively enumerable; deployments
are not.  This module implements the exhaustive baseline and the pruning
heuristics the paper gestures at, all against a common interface: a
``score(configuration) -> float`` callable (higher is better), with every
call counted — because over-the-air channel measurements are the scarce
resource under the coherence-time budget (§2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..obs.metrics import counter_handle
from .configuration import ArrayConfiguration, ConfigurationSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .basis import ChannelBasis, DeltaEvaluator

__all__ = [
    "SearchResult",
    "Searcher",
    "ExhaustiveSearch",
    "SingleProbeSearch",
    "RandomSearch",
    "GreedyCoordinateDescent",
    "RFocusMajoritySearch",
    "SimulatedAnnealing",
    "GeneticSearch",
]

ScoreFunction = Callable[[ArrayConfiguration], float]

_FLIPS = counter_handle("search.flips")
_ROUNDS = counter_handle("search.rounds")


@dataclass
class SearchResult:
    """Outcome of a configuration search.

    Attributes
    ----------
    best:
        Best configuration found.
    best_score:
        Its objective value.
    num_evaluations:
        Number of ``score`` calls — i.e. over-the-air measurements used.
    trajectory:
        Best-so-far score after each evaluation (for convergence plots).
    """

    best: ArrayConfiguration
    best_score: float
    num_evaluations: int
    trajectory: list[float] = field(default_factory=list)


class _CountingScore:
    """Wraps a score function, counting and memoising evaluations.

    Memoisation reflects reality: a controller that has already measured a
    configuration within the coherence time need not measure it again.
    """

    def __init__(self, score: ScoreFunction) -> None:
        self._score = score
        self._cache: dict[tuple[int, ...], float] = {}
        self.num_evaluations = 0
        self.trajectory: list[float] = []
        self._best = -math.inf

    def __call__(self, configuration: ArrayConfiguration) -> float:
        key = configuration.indices
        if key in self._cache:
            return self._cache[key]
        value = float(self._score(configuration))
        self._cache[key] = value
        self.num_evaluations += 1
        self._best = max(self._best, value)
        self.trajectory.append(self._best)
        return value


@dataclass(frozen=True)
class Searcher:
    """Base class: concrete searchers implement :meth:`run`."""

    def search(self, space: ConfigurationSpace, score: ScoreFunction) -> SearchResult:
        """Run the search with evaluation counting and memoisation."""
        counting = _CountingScore(score)
        best, best_score = self.run(space, counting)
        return SearchResult(
            best=best,
            best_score=best_score,
            num_evaluations=counting.num_evaluations,
            trajectory=counting.trajectory,
        )

    def search_basis(
        self,
        basis: "ChannelBasis",
        objective: Callable[[np.ndarray], float],
        tx_power_dbm: float = 15.0,
        noise_figure_db: float = 7.0,
        mask: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """Run the search against a precomputed channel basis.

        Every objective evaluation becomes an O(K) numpy gather + sum over
        the basis state tensor (zero re-tracing), so all searchers —
        exhaustive, greedy, annealing, genetic, ... — run at numpy speed.
        Works with any objective over per-subcarrier SNR (dB), exactly as
        the measurement-backed score functions do.

        Searchers that implement :meth:`run_delta` (the scalable ones)
        additionally route through a :class:`~repro.core.basis.DeltaEvaluator`
        here, scoring configurations by O(K) per-element delta updates —
        per-flip cost independent of N — instead of re-summing all N
        element contributions per candidate.  The generic callback path
        (:meth:`search`) is untouched: controllers driving real
        measurements still go through it.

        **Reentrancy.** Every call builds its own evaluator (and delta
        scorer) over the immutable basis arrays; no state is shared
        between calls beyond the searcher's constructor parameters.
        Seeded searchers draw from the RNG created at construction, so
        one *instance* is not safely shareable across concurrent calls —
        callers that serve searches concurrently (the serving layer, the
        parallel runner) construct a fresh searcher per request via
        :func:`make_searcher` and get deterministic, isolated runs.
        """
        evaluator = basis.evaluator(
            objective,
            tx_power_dbm=tx_power_dbm,
            noise_figure_db=noise_figure_db,
            mask=mask,
        )
        if self.uses_delta:
            delta = evaluator.delta()
            best, best_score = self.run_delta(delta)
            return SearchResult(
                best=best,
                best_score=best_score,
                num_evaluations=delta.num_scores,
                trajectory=delta.trajectory,
            )
        return self.search(basis.space, evaluator)

    #: Searchers that implement :meth:`run_delta` set this true; it routes
    #: :meth:`search_basis` through the incremental scorer.
    uses_delta = False

    def run_delta(
        self, delta: "DeltaEvaluator"
    ) -> tuple[ArrayConfiguration, float]:  # pragma: no cover - interface
        raise NotImplementedError

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        raise NotImplementedError


@dataclass(frozen=True)
class ExhaustiveSearch(Searcher):
    """Measure every configuration (the §3.2 sweep; optimal but O(M^N))."""

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        best: Optional[ArrayConfiguration] = None
        best_score = -math.inf
        for configuration in space.all_configurations():
            value = score(configuration)
            if value > best_score:
                best, best_score = configuration, value
        assert best is not None  # space is never empty
        return best, best_score


@dataclass(frozen=True)
class SingleProbeSearch(Searcher):
    """The degenerate budget strategy: keep (and measure) one configuration.

    When the coherence window is smaller than a single measurement —
    §2's running-speed regime over a slow control plane — there is no
    budget to explore.  The only sound move is to keep the current
    configuration and spend the one affordable sounding confirming its
    score, so the controller still tracks the objective trajectory without
    ever raising.  ``indices=None`` probes the all-zeros configuration.
    """

    indices: Optional[tuple[int, ...]] = None

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        if self.indices is None:
            probe = ArrayConfiguration(tuple([0] * space.num_elements))
        else:
            probe = ArrayConfiguration(tuple(self.indices))
        space.validate(probe)
        return probe, score(probe)


@dataclass(frozen=True)
class RandomSearch(Searcher):
    """Uniformly sample a measurement budget's worth of configurations."""

    budget: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        best: Optional[ArrayConfiguration] = None
        best_score = -math.inf
        for _ in range(self.budget):
            configuration = space.random_configuration(rng)
            value = score(configuration)
            if value > best_score:
                best, best_score = configuration, value
        assert best is not None
        return best, best_score


@dataclass(frozen=True)
class GreedyCoordinateDescent(Searcher):
    """Optimise one element at a time, sweeping until a fixed point.

    Uses N*(M-1) measurements per sweep instead of M^N — the natural
    "focus the search" heuristic for a switch-per-element architecture.
    Random restarts escape poor local optima.

    Against a channel basis (:meth:`Searcher.search_basis`) the sweep runs
    on a :class:`~repro.core.basis.DeltaEvaluator`: each element's M
    candidate states are scored in one vectorized batch from the running
    element sum, so a full sweep costs O(N*M*K) total instead of
    O(N^2*M*K) — per-candidate cost independent of array size.
    """

    max_sweeps: int = 4
    restarts: int = 1
    seed: int = 0

    uses_delta = True

    def __post_init__(self) -> None:
        if self.max_sweeps <= 0:
            raise ValueError(f"max_sweeps must be positive, got {self.max_sweeps}")
        if self.restarts <= 0:
            raise ValueError(f"restarts must be positive, got {self.restarts}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        best: Optional[ArrayConfiguration] = None
        best_score = -math.inf
        for restart in range(self.restarts):
            if restart == 0:
                current = ArrayConfiguration(tuple([0] * space.num_elements))
            else:
                current = space.random_configuration(rng)
            current_score = score(current)
            for _ in range(self.max_sweeps):
                improved = False
                for element in range(space.num_elements):
                    for state in range(space.state_counts[element]):
                        if state == current.indices[element]:
                            continue
                        candidate = current.with_element_state(element, state)
                        value = score(candidate)
                        if value > current_score:
                            current, current_score = candidate, value
                            improved = True
                if not improved:
                    break
            if current_score > best_score:
                best, best_score = current, current_score
        assert best is not None
        return best, best_score

    def run_delta(
        self, delta: "DeltaEvaluator"
    ) -> tuple[ArrayConfiguration, float]:
        """Coordinate descent over the incremental scorer.

        Same acceptance semantics as :meth:`run` — an element moves to the
        best strictly-improving state (first index wins ties) — but each
        element's candidates are scored in one batched
        :meth:`~repro.core.basis.DeltaEvaluator.scores_for_element` call.
        """
        rng = np.random.default_rng(self.seed)
        space = delta.space
        best: Optional[ArrayConfiguration] = None
        best_score = -math.inf
        for restart in range(self.restarts):
            if restart == 0:
                start = ArrayConfiguration(tuple([0] * space.num_elements))
            else:
                start = space.random_configuration(rng)
            delta.set_configuration(start)
            delta.commit()
            current_score = delta.score
            for _ in range(self.max_sweeps):
                _ROUNDS.inc()
                improved = False
                for element in range(space.num_elements):
                    scores = delta.scores_for_element(element)
                    candidate = int(np.argmax(scores))
                    held = int(delta.configuration.indices[element])
                    if candidate != held and scores[candidate] > current_score:
                        current_score = delta.flip(element, candidate)
                        delta.commit()
                        _FLIPS.inc()
                        improved = True
                if not improved:
                    break
            if current_score > best_score:
                best, best_score = delta.configuration, current_score
        assert best is not None
        return best, best_score


@dataclass(frozen=True)
class RFocusMajoritySearch(Searcher):
    """Randomized perturbation + per-element majority voting (RFocus).

    The search RFocus (arXiv:1905.05130) runs on ~3,000-element surfaces:
    each round draws random multi-element perturbations of the current
    configuration, scores each whole perturbation with a single sounding,
    and then each element "votes" — it moves to the state whose probes
    averaged the highest score.  No per-element measurement is ever taken,
    so a round costs ``perturbations`` soundings regardless of N, and the
    per-element statistics converge because every element's states are
    (randomly) exercised across the batch.

    Only meaningful against a channel basis (it is delta-powered); the
    candidate configuration produced by a vote is adopted only if it
    actually improves the committed score, otherwise the round is rolled
    back and ``patience`` counts down to early exit.

    Parameters
    ----------
    rounds:
        Maximum voting rounds.
    perturbations:
        Random probes scored per round (1 sounding each).
    flip_fraction:
        Expected fraction of elements randomized per probe.
    patience:
        Consecutive non-improving rounds tolerated before stopping.
    """

    rounds: int = 12
    perturbations: int = 24
    flip_fraction: float = 0.5
    patience: int = 2
    seed: int = 0

    uses_delta = True

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError(f"rounds must be positive, got {self.rounds}")
        if self.perturbations <= 0:
            raise ValueError(
                f"perturbations must be positive, got {self.perturbations}"
            )
        if not 0.0 < self.flip_fraction <= 1.0:
            raise ValueError(
                f"flip_fraction must be in (0, 1], got {self.flip_fraction}"
            )
        if self.patience <= 0:
            raise ValueError(f"patience must be positive, got {self.patience}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        """Callback-scored variant (for measurement-backed controllers).

        Draws the same RNG stream and makes the same decisions as
        :meth:`run_delta`; each whole-array perturbation costs one
        ``score`` call, so the per-round sounding budget is
        ``perturbations + 1`` regardless of N.
        """
        rng = np.random.default_rng(self.seed)
        num_elements = space.num_elements
        state_counts = np.array(space.state_counts, dtype=np.intp)
        max_states = int(state_counts.max())
        current = np.zeros(num_elements, dtype=np.intp)
        current_score = score(ArrayConfiguration(tuple([0] * num_elements)))
        stale = 0
        rows = np.arange(num_elements)
        for _ in range(self.rounds):
            _ROUNDS.inc()
            score_sums = np.zeros((num_elements, max_states))
            probe_counts = np.zeros((num_elements, max_states))
            for _ in range(self.perturbations):
                mask = rng.random(num_elements) < self.flip_fraction
                random_states = rng.integers(0, state_counts)
                probe = np.where(mask, random_states, current)
                value = score(ArrayConfiguration(tuple(int(s) for s in probe)))
                score_sums[rows, probe] += value
                probe_counts[rows, probe] += 1.0
            sampled = probe_counts > 0
            means = np.full((num_elements, max_states), -math.inf)
            means[sampled] = score_sums[sampled] / probe_counts[sampled]
            voted = np.argmax(means, axis=1)
            if np.array_equal(voted, current):
                stale += 1
                if stale >= self.patience:
                    break
                continue
            value = score(ArrayConfiguration(tuple(int(s) for s in voted)))
            if value > current_score:
                _FLIPS.inc(int((voted != current).sum()))
                current = voted.copy()
                current_score = value
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        return ArrayConfiguration(tuple(int(s) for s in current)), current_score

    def run_delta(
        self, delta: "DeltaEvaluator"
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        space = delta.space
        num_elements = space.num_elements
        state_counts = np.array(space.state_counts, dtype=np.intp)
        max_states = int(state_counts.max())
        delta.commit()
        current = np.array(delta.committed_configuration.indices, dtype=np.intp)
        current_score = delta.score
        stale = 0
        for _ in range(self.rounds):
            _ROUNDS.inc()
            score_sums = np.zeros((num_elements, max_states))
            probe_counts = np.zeros((num_elements, max_states))
            rows = np.arange(num_elements)
            for _ in range(self.perturbations):
                mask = rng.random(num_elements) < self.flip_fraction
                random_states = rng.integers(0, state_counts)
                probe = np.where(mask, random_states, current)
                value = delta.flip_many(rows[mask], random_states[mask])
                score_sums[rows, probe] += value
                probe_counts[rows, probe] += 1.0
                delta.revert()
            # Majority vote: each element independently adopts the state
            # whose probes scored best on average (unsampled states and
            # index padding past an element's state count never win).
            sampled = probe_counts > 0
            means = np.full((num_elements, max_states), -math.inf)
            means[sampled] = score_sums[sampled] / probe_counts[sampled]
            voted = np.argmax(means, axis=1)
            changed = voted != current
            value = delta.flip_many(rows[changed], voted[changed])
            if value > current_score:
                delta.commit()
                _FLIPS.inc(int(changed.sum()))
                current = voted
                current_score = value
                stale = 0
            else:
                delta.revert()
                stale += 1
                if stale >= self.patience:
                    break
        return delta.committed_configuration, current_score


@dataclass(frozen=True)
class SimulatedAnnealing(Searcher):
    """Metropolis search over single-element moves with a geometric schedule."""

    budget: int = 128
    initial_temperature: float = 3.0
    cooling: float = 0.97
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.initial_temperature <= 0:
            raise ValueError(
                f"initial_temperature must be positive, got {self.initial_temperature}"
            )
        if not 0.0 < self.cooling < 1.0:
            raise ValueError(f"cooling must be in (0, 1), got {self.cooling}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        current = space.random_configuration(rng)
        current_score = score(current)
        best, best_score = current, current_score
        temperature = self.initial_temperature
        for _ in range(self.budget - 1):
            element = int(rng.integers(0, space.num_elements))
            state = int(rng.integers(0, space.state_counts[element]))
            candidate = current.with_element_state(element, state)
            value = score(candidate)
            accept = value >= current_score or rng.random() < math.exp(
                (value - current_score) / temperature
            )
            if accept:
                current, current_score = candidate, value
            if value > best_score:
                best, best_score = candidate, value
            temperature *= self.cooling
        return best, best_score


@dataclass(frozen=True)
class GeneticSearch(Searcher):
    """A small genetic algorithm: tournament selection, uniform crossover,
    per-element mutation.

    Suits very large arrays where coordinate descent's N*(M-1) sweep already
    exceeds the measurement budget.
    """

    population: int = 12
    generations: int = 8
    mutation_rate: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be >= 2, got {self.population}")
        if self.generations <= 0:
            raise ValueError(f"generations must be positive, got {self.generations}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {self.mutation_rate}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        population = [space.random_configuration(rng) for _ in range(self.population)]
        scores = [score(individual) for individual in population]
        best_index = int(np.argmax(scores))
        best, best_score = population[best_index], scores[best_index]
        for _ in range(self.generations):
            next_population = [best]  # elitism
            while len(next_population) < self.population:
                parent_a = self._tournament(population, scores, rng)
                parent_b = self._tournament(population, scores, rng)
                child_indices = [
                    a if rng.random() < 0.5 else b
                    for a, b in zip(parent_a.indices, parent_b.indices)
                ]
                for element in range(space.num_elements):
                    if rng.random() < self.mutation_rate:
                        child_indices[element] = int(
                            rng.integers(0, space.state_counts[element])
                        )
                next_population.append(ArrayConfiguration(tuple(child_indices)))
            population = next_population
            scores = [score(individual) for individual in population]
            generation_best = int(np.argmax(scores))
            if scores[generation_best] > best_score:
                best, best_score = population[generation_best], scores[generation_best]
        return best, best_score

    @staticmethod
    def _tournament(
        population: list[ArrayConfiguration],
        scores: list[float],
        rng: np.random.Generator,
        size: int = 3,
    ) -> ArrayConfiguration:
        picks = rng.integers(0, len(population), size=min(size, len(population)))
        winner = max(picks, key=lambda index: scores[int(index)])
        return population[int(winner)]
