"""Search strategies over the PRESS configuration space.

§4.2 ("Navigating the search space"): "With N PRESS elements, each having M
possible reflection coefficients, enumerating the M^N possibilities in the
search space for the optimal configuration becomes impractical."  The
prototype's 64-configuration space is exhaustively enumerable; deployments
are not.  This module implements the exhaustive baseline and the pruning
heuristics the paper gestures at, all against a common interface: a
``score(configuration) -> float`` callable (higher is better), with every
call counted — because over-the-air channel measurements are the scarce
resource under the coherence-time budget (§2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from .configuration import ArrayConfiguration, ConfigurationSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .basis import ChannelBasis

__all__ = [
    "SearchResult",
    "Searcher",
    "ExhaustiveSearch",
    "SingleProbeSearch",
    "RandomSearch",
    "GreedyCoordinateDescent",
    "SimulatedAnnealing",
    "GeneticSearch",
]

ScoreFunction = Callable[[ArrayConfiguration], float]


@dataclass
class SearchResult:
    """Outcome of a configuration search.

    Attributes
    ----------
    best:
        Best configuration found.
    best_score:
        Its objective value.
    num_evaluations:
        Number of ``score`` calls — i.e. over-the-air measurements used.
    trajectory:
        Best-so-far score after each evaluation (for convergence plots).
    """

    best: ArrayConfiguration
    best_score: float
    num_evaluations: int
    trajectory: list[float] = field(default_factory=list)


class _CountingScore:
    """Wraps a score function, counting and memoising evaluations.

    Memoisation reflects reality: a controller that has already measured a
    configuration within the coherence time need not measure it again.
    """

    def __init__(self, score: ScoreFunction) -> None:
        self._score = score
        self._cache: dict[tuple[int, ...], float] = {}
        self.num_evaluations = 0
        self.trajectory: list[float] = []
        self._best = -math.inf

    def __call__(self, configuration: ArrayConfiguration) -> float:
        key = configuration.indices
        if key in self._cache:
            return self._cache[key]
        value = float(self._score(configuration))
        self._cache[key] = value
        self.num_evaluations += 1
        self._best = max(self._best, value)
        self.trajectory.append(self._best)
        return value


@dataclass(frozen=True)
class Searcher:
    """Base class: concrete searchers implement :meth:`run`."""

    def search(self, space: ConfigurationSpace, score: ScoreFunction) -> SearchResult:
        """Run the search with evaluation counting and memoisation."""
        counting = _CountingScore(score)
        best, best_score = self.run(space, counting)
        return SearchResult(
            best=best,
            best_score=best_score,
            num_evaluations=counting.num_evaluations,
            trajectory=counting.trajectory,
        )

    def search_basis(
        self,
        basis: "ChannelBasis",
        objective: Callable[[np.ndarray], float],
        tx_power_dbm: float = 15.0,
        noise_figure_db: float = 7.0,
        mask: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """Run the search against a precomputed channel basis.

        Every objective evaluation becomes an O(K) numpy gather + sum over
        the basis state tensor (zero re-tracing), so all searchers —
        exhaustive, greedy, annealing, genetic, ... — run at numpy speed.
        Works with any objective over per-subcarrier SNR (dB), exactly as
        the measurement-backed score functions do.
        """
        evaluator = basis.evaluator(
            objective,
            tx_power_dbm=tx_power_dbm,
            noise_figure_db=noise_figure_db,
            mask=mask,
        )
        return self.search(basis.space, evaluator)

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        raise NotImplementedError


@dataclass(frozen=True)
class ExhaustiveSearch(Searcher):
    """Measure every configuration (the §3.2 sweep; optimal but O(M^N))."""

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        best: Optional[ArrayConfiguration] = None
        best_score = -math.inf
        for configuration in space.all_configurations():
            value = score(configuration)
            if value > best_score:
                best, best_score = configuration, value
        assert best is not None  # space is never empty
        return best, best_score


@dataclass(frozen=True)
class SingleProbeSearch(Searcher):
    """The degenerate budget strategy: keep (and measure) one configuration.

    When the coherence window is smaller than a single measurement —
    §2's running-speed regime over a slow control plane — there is no
    budget to explore.  The only sound move is to keep the current
    configuration and spend the one affordable sounding confirming its
    score, so the controller still tracks the objective trajectory without
    ever raising.  ``indices=None`` probes the all-zeros configuration.
    """

    indices: Optional[tuple[int, ...]] = None

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        if self.indices is None:
            probe = ArrayConfiguration(tuple([0] * space.num_elements))
        else:
            probe = ArrayConfiguration(tuple(self.indices))
        space.validate(probe)
        return probe, score(probe)


@dataclass(frozen=True)
class RandomSearch(Searcher):
    """Uniformly sample a measurement budget's worth of configurations."""

    budget: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        best: Optional[ArrayConfiguration] = None
        best_score = -math.inf
        for _ in range(self.budget):
            configuration = space.random_configuration(rng)
            value = score(configuration)
            if value > best_score:
                best, best_score = configuration, value
        assert best is not None
        return best, best_score


@dataclass(frozen=True)
class GreedyCoordinateDescent(Searcher):
    """Optimise one element at a time, sweeping until a fixed point.

    Uses N*(M-1) measurements per sweep instead of M^N — the natural
    "focus the search" heuristic for a switch-per-element architecture.
    Random restarts escape poor local optima.
    """

    max_sweeps: int = 4
    restarts: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_sweeps <= 0:
            raise ValueError(f"max_sweeps must be positive, got {self.max_sweeps}")
        if self.restarts <= 0:
            raise ValueError(f"restarts must be positive, got {self.restarts}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        best: Optional[ArrayConfiguration] = None
        best_score = -math.inf
        for restart in range(self.restarts):
            if restart == 0:
                current = ArrayConfiguration(tuple([0] * space.num_elements))
            else:
                current = space.random_configuration(rng)
            current_score = score(current)
            for _ in range(self.max_sweeps):
                improved = False
                for element in range(space.num_elements):
                    for state in range(space.state_counts[element]):
                        if state == current.indices[element]:
                            continue
                        candidate = current.with_element_state(element, state)
                        value = score(candidate)
                        if value > current_score:
                            current, current_score = candidate, value
                            improved = True
                if not improved:
                    break
            if current_score > best_score:
                best, best_score = current, current_score
        assert best is not None
        return best, best_score


@dataclass(frozen=True)
class SimulatedAnnealing(Searcher):
    """Metropolis search over single-element moves with a geometric schedule."""

    budget: int = 128
    initial_temperature: float = 3.0
    cooling: float = 0.97
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.initial_temperature <= 0:
            raise ValueError(
                f"initial_temperature must be positive, got {self.initial_temperature}"
            )
        if not 0.0 < self.cooling < 1.0:
            raise ValueError(f"cooling must be in (0, 1), got {self.cooling}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        current = space.random_configuration(rng)
        current_score = score(current)
        best, best_score = current, current_score
        temperature = self.initial_temperature
        for _ in range(self.budget - 1):
            element = int(rng.integers(0, space.num_elements))
            state = int(rng.integers(0, space.state_counts[element]))
            candidate = current.with_element_state(element, state)
            value = score(candidate)
            accept = value >= current_score or rng.random() < math.exp(
                (value - current_score) / temperature
            )
            if accept:
                current, current_score = candidate, value
            if value > best_score:
                best, best_score = candidate, value
            temperature *= self.cooling
        return best, best_score


@dataclass(frozen=True)
class GeneticSearch(Searcher):
    """A small genetic algorithm: tournament selection, uniform crossover,
    per-element mutation.

    Suits very large arrays where coordinate descent's N*(M-1) sweep already
    exceeds the measurement budget.
    """

    population: int = 12
    generations: int = 8
    mutation_rate: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be >= 2, got {self.population}")
        if self.generations <= 0:
            raise ValueError(f"generations must be positive, got {self.generations}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0, 1], got {self.mutation_rate}")

    def run(
        self, space: ConfigurationSpace, score: ScoreFunction
    ) -> tuple[ArrayConfiguration, float]:
        rng = np.random.default_rng(self.seed)
        population = [space.random_configuration(rng) for _ in range(self.population)]
        scores = [score(individual) for individual in population]
        best_index = int(np.argmax(scores))
        best, best_score = population[best_index], scores[best_index]
        for _ in range(self.generations):
            next_population = [best]  # elitism
            while len(next_population) < self.population:
                parent_a = self._tournament(population, scores, rng)
                parent_b = self._tournament(population, scores, rng)
                child_indices = [
                    a if rng.random() < 0.5 else b
                    for a, b in zip(parent_a.indices, parent_b.indices)
                ]
                for element in range(space.num_elements):
                    if rng.random() < self.mutation_rate:
                        child_indices[element] = int(
                            rng.integers(0, space.state_counts[element])
                        )
                next_population.append(ArrayConfiguration(tuple(child_indices)))
            population = next_population
            scores = [score(individual) for individual in population]
            generation_best = int(np.argmax(scores))
            if scores[generation_best] > best_score:
                best, best_score = population[generation_best], scores[generation_best]
        return best, best_score

    @staticmethod
    def _tournament(
        population: list[ArrayConfiguration],
        scores: list[float],
        rng: np.random.Generator,
        size: int = 3,
    ) -> ArrayConfiguration:
        picks = rng.integers(0, len(population), size=min(size, len(population)))
        winner = max(picks, key=lambda index: scores[int(index)])
        return population[int(winner)]
