"""Multi-tenant admission control over one shared programmable environment.

The ROADMAP's multi-user item (grounded in Liaskos et al.,
arXiv:1812.11429) asks for a controller that serves many concurrent user
pairs over one PRESS array and degrades gracefully as user count climbs.
This module is that controller: tenants (links) arrive one at a time, and
a newcomer is admitted only if a re-optimised shared environment keeps
*every* link — incumbents and newcomer alike — above its per-link SNR
floor.

Admission runs the §2 strategy spectrum in escalation order:

1. **joint** — re-optimise one shared configuration over all candidate
   links (zero switching).  If every floor holds, admit.
2. **re-cluster (hybrid)** — if the joint optimum starves someone, fall
   back to greedy clustering: compatible links share configurations, the
   rest get their own slot in the packet-timescale switching schedule.
   If every floor now holds, admit with the clustered plan.
3. **reject** — otherwise the newcomer is refused and the incumbents keep
   their previous plan untouched.

Every decision is observable through ``joint.*`` counters and the
``joint.active_links`` gauge, and the controller tracks exact cumulative
sounding costs via :attr:`MultiTenantController.total_measurements`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..obs.metrics import counter_handle, gauge_handle
from .configuration import ConfigurationSpace
from .joint import (
    BasisLink,
    JointResult,
    LinkObjective,
    optimize_hybrid,
    optimize_joint,
)
from .search import ExhaustiveSearch, Searcher

__all__ = [
    "AdmissionDecision",
    "MultiTenantController",
    "TenancySnapshot",
    "TenantLink",
]

Link = Union[LinkObjective, BasisLink]
LinkAggregate = Callable[[np.ndarray, np.ndarray], float]

_ADMISSIONS = counter_handle("joint.admissions")
_REJECTIONS = counter_handle("joint.rejections")
_RECLUSTERS = counter_handle("joint.reclusters")
_OPTIMIZATIONS = counter_handle("joint.optimizations")
_RELEASES = counter_handle("joint.releases")
_ACTIVE_LINKS = gauge_handle("joint.active_links")


@dataclass(frozen=True)
class TenantLink:
    """One tenant: a link plus the SNR floor its admission guarantees."""

    link: Link
    snr_floor_db: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.snr_floor_db):
            raise ValueError(
                f"link {self.link.name!r} snr_floor_db must be finite, "
                f"got {self.snr_floor_db}"
            )

    @property
    def name(self) -> str:
        return self.link.name


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`MultiTenantController.admit` call.

    Attributes
    ----------
    admitted:
        Whether the newcomer is now served.
    strategy:
        The plan in force after the decision: "joint" or "hybrid" when
        admitted, the incumbents' unchanged strategy (or "" when there is
        no plan) on rejection.
    result:
        The plan in force after the decision (``None`` before any
        admission succeeds).
    reclustered:
        True when the joint optimum violated a floor and the hybrid
        fallback was what admitted the link.
    violations:
        Links whose floors the *final attempted* plan violated — empty on
        admission, the starved links on rejection.
    num_measurements:
        Soundings this decision spent (joint attempt plus, if taken, the
        re-cluster attempt).
    """

    admitted: bool
    strategy: str
    result: Optional[JointResult]
    reclustered: bool
    violations: tuple[str, ...]
    num_measurements: int


@dataclass(frozen=True)
class TenancySnapshot:
    """Read-only view of the controller's current serving state."""

    link_names: tuple[str, ...]
    strategy: str
    floors_db: dict[str, float]
    per_link_scores: dict[str, float]
    num_distinct_configurations: int
    total_measurements: int


def _floor_violations(
    result: JointResult, tenants: Sequence[TenantLink]
) -> tuple[str, ...]:
    return tuple(
        tenant.name
        for tenant in tenants
        if result.per_link_scores[tenant.name] < tenant.snr_floor_db
    )


class MultiTenantController:
    """Floor-guarded admission control over the joint/hybrid strategies.

    Parameters
    ----------
    searcher:
        Strategy used by every re-optimisation.  Delta-capable searchers
        (:class:`~repro.core.search.GreedyCoordinateDescent`,
        :class:`~repro.core.search.RFocusMajoritySearch`) let admission
        run on wall-sized arrays when the tenants are
        :class:`~repro.core.joint.BasisLink`\\ s.
    tolerance:
        Hybrid clustering tolerance (score a link may concede to join an
        existing cluster) for the re-cluster fallback.
    aggregate:
        Joint scoring mode (:mod:`repro.core.objectives` aggregates);
        ``None`` is the weighted mean.
    space:
        Configuration space; required for callback-measured links,
        inferred from the bases otherwise.
    """

    def __init__(
        self,
        searcher: Searcher = ExhaustiveSearch(),
        tolerance: float = 1.0,
        aggregate: Optional[LinkAggregate] = None,
        space: Optional[ConfigurationSpace] = None,
    ) -> None:
        self._searcher = searcher
        self._tolerance = tolerance
        self._aggregate = aggregate
        self._space = space
        self._tenants: list[TenantLink] = []
        self._result: Optional[JointResult] = None
        self.total_measurements = 0

    # -- state views ----------------------------------------------------
    @property
    def num_links(self) -> int:
        return len(self._tenants)

    @property
    def link_names(self) -> tuple[str, ...]:
        return tuple(tenant.name for tenant in self._tenants)

    @property
    def result(self) -> Optional[JointResult]:
        """The plan currently serving the admitted links."""
        return self._result

    def snapshot(self) -> TenancySnapshot:
        return TenancySnapshot(
            link_names=self.link_names,
            strategy="" if self._result is None else self._result.strategy,
            floors_db={t.name: t.snr_floor_db for t in self._tenants},
            per_link_scores=(
                {} if self._result is None else dict(self._result.per_link_scores)
            ),
            num_distinct_configurations=(
                0
                if self._result is None
                else self._result.num_distinct_configurations
            ),
            total_measurements=self.total_measurements,
        )

    # -- admission ------------------------------------------------------
    def admit(self, link: Link, snr_floor_db: float) -> AdmissionDecision:
        """Try to admit one link without starving any incumbent.

        Re-optimises jointly over incumbents + newcomer; if any link
        (including the newcomer) lands below its floor, re-clusters via
        the hybrid strategy; if floors still fail, rejects — incumbents
        keep their previous plan and the newcomer is not served.
        """
        tenant = TenantLink(link=link, snr_floor_db=snr_floor_db)
        if any(existing.name == tenant.name for existing in self._tenants):
            raise ValueError(f"link {tenant.name!r} is already admitted")
        candidates = [*self._tenants, tenant]
        links = [candidate.link for candidate in candidates]

        _OPTIMIZATIONS.inc()
        joint = optimize_joint(
            links,
            self._space,
            self._searcher,
            aggregate=self._aggregate,
        )
        spent = joint.num_measurements
        violations = _floor_violations(joint, candidates)
        if not violations:
            self._accept(candidates, joint, spent)
            _ADMISSIONS.inc()
            return AdmissionDecision(
                admitted=True,
                strategy=joint.strategy,
                result=joint,
                reclustered=False,
                violations=(),
                num_measurements=spent,
            )

        # Conflict detected: one shared configuration starves someone.
        # Re-cluster — compatible links share, the rest switch.
        _RECLUSTERS.inc()
        _OPTIMIZATIONS.inc()
        hybrid = optimize_hybrid(
            links,
            self._space,
            self._searcher,
            tolerance=self._tolerance,
        )
        spent += hybrid.num_measurements
        violations = _floor_violations(hybrid, candidates)
        if not violations:
            self._accept(candidates, hybrid, spent)
            _ADMISSIONS.inc()
            return AdmissionDecision(
                admitted=True,
                strategy=hybrid.strategy,
                result=hybrid,
                reclustered=True,
                violations=(),
                num_measurements=spent,
            )

        _REJECTIONS.inc()
        self.total_measurements += spent
        return AdmissionDecision(
            admitted=False,
            strategy="" if self._result is None else self._result.strategy,
            result=self._result,
            reclustered=True,
            violations=violations,
            num_measurements=spent,
        )

    def release(self, name: str) -> Optional[JointResult]:
        """Drop one link and re-optimise the remaining tenants jointly."""
        remaining = [t for t in self._tenants if t.name != name]
        if len(remaining) == len(self._tenants):
            raise KeyError(f"link {name!r} is not admitted")
        _RELEASES.inc()
        if not remaining:
            self._tenants = []
            self._result = None
            _ACTIVE_LINKS.set(0)
            return None
        _OPTIMIZATIONS.inc()
        joint = optimize_joint(
            [t.link for t in remaining],
            self._space,
            self._searcher,
            aggregate=self._aggregate,
        )
        self._accept(remaining, joint, joint.num_measurements)
        return joint

    def _accept(
        self,
        tenants: list[TenantLink],
        result: JointResult,
        spent: int,
    ) -> None:
        self._tenants = tenants
        self._result = result
        self.total_measurements += spent
        _ACTIVE_LINKS.set(len(tenants))
