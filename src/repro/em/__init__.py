"""Electromagnetic propagation substrate.

Everything needed to simulate the indoor radio environment the PRESS array
manipulates: 2-D floor-plan geometry, antenna patterns, wall materials, the
parametric multipath signal model of §2, an image-method ray tracer,
channel-frequency-response synthesis, statistical fading models, and
receiver noise.
"""

from .antennas import (
    Antenna,
    IsotropicAntenna,
    LogPeriodicAntenna,
    OmniAntenna,
    ParabolicAntenna,
)
from .channel import (
    Channel,
    ChannelObservation,
    coherence_time_s,
    observe_cfr,
    snr_db_from_cfr,
    subcarrier_frequencies,
)
from .fading import TapDelayProfile, jakes_doppler_paths, rayleigh_paths, rician_paths
from .geometry import (
    Obstacle,
    Point,
    Segment,
    Wall,
    distance,
    mirror_point,
    path_is_blocked,
    points_on_grid,
    rectangle_walls,
    segment_intersection,
    segments_intersect,
)
from .materials import MATERIALS, Material, get_material, register_material
from .mobility import MovingScatterer, TimeVaryingScene, walking_person
from .noise import add_noise, awgn, noise_power_per_subcarrier_w
from .paths import (
    PathBatch,
    SignalPath,
    path_arrays,
    paths_to_cfr,
    paths_to_cfr_batch,
    paths_to_cir,
    total_path_power,
)
from .raytracer import (
    RayTracer,
    carrier_phase,
    free_space_amplitude,
    two_hop_gain,
)
from .scene import Scatterer, Scene, blocker_between, shoebox_scene
from .trace_cache import TraceCache, global_trace_cache

__all__ = [
    "Antenna",
    "IsotropicAntenna",
    "OmniAntenna",
    "ParabolicAntenna",
    "LogPeriodicAntenna",
    "Channel",
    "ChannelObservation",
    "coherence_time_s",
    "observe_cfr",
    "snr_db_from_cfr",
    "subcarrier_frequencies",
    "TapDelayProfile",
    "rayleigh_paths",
    "rician_paths",
    "jakes_doppler_paths",
    "Point",
    "Segment",
    "Wall",
    "Obstacle",
    "distance",
    "mirror_point",
    "segment_intersection",
    "segments_intersect",
    "path_is_blocked",
    "points_on_grid",
    "rectangle_walls",
    "Material",
    "MATERIALS",
    "get_material",
    "register_material",
    "awgn",
    "add_noise",
    "noise_power_per_subcarrier_w",
    "SignalPath",
    "PathBatch",
    "path_arrays",
    "paths_to_cfr",
    "paths_to_cfr_batch",
    "paths_to_cir",
    "total_path_power",
    "TraceCache",
    "global_trace_cache",
    "RayTracer",
    "free_space_amplitude",
    "carrier_phase",
    "two_hop_gain",
    "Scene",
    "Scatterer",
    "shoebox_scene",
    "blocker_between",
    "MovingScatterer",
    "TimeVaryingScene",
    "walking_person",
]
