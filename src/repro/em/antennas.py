"""Antenna gain-pattern models.

The paper's prototype uses three antenna types (§3.1, §4.1):

* 2 dBi omni-directional antennas (PulseLarsen W1030) at the endpoints;
* a 14 dBi, 21° azimuthal-beamwidth parabolic antenna (Laird GD24BP) as a
  PRESS element;
* hypothetical log-periodic / custom PCB directional antennas (§4.1) as
  wall-embeddable alternatives.

Patterns are azimuthal (2-D) power gains.  ``gain_dbi(angle)`` returns the
gain toward ``angle`` measured relative to the antenna's boresight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import db_to_linear

__all__ = [
    "Antenna",
    "IsotropicAntenna",
    "OmniAntenna",
    "ParabolicAntenna",
    "LogPeriodicAntenna",
    "GAIN_FLOOR_DBI",
]

#: Back-lobe floor used by directional patterns [dBi].  Real parabolic dishes
#: have front-to-back ratios of 20-30 dB; we model a conservative floor
#: rather than a hard null so directional elements never disappear entirely.
GAIN_FLOOR_DBI = -20.0


def _wrap_angle(angle_rad: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    wrapped = math.remainder(angle_rad, 2.0 * math.pi)
    # math.remainder returns in [-pi, pi]; map -pi to +pi for a half-open range.
    if wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    return wrapped


@dataclass(frozen=True)
class Antenna:
    """Base antenna: isotropic unless a subclass overrides the pattern.

    Attributes
    ----------
    boresight_rad:
        Direction the antenna points, in scene coordinates (radians from the
        +x axis).  Omnidirectional patterns ignore it.
    """

    boresight_rad: float = 0.0

    def gain_dbi(self, angle_rad: float) -> float:
        """Power gain [dBi] toward absolute scene direction ``angle_rad``."""
        return self.pattern_dbi(_wrap_angle(angle_rad - self.boresight_rad))

    def gain_linear(self, angle_rad: float) -> float:
        """Power gain (linear) toward absolute scene direction ``angle_rad``."""
        return float(db_to_linear(self.gain_dbi(angle_rad)))

    def amplitude_gain(self, angle_rad: float) -> float:
        """Field (voltage) gain toward ``angle_rad`` — sqrt of the power gain."""
        return math.sqrt(self.gain_linear(angle_rad))

    def pattern_dbi(self, offset_rad: float) -> float:
        """Gain [dBi] at ``offset_rad`` from boresight.  Isotropic: 0 dBi."""
        return 0.0

    def amplitude_gain_array(self, angles_rad: np.ndarray) -> np.ndarray:
        """Field gains toward an array of absolute directions.

        The base implementation evaluates the scalar pattern per angle, so
        any subclass is automatically batch-capable with exactly the scalar
        values; azimuthally flat patterns override it with a constant fill
        (the hot case in batched ray tracing — endpoint omnis and
        isotropic references never depend on the angle).
        """
        angles = np.asarray(angles_rad, dtype=float)
        flat = angles.reshape(-1)
        gains = np.array([self.amplitude_gain(float(a)) for a in flat])
        return gains.reshape(angles.shape)


@dataclass(frozen=True)
class IsotropicAntenna(Antenna):
    """Ideal 0 dBi isotropic radiator (reference antenna for link budgets)."""

    def amplitude_gain_array(self, angles_rad: np.ndarray) -> np.ndarray:
        return np.ones(np.shape(angles_rad), dtype=float)


@dataclass(frozen=True)
class OmniAntenna(Antenna):
    """Omnidirectional antenna with flat azimuthal gain.

    Default 2 dBi matches the PulseLarsen W1030 endpoints of §3.1.
    """

    peak_gain_dbi: float = 2.0

    def pattern_dbi(self, offset_rad: float) -> float:
        return self.peak_gain_dbi

    def amplitude_gain_array(self, angles_rad: np.ndarray) -> np.ndarray:
        return np.full(
            np.shape(angles_rad), self.amplitude_gain(self.boresight_rad), dtype=float
        )


@dataclass(frozen=True)
class ParabolicAntenna(Antenna):
    """Parabolic reflector antenna with a Gaussian main lobe.

    Defaults match the Laird GD24BP used as a PRESS element in §3.1:
    14 dBi peak gain and 21° azimuthal half-power beamwidth.

    The main lobe is the standard Gaussian-beam approximation: gain drops by
    3 dB at ``beamwidth/2`` off boresight.  Outside the main lobe the gain is
    clamped to :data:`GAIN_FLOOR_DBI`.
    """

    peak_gain_dbi: float = 14.0
    beamwidth_deg: float = 21.0

    def pattern_dbi(self, offset_rad: float) -> float:
        if self.beamwidth_deg <= 0:
            raise ValueError(f"beamwidth_deg must be positive, got {self.beamwidth_deg}")
        half_beamwidth_rad = math.radians(self.beamwidth_deg) / 2.0
        rolloff_db = 3.0 * (offset_rad / half_beamwidth_rad) ** 2
        return max(self.peak_gain_dbi - rolloff_db, GAIN_FLOOR_DBI)


@dataclass(frozen=True)
class LogPeriodicAntenna(Antenna):
    """Wall-embeddable directional antenna (§4.1 alternative to a dish).

    Moderately directional: defaults to 6 dBi with a 60° half-power
    beamwidth, typical of PCB log-periodic designs at 2.4 GHz.
    """

    peak_gain_dbi: float = 6.0
    beamwidth_deg: float = 60.0

    def pattern_dbi(self, offset_rad: float) -> float:
        if self.beamwidth_deg <= 0:
            raise ValueError(f"beamwidth_deg must be positive, got {self.beamwidth_deg}")
        half_beamwidth_rad = math.radians(self.beamwidth_deg) / 2.0
        rolloff_db = 3.0 * (offset_rad / half_beamwidth_rad) ** 2
        return max(self.peak_gain_dbi - rolloff_db, GAIN_FLOOR_DBI)


def effective_aperture_m2(gain_linear: float, wavelength_m: float) -> float:
    """Effective aperture A_e = G λ² / 4π of an antenna with linear gain G."""
    if gain_linear < 0:
        raise ValueError(f"gain_linear must be non-negative, got {gain_linear}")
    if wavelength_m <= 0:
        raise ValueError(f"wavelength_m must be positive, got {wavelength_m}")
    return gain_linear * wavelength_m**2 / (4.0 * math.pi)
