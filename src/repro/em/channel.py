"""Wireless channel objects: from multipath components to per-subcarrier CFR/SNR.

This module turns a set of :class:`~repro.em.paths.SignalPath` components
into the quantities the paper measures:

* the channel frequency response (CFR) on the OFDM subcarrier grid;
* per-subcarrier SNR in dB, given a transmit power and receiver noise
  parameters — the y-axis of Figures 4, 6 and 7.

The subcarrier grid matches the §3.1 numerology: 64 subcarriers over 20 MHz
(312.5 kHz spacing), centred on the carrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..constants import (
    BANDWIDTH_HZ,
    ISM_BAND_2G4_HZ,
    NUM_SUBCARRIERS,
    SPEED_OF_LIGHT,
    dbm_to_watts,
    linear_to_db,
    thermal_noise_power_w,
)
from .paths import SignalPath, paths_to_cfr

__all__ = [
    "subcarrier_frequencies",
    "Channel",
    "ChannelObservation",
    "observe_cfr",
    "snr_db_from_cfr",
    "coherence_time_s",
]


def subcarrier_frequencies(
    num_subcarriers: int = NUM_SUBCARRIERS,
    bandwidth_hz: float = BANDWIDTH_HZ,
) -> np.ndarray:
    """Baseband subcarrier centre frequencies (Hz offsets from the carrier).

    Subcarrier ``k`` sits at ``(k - N/2) * spacing`` so the grid is centred
    on DC, matching an N-point OFDM FFT with the DC bin in the middle.
    """
    if num_subcarriers <= 0:
        raise ValueError(f"num_subcarriers must be positive, got {num_subcarriers}")
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth_hz must be positive, got {bandwidth_hz}")
    spacing = bandwidth_hz / num_subcarriers
    indices = np.arange(num_subcarriers) - num_subcarriers // 2
    return indices * spacing


@dataclass
class Channel:
    """A (possibly time-varying) multipath channel between two radios.

    Attributes
    ----------
    paths:
        The multipath components.  The PRESS layer composes a channel as
        ``environment paths + element paths(configuration)``.
    num_subcarriers, bandwidth_hz:
        OFDM grid the CFR is evaluated on.
    """

    paths: tuple[SignalPath, ...]
    num_subcarriers: int = NUM_SUBCARRIERS
    bandwidth_hz: float = BANDWIDTH_HZ

    def __init__(
        self,
        paths: Iterable[SignalPath],
        num_subcarriers: int = NUM_SUBCARRIERS,
        bandwidth_hz: float = BANDWIDTH_HZ,
    ) -> None:
        self.paths = tuple(paths)
        self.num_subcarriers = num_subcarriers
        self.bandwidth_hz = bandwidth_hz

    def frequencies_hz(self) -> np.ndarray:
        """Baseband subcarrier frequencies of this channel's grid."""
        return subcarrier_frequencies(self.num_subcarriers, self.bandwidth_hz)

    def cfr(self, time_s: float = 0.0) -> np.ndarray:
        """Complex channel frequency response per subcarrier."""
        return paths_to_cfr(self.paths, self.frequencies_hz(), time_s=time_s)

    def gains_db(self, time_s: float = 0.0) -> np.ndarray:
        """Per-subcarrier channel power gain |H|^2 in dB."""
        return linear_to_db(np.abs(self.cfr(time_s)) ** 2)

    def combined(self, extra_paths: Iterable[SignalPath]) -> "Channel":
        """A new channel with ``extra_paths`` superposed onto this one."""
        return Channel(
            self.paths + tuple(extra_paths),
            num_subcarriers=self.num_subcarriers,
            bandwidth_hz=self.bandwidth_hz,
        )

    def observe(
        self,
        tx_power_dbm: float = 15.0,
        noise_figure_db: float = 7.0,
        time_s: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        estimation_snr_penalty_db: float = 0.0,
    ) -> "ChannelObservation":
        """Measure the channel as an OFDM receiver would (CSI + SNR).

        Transmit power is split evenly across subcarriers; noise power is
        thermal noise over one subcarrier's bandwidth through the receiver
        noise figure.  When ``rng`` is given, the reported CFR includes
        complex Gaussian estimation error at the per-subcarrier SNR
        (single-LTF least-squares estimation quality), which is how the
        paper's measured curves acquire their trial-to-trial spread.

        Parameters
        ----------
        tx_power_dbm:
            Total transmit power.
        noise_figure_db:
            Receiver noise figure.
        time_s:
            Observation time (for Doppler-bearing channels).
        rng:
            Random generator for estimation noise; ``None`` gives the exact
            noiseless CFR.
        estimation_snr_penalty_db:
            Additional SNR degradation applied to the estimation error only
            (e.g. quantisation or short training sequences).
        """
        return observe_cfr(
            self.cfr(time_s),
            num_subcarriers=self.num_subcarriers,
            bandwidth_hz=self.bandwidth_hz,
            tx_power_dbm=tx_power_dbm,
            noise_figure_db=noise_figure_db,
            rng=rng,
            estimation_snr_penalty_db=estimation_snr_penalty_db,
        )


def observe_cfr(
    cfr: np.ndarray,
    num_subcarriers: int,
    bandwidth_hz: float,
    tx_power_dbm: float = 15.0,
    noise_figure_db: float = 7.0,
    rng: Optional[np.random.Generator] = None,
    estimation_snr_penalty_db: float = 0.0,
) -> "ChannelObservation":
    """Measure a precomputed CFR as an OFDM receiver would (CSI + SNR).

    The measurement model behind :meth:`Channel.observe`, factored out so
    fast paths that synthesise the CFR without building path objects (the
    channel-basis sweep engine) share the identical noise and SNR math —
    and, crucially, the identical RNG draw pattern.
    """
    subcarrier_power_w = dbm_to_watts(tx_power_dbm) / num_subcarriers
    subcarrier_bw = bandwidth_hz / num_subcarriers
    noise_w = thermal_noise_power_w(subcarrier_bw, noise_figure_db)
    snr_linear = subcarrier_power_w * np.abs(cfr) ** 2 / noise_w
    estimated = cfr.copy()
    if rng is not None:
        error_var = noise_w / subcarrier_power_w * 10.0 ** (
            estimation_snr_penalty_db / 10.0
        )
        noise = np.sqrt(error_var / 2.0) * (
            rng.standard_normal(cfr.shape) + 1j * rng.standard_normal(cfr.shape)
        )
        estimated = cfr + noise
        snr_linear = subcarrier_power_w * np.abs(estimated) ** 2 / noise_w
    return ChannelObservation(
        cfr=estimated,
        snr_db=np.asarray(linear_to_db(snr_linear)),
        tx_power_dbm=tx_power_dbm,
        noise_figure_db=noise_figure_db,
    )


def snr_db_from_cfr(
    cfr: np.ndarray,
    num_subcarriers: int,
    bandwidth_hz: float,
    tx_power_dbm: float = 15.0,
    noise_figure_db: float = 7.0,
) -> np.ndarray:
    """Noiseless per-subcarrier SNR in dB for a (batch of) CFR(s).

    Vectorized over any leading batch dimensions — the whole-sweep form of
    the exact (``rng=None``) branch of :func:`observe_cfr`.
    """
    subcarrier_power_w = dbm_to_watts(tx_power_dbm) / num_subcarriers
    subcarrier_bw = bandwidth_hz / num_subcarriers
    noise_w = thermal_noise_power_w(subcarrier_bw, noise_figure_db)
    snr_linear = subcarrier_power_w * np.abs(np.asarray(cfr)) ** 2 / noise_w
    return np.asarray(linear_to_db(snr_linear))


@dataclass(frozen=True)
class ChannelObservation:
    """CSI as estimated by a receiver: complex CFR and per-subcarrier SNR."""

    cfr: np.ndarray
    snr_db: np.ndarray
    tx_power_dbm: float
    noise_figure_db: float

    def min_snr_db(self, mask: Optional[np.ndarray] = None) -> float:
        """Minimum per-subcarrier SNR, optionally over a used-subcarrier mask."""
        snr = self.snr_db if mask is None else self.snr_db[mask]
        return float(np.min(snr))

    def mean_snr_db(self, mask: Optional[np.ndarray] = None) -> float:
        """Mean per-subcarrier SNR in dB (of the dB values, as the paper plots)."""
        snr = self.snr_db if mask is None else self.snr_db[mask]
        return float(np.mean(snr))


def coherence_time_s(speed_mph: float, carrier_hz: float = ISM_BAND_2G4_HZ) -> float:
    """Channel coherence time at a given motion speed.

    §2 quotes ~80 ms at 0.5 mph and ~6 ms at 6 mph for 2.4 GHz.  We use the
    rule of thumb T_c ≈ 1 / (2 pi f_D) with Doppler f_D = v / lambda, which
    reproduces both anchor points (89 ms and 7.4 ms) to within ~15%.
    """
    if speed_mph <= 0:
        raise ValueError(f"speed_mph must be positive, got {speed_mph}")
    if carrier_hz <= 0:
        raise ValueError(f"carrier_hz must be positive, got {carrier_hz}")
    speed_ms = speed_mph * 0.44704
    wavelength = SPEED_OF_LIGHT / carrier_hz
    doppler_hz = speed_ms / wavelength
    return 1.0 / (2.0 * np.pi * doppler_hz)
