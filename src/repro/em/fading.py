"""Statistical small-scale fading models.

The geometric ray tracer produces deterministic, scene-specific channels.
For Monte-Carlo studies that don't need geometry (e.g. MIMO conditioning
statistics, rate-adaptation sweeps), this module provides the classical
stochastic models: Rayleigh and Rician tapped-delay-line channels with an
exponential power-delay profile, and a Jakes-style Doppler evolution for
time-varying studies.

Channels are returned as :class:`~repro.em.paths.SignalPath` lists so they
plug into the same CFR machinery as ray-traced channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .paths import SignalPath

__all__ = ["TapDelayProfile", "rayleigh_paths", "rician_paths", "jakes_doppler_paths"]


@dataclass(frozen=True)
class TapDelayProfile:
    """An exponential power-delay profile.

    Attributes
    ----------
    num_taps:
        Number of delay taps.
    tap_spacing_s:
        Delay between consecutive taps (seconds).
    rms_delay_spread_s:
        RMS delay spread of the exponential decay.  Typical indoor values
        are 20-100 ns.
    total_power:
        Sum of tap powers (linear).  Tap powers are normalised to this.
    """

    num_taps: int = 8
    tap_spacing_s: float = 50e-9
    rms_delay_spread_s: float = 50e-9
    total_power: float = 1.0

    def __post_init__(self) -> None:
        if self.num_taps <= 0:
            raise ValueError(f"num_taps must be positive, got {self.num_taps}")
        if self.tap_spacing_s <= 0:
            raise ValueError(f"tap_spacing_s must be positive, got {self.tap_spacing_s}")
        if self.rms_delay_spread_s <= 0:
            raise ValueError(
                f"rms_delay_spread_s must be positive, got {self.rms_delay_spread_s}"
            )
        if self.total_power <= 0:
            raise ValueError(f"total_power must be positive, got {self.total_power}")

    def tap_delays_s(self) -> np.ndarray:
        """Delay of each tap."""
        return np.arange(self.num_taps) * self.tap_spacing_s

    def tap_powers(self) -> np.ndarray:
        """Mean power of each tap (linear), normalised to ``total_power``."""
        delays = self.tap_delays_s()
        powers = np.exp(-delays / self.rms_delay_spread_s)
        return powers / powers.sum() * self.total_power


def rayleigh_paths(
    profile: TapDelayProfile,
    rng: np.random.Generator,
) -> list[SignalPath]:
    """One Rayleigh-fading channel realisation as a list of paths.

    Each tap's gain is zero-mean complex Gaussian with the profile's tap
    power (classical wide-sense-stationary uncorrelated-scattering model).
    """
    powers = profile.tap_powers()
    delays = profile.tap_delays_s()
    paths = []
    for power, delay in zip(powers, delays):
        sigma = math.sqrt(power / 2.0)
        gain = complex(
            rng.normal(scale=sigma),
            rng.normal(scale=sigma),
        )
        paths.append(SignalPath(gain=gain, delay_s=float(delay), kind="rayleigh-tap"))
    return paths


def rician_paths(
    profile: TapDelayProfile,
    k_factor_db: float,
    rng: np.random.Generator,
    los_delay_s: float = 0.0,
) -> list[SignalPath]:
    """One Rician channel realisation: a fixed LoS tap plus Rayleigh taps.

    Parameters
    ----------
    profile:
        Delay profile of the diffuse (Rayleigh) component.
    k_factor_db:
        Rician K-factor: LoS power over total diffuse power, in dB.
    rng:
        Random generator.
    los_delay_s:
        Delay of the specular component.
    """
    k_linear = 10.0 ** (k_factor_db / 10.0)
    diffuse_power = profile.total_power
    los_power = k_linear * diffuse_power
    phase = rng.uniform(0.0, 2.0 * math.pi)
    los = SignalPath(
        gain=math.sqrt(los_power) * complex(math.cos(phase), math.sin(phase)),
        delay_s=los_delay_s,
        kind="los",
    )
    return [los] + rayleigh_paths(profile, rng)


def jakes_doppler_paths(
    profile: TapDelayProfile,
    max_doppler_hz: float,
    rng: np.random.Generator,
) -> list[SignalPath]:
    """A Rayleigh realisation whose taps carry Jakes-distributed Doppler.

    Each tap is assigned a Doppler shift ``f_D * cos(alpha)`` with alpha
    uniform — the classical isotropic-scattering (Jakes) assumption — so
    that evaluating the CFR at different times in
    :func:`repro.em.paths.paths_to_cfr` produces a correctly correlated
    time-varying channel.
    """
    if max_doppler_hz < 0:
        raise ValueError(f"max_doppler_hz must be non-negative, got {max_doppler_hz}")
    paths = rayleigh_paths(profile, rng)
    dopplered = []
    for path in paths:
        alpha = rng.uniform(0.0, 2.0 * math.pi)
        dopplered.append(
            SignalPath(
                gain=path.gain,
                delay_s=path.delay_s,
                doppler_hz=max_doppler_hz * math.cos(alpha),
                kind="jakes-tap",
            )
        )
    return dopplered
