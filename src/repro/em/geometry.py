"""Planar geometry primitives for the indoor propagation simulator.

The PRESS exploratory study (§3) takes place in a single indoor room with
the direct transmitter–receiver path deliberately blocked.  We model the
scene in 2-D (a floor-plan view): walls and obstacles are line segments,
radios and PRESS elements are points.  2-D image-method ray tracing captures
the mechanism the paper relies on — multiple specular paths with distinct
delays superposing at the receiver — while staying cheap enough to sweep the
full 64-configuration space thousands of times in the benchmarks.

All coordinates are in metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "Point",
    "Segment",
    "Wall",
    "Obstacle",
    "SegmentArrays",
    "pack_segments",
    "leg_blocked_packed",
    "legs_blocked_packed",
    "distance",
    "mirror_point",
    "segments_intersect",
    "segment_intersection",
]

_EPS = 1e-9


@dataclass(frozen=True)
class Point:
    """A point (or free vector) in the 2-D floor plan."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Inner product treating both points as vectors."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 2-D cross product."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length treating the point as a vector."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Point":
        """Unit vector in the same direction.

        Raises
        ------
        ValueError
            If the vector is (numerically) zero.
        """
        n = self.norm()
        if n < _EPS:
            raise ValueError("cannot normalize a zero-length vector")
        return Point(self.x / n, self.y / n)

    def angle(self) -> float:
        """Angle of the vector from the +x axis, in radians, in (-pi, pi]."""
        return math.atan2(self.y, self.x)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


@dataclass(frozen=True)
class Segment:
    """A finite line segment between two points."""

    start: Point
    end: Point

    def length(self) -> float:
        return distance(self.start, self.end)

    def direction(self) -> Point:
        """Unit vector from start to end."""
        return (self.end - self.start).normalized()

    def normal(self) -> Point:
        """Unit normal (left-hand perpendicular of the direction)."""
        d = self.direction()
        return Point(-d.y, d.x)

    def midpoint(self) -> Point:
        return Point((self.start.x + self.end.x) / 2.0, (self.start.y + self.end.y) / 2.0)

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return Point(
            self.start.x + t * (self.end.x - self.start.x),
            self.start.y + t * (self.end.y - self.start.y),
        )

    def contains_point(self, p: Point, tol: float = 1e-6) -> bool:
        """Whether ``p`` lies on the segment within tolerance ``tol``."""
        d = self.end - self.start
        seg_len = d.norm()
        if seg_len < _EPS:
            return distance(self.start, p) <= tol
        # Perpendicular distance from the infinite line.
        rel = p - self.start
        perp = abs(d.cross(rel)) / seg_len
        if perp > tol:
            return False
        t = rel.dot(d) / (seg_len * seg_len)
        return -tol / seg_len <= t <= 1.0 + tol / seg_len


@dataclass(frozen=True)
class Wall:
    """A reflecting wall: a segment plus a material name.

    The material name is resolved to a complex reflection coefficient by
    :mod:`repro.em.materials`.
    """

    segment: Segment
    material: str = "drywall"

    @property
    def start(self) -> Point:
        return self.segment.start

    @property
    def end(self) -> Point:
        return self.segment.end


@dataclass(frozen=True)
class Obstacle:
    """An absorbing blocker (e.g. the metal sheet used in §3.2 to block LoS).

    An obstacle blocks any ray crossing its segment; it contributes no
    specular reflection of its own (the paper's blocker is modelled as
    perfectly absorbing, which is the conservative choice for reproducing a
    non-line-of-sight link).
    """

    segment: Segment
    name: str = "blocker"


def mirror_point(p: Point, seg: Segment) -> Point:
    """Mirror point ``p`` across the infinite line through ``seg``.

    This is the core operation of image-method ray tracing: the specular
    reflection of a source off a wall behaves as if radiated by the source's
    mirror image.
    """
    d = seg.end - seg.start
    seg_len2 = d.dot(d)
    if seg_len2 < _EPS * _EPS:
        raise ValueError("cannot mirror across a zero-length segment")
    rel = p - seg.start
    t = rel.dot(d) / seg_len2
    foot = seg.start + t * d
    return Point(2.0 * foot.x - p.x, 2.0 * foot.y - p.y)


def segment_intersection(a: Segment, b: Segment) -> Optional[Point]:
    """Intersection point of two segments, or ``None`` if they do not cross.

    Endpoints touching count as an intersection.  Collinear overlapping
    segments return a representative point (the start of the overlap).
    """
    p, r = a.start, a.end - a.start
    q, s = b.start, b.end - b.start
    rxs = r.cross(s)
    q_p = q - p
    if abs(rxs) < _EPS:
        # Parallel.  Check collinearity + overlap.
        if abs(q_p.cross(r)) > _EPS:
            return None
        r_len2 = r.dot(r)
        if r_len2 < _EPS * _EPS:
            # ``a`` is a point.
            return a.start if b.contains_point(a.start) else None
        t0 = q_p.dot(r) / r_len2
        t1 = t0 + s.dot(r) / r_len2
        lo, hi = min(t0, t1), max(t0, t1)
        if hi < -_EPS or lo > 1.0 + _EPS:
            return None
        t = max(0.0, lo)
        return a.point_at(min(1.0, t))
    t = q_p.cross(s) / rxs
    u = q_p.cross(r) / rxs
    if -_EPS <= t <= 1.0 + _EPS and -_EPS <= u <= 1.0 + _EPS:
        return a.point_at(min(1.0, max(0.0, t)))
    return None


def segments_intersect(a: Segment, b: Segment) -> bool:
    """Whether two segments intersect (endpoints touching count)."""
    return segment_intersection(a, b) is not None


@dataclass(frozen=True)
class SegmentArrays:
    """A batch of segments packed into flat coordinate arrays.

    The packed form lets one broadcast intersection test replace a Python
    loop over segments — the hot inner operation of every ray-tracing
    blockage check.  Arrays are parallel: segment ``i`` runs from
    ``(start_x[i], start_y[i])`` to ``(end_x[i], end_y[i])`` with direction
    ``(dir_x[i], dir_y[i]) = end - start``.
    """

    start_x: np.ndarray
    start_y: np.ndarray
    end_x: np.ndarray
    end_y: np.ndarray
    dir_x: np.ndarray
    dir_y: np.ndarray

    def __len__(self) -> int:
        return int(self.start_x.shape[0])

    def match_mask(self, segment: Segment) -> np.ndarray:
        """Boolean mask of packed segments with ``segment``'s endpoints.

        Endpoints compare exactly (in either order), mirroring the scalar
        ``_same_segment`` identity test used to skip a path's own
        reflecting walls.
        """
        ax, ay = segment.start.x, segment.start.y
        bx, by = segment.end.x, segment.end.y
        forward = (
            (self.start_x == ax)
            & (self.start_y == ay)
            & (self.end_x == bx)
            & (self.end_y == by)
        )
        backward = (
            (self.start_x == bx)
            & (self.start_y == by)
            & (self.end_x == ax)
            & (self.end_y == ay)
        )
        return forward | backward


def pack_segments(segments: Sequence[Segment]) -> SegmentArrays:
    """Pack a segment list into :class:`SegmentArrays` (done once per scene)."""
    start_x = np.array([s.start.x for s in segments], dtype=float)
    start_y = np.array([s.start.y for s in segments], dtype=float)
    end_x = np.array([s.end.x for s in segments], dtype=float)
    end_y = np.array([s.end.y for s in segments], dtype=float)
    return SegmentArrays(
        start_x=start_x,
        start_y=start_y,
        end_x=end_x,
        end_y=end_y,
        dir_x=end_x - start_x,
        dir_y=end_y - start_y,
    )


def leg_blocked_packed(
    start: Point,
    end: Point,
    packed: SegmentArrays,
    exclude_mask: Optional[np.ndarray] = None,
    endpoint_tol: float = 1e-6,
) -> bool:
    """Whether the leg ``start``→``end`` crosses any packed segment.

    One broadcast intersection test over all segments, reproducing the
    scalar :func:`segment_intersection` semantics exactly: endpoints
    touching count as intersections, collinear overlaps resolve to the
    start of the overlap, and hits within ``endpoint_tol`` of either leg
    endpoint are ignored (a reflection point lies on its wall by
    construction).
    """
    if len(packed) == 0:
        return False
    px, py = start.x, start.y
    rx, ry = end.x - px, end.y - py
    r_len2 = rx * rx + ry * ry
    if r_len2 < _EPS * _EPS:
        # Degenerate (point) leg: any hit coincides with the leg endpoints
        # and is therefore ignored.
        return False
    qpx = packed.start_x - px
    qpy = packed.start_y - py
    sx, sy = packed.dir_x, packed.dir_y
    rxs = rx * sy - ry * sx  # cross(r, s) per segment
    qp_x_r = qpx * ry - qpy * rx  # cross(q - p, r)
    parallel = np.abs(rxs) < _EPS
    rxs_safe = np.where(parallel, 1.0, rxs)
    # Non-parallel branch: solve p + t r = q + u s.
    t_np = (qpx * sy - qpy * sx) / rxs_safe  # cross(q - p, s) / cross(r, s)
    u_np = qp_x_r / rxs_safe
    hit_np = (
        ~parallel
        & (t_np >= -_EPS)
        & (t_np <= 1.0 + _EPS)
        & (u_np >= -_EPS)
        & (u_np <= 1.0 + _EPS)
    )
    # Parallel branch: collinear overlap resolves to the overlap start.
    collinear = parallel & (np.abs(qp_x_r) <= _EPS)
    t0 = (qpx * rx + qpy * ry) / r_len2
    t1 = t0 + (sx * rx + sy * ry) / r_len2
    lo = np.minimum(t0, t1)
    hi = np.maximum(t0, t1)
    hit_par = collinear & (hi >= -_EPS) & (lo <= 1.0 + _EPS)
    t_par = np.maximum(0.0, lo)
    hit = hit_np | hit_par
    if exclude_mask is not None:
        hit &= ~exclude_mask
    if not hit.any():
        return False
    t = np.clip(np.where(parallel, t_par, t_np), 0.0, 1.0)
    hit_x = px + t * rx
    hit_y = py + t * ry
    near_start = (hit_x - px) ** 2 + (hit_y - py) ** 2 <= endpoint_tol**2
    near_end = (hit_x - end.x) ** 2 + (hit_y - end.y) ** 2 <= endpoint_tol**2
    return bool((hit & ~near_start & ~near_end).any())


def legs_blocked_packed(
    start_x: np.ndarray,
    start_y: np.ndarray,
    end_x: np.ndarray,
    end_y: np.ndarray,
    packed: SegmentArrays,
    exclude_mask: Optional[np.ndarray] = None,
    endpoint_tol: float = 1e-6,
) -> np.ndarray:
    """Batched form of :func:`leg_blocked_packed`: P legs against S segments.

    One broadcast ``(P, S)`` intersection test replaces P scalar calls —
    the hot operation of batched ray tracing, where every candidate path
    family tests one leg per receiver position.  Semantics match the
    scalar kernel exactly (endpoint hits ignored, collinear overlaps
    resolve to the overlap start, degenerate legs never blocked).

    Parameters
    ----------
    start_x, start_y, end_x, end_y:
        Leg endpoints, shape ``(P,)`` each.
    packed:
        The scene's opaque segments.
    exclude_mask:
        Optional boolean mask of segments to skip — shape ``(S,)`` shared
        by all legs, or ``(P, S)`` per leg.
    endpoint_tol:
        Hits within this distance of a leg endpoint are ignored.

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``(P,)``: whether each leg is blocked.
    """
    px = np.asarray(start_x, dtype=float)
    py = np.asarray(start_y, dtype=float)
    ex = np.asarray(end_x, dtype=float)
    ey = np.asarray(end_y, dtype=float)
    num_legs = px.shape[0]
    if len(packed) == 0:
        return np.zeros(num_legs, dtype=bool)
    rx = ex - px
    ry = ey - py
    r_len2 = rx * rx + ry * ry  # (P,)
    degenerate = r_len2 < _EPS * _EPS
    r_len2_safe = np.where(degenerate, 1.0, r_len2)
    qpx = packed.start_x[None, :] - px[:, None]  # (P, S)
    qpy = packed.start_y[None, :] - py[:, None]
    sx = packed.dir_x[None, :]
    sy = packed.dir_y[None, :]
    rxc = rx[:, None]
    ryc = ry[:, None]
    rxs = rxc * sy - ryc * sx  # cross(r, s)
    qp_x_r = qpx * ryc - qpy * rxc  # cross(q - p, r)
    parallel = np.abs(rxs) < _EPS
    rxs_safe = np.where(parallel, 1.0, rxs)
    # Non-parallel branch: solve p + t r = q + u s.
    t_np = (qpx * sy - qpy * sx) / rxs_safe
    u_np = qp_x_r / rxs_safe
    hit_np = (
        ~parallel
        & (t_np >= -_EPS)
        & (t_np <= 1.0 + _EPS)
        & (u_np >= -_EPS)
        & (u_np <= 1.0 + _EPS)
    )
    # Parallel branch: collinear overlap resolves to the overlap start.
    collinear = parallel & (np.abs(qp_x_r) <= _EPS)
    t0 = (qpx * rxc + qpy * ryc) / r_len2_safe[:, None]
    t1 = t0 + (sx * rxc + sy * ryc) / r_len2_safe[:, None]
    lo = np.minimum(t0, t1)
    hi = np.maximum(t0, t1)
    hit_par = collinear & (hi >= -_EPS) & (lo <= 1.0 + _EPS)
    t_par = np.maximum(0.0, lo)
    hit = hit_np | hit_par
    if exclude_mask is not None:
        hit &= ~exclude_mask
    t = np.clip(np.where(parallel, t_par, t_np), 0.0, 1.0)
    hit_x = px[:, None] + t * rxc
    hit_y = py[:, None] + t * ryc
    near_start = (hit_x - px[:, None]) ** 2 + (hit_y - py[:, None]) ** 2 <= endpoint_tol**2
    near_end = (hit_x - ex[:, None]) ** 2 + (hit_y - ey[:, None]) ** 2 <= endpoint_tol**2
    blocked = (hit & ~near_start & ~near_end).any(axis=1)
    return blocked & ~degenerate


def path_is_blocked(
    start: Point,
    end: Point,
    obstacles: Iterable[Obstacle],
    ignore_endpoints: bool = True,
    endpoint_tol: float = 1e-6,
) -> bool:
    """Whether the straight path ``start``→``end`` crosses any obstacle.

    Parameters
    ----------
    start, end:
        Ray endpoints.
    obstacles:
        Blocking segments.
    ignore_endpoints:
        If true, an intersection that coincides with ``start`` or ``end``
        (e.g. a reflection point that sits exactly on a wall shared with an
        obstacle corner) does not count as blockage.
    """
    ray = Segment(start, end)
    for obstacle in obstacles:
        hit = segment_intersection(ray, obstacle.segment)
        if hit is None:
            continue
        if ignore_endpoints and (
            distance(hit, start) <= endpoint_tol or distance(hit, end) <= endpoint_tol
        ):
            continue
        return True
    return False


def rectangle_walls(
    width: float,
    height: float,
    material: str = "drywall",
    origin: Point = Point(0.0, 0.0),
) -> list[Wall]:
    """Four walls of an axis-aligned rectangular room.

    Parameters
    ----------
    width, height:
        Interior dimensions in metres; both must be positive.
    material:
        Material name applied to all four walls.
    origin:
        Bottom-left interior corner.
    """
    if width <= 0 or height <= 0:
        raise ValueError(f"room dimensions must be positive, got {width} x {height}")
    x0, y0 = origin.x, origin.y
    corners = [
        Point(x0, y0),
        Point(x0 + width, y0),
        Point(x0 + width, y0 + height),
        Point(x0, y0 + height),
    ]
    walls = []
    for i in range(4):
        seg = Segment(corners[i], corners[(i + 1) % 4])
        walls.append(Wall(segment=seg, material=material))
    return walls


def points_on_grid(
    n: int,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    rows: int,
    cols: int,
    rng,
) -> list[Point]:
    """Pick ``n`` distinct cells of a ``rows`` x ``cols`` grid and return their centres.

    Mirrors the §3.2 setup, where PRESS antennas are placed at "randomly
    generated locations in a grid 1–2 meters from both the transmitting and
    receiving antennas".

    Parameters
    ----------
    n:
        Number of grid cells to select (without replacement).
    x_range, y_range:
        Extent of the grid.
    rows, cols:
        Grid granularity; ``rows * cols`` must be at least ``n``.
    rng:
        A ``numpy.random.Generator``.
    """
    if rows * cols < n:
        raise ValueError(f"grid has {rows * cols} cells but {n} points requested")
    chosen = rng.choice(rows * cols, size=n, replace=False)
    dx = (x_range[1] - x_range[0]) / cols
    dy = (y_range[1] - y_range[0]) / rows
    points = []
    for cell in chosen:
        row, col = divmod(int(cell), cols)
        points.append(
            Point(
                x_range[0] + (col + 0.5) * dx,
                y_range[0] + (row + 0.5) * dy,
            )
        )
    return points
