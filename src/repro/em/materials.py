"""Wall-material reflection models.

Each wall in the scene carries a material name; the ray tracer looks up a
complex reflection coefficient for each bounce.  The values are amplitude
reflection coefficients at ~2.4 GHz for typical building materials, drawn
from the ITU-R P.2040 building-materials tables and the indoor-propagation
literature.  Exact values are not critical to reproducing the paper — what
matters is that environment reflections are strong enough (relative to the
PRESS element reflections) to create frequency-selective fading in NLoS
scenes, which these are.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = ["Material", "get_material", "register_material", "MATERIALS"]


@dataclass(frozen=True)
class Material:
    """A reflecting building material.

    Attributes
    ----------
    name:
        Lookup key.
    reflection_amplitude:
        Magnitude of the field reflection coefficient in [0, 1].
    reflection_phase_rad:
        Phase shift applied on reflection.  Conductors reflect with a ~pi
        phase flip; lossy dielectrics are modelled with the same flip, which
        is accurate near grazing incidence and immaterial to the statistics
        we reproduce.
    """

    name: str
    reflection_amplitude: float
    reflection_phase_rad: float = 3.141592653589793

    def __post_init__(self) -> None:
        if not 0.0 <= self.reflection_amplitude <= 1.0:
            raise ValueError(
                f"reflection_amplitude must be in [0, 1], got {self.reflection_amplitude}"
            )

    @property
    def reflection_coefficient(self) -> complex:
        """Complex field reflection coefficient."""
        import cmath

        return self.reflection_amplitude * cmath.exp(1j * self.reflection_phase_rad)


MATERIALS: dict[str, Material] = {}


def register_material(material: Material) -> Material:
    """Add (or replace) a material in the global registry."""
    MATERIALS[material.name] = material
    get_material.cache_clear()
    return material


@lru_cache(maxsize=None)
def get_material(name: str) -> Material:
    """Look up a material by name (memoised; the registry rarely changes).

    :func:`register_material` invalidates the cache, so replacing a
    material takes effect immediately.  Failed lookups are not cached.

    Raises
    ------
    KeyError
        If the material has not been registered, listing known names.
    """
    try:
        return MATERIALS[name]
    except KeyError:
        known = ", ".join(sorted(MATERIALS))
        raise KeyError(f"unknown material {name!r}; known materials: {known}") from None


# Default registry: |Gamma| at ~2.4 GHz, moderate incidence.
register_material(Material("metal", 0.95))
register_material(Material("concrete", 0.60))
register_material(Material("brick", 0.50))
register_material(Material("drywall", 0.35))
register_material(Material("glass", 0.40))
register_material(Material("wood", 0.30))
register_material(Material("absorber", 0.02))
