"""Time-varying environments: motion breaks the coherence-time budget (§2).

§2's timing argument is about people moving through the space: "Typical
values of the channel coherence time at 2.4 GHz range from ca. 80
milliseconds while almost stationary (0.5 mph movement) down to ca. six
milliseconds at running speed (6 mph)."  This module makes that concrete: a
scene whose scatterers move along trajectories, re-traced per time step, so
controllers and learners can be evaluated against a channel that actually
decorrelates underneath them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .geometry import Obstacle, Point, Segment
from .scene import Scatterer, Scene

__all__ = ["MovingScatterer", "TimeVaryingScene", "walking_person"]


@dataclass(frozen=True)
class MovingScatterer:
    """A scatterer following a straight-line trajectory with wall bounces.

    Attributes
    ----------
    scatterer:
        The scattering properties and initial position.
    velocity_mps:
        Velocity vector in metres per second.
    bounds:
        (width, height) of the area the scatterer is confined to; it
        reflects elastically off the boundary (so long simulations stay in
        the room).
    blocking_half_width_m:
        When positive, the mover also *shadows*: an absorbing segment of
        this half-width (perpendicular to the motion) travels with it.  A
        human body attenuates 2.4 GHz by 15-20 dB, so blockage — not
        scattering — is what actually decorrelates indoor channels as
        people walk through them.
    """

    scatterer: Scatterer
    velocity_mps: Point
    bounds: tuple[float, float]
    blocking_half_width_m: float = 0.0

    def __post_init__(self) -> None:
        width, height = self.bounds
        if width <= 0 or height <= 0:
            raise ValueError(f"bounds must be positive, got {self.bounds}")

    def position_at(self, time_s: float) -> Point:
        """Position after ``time_s`` of elastic-bounce motion."""
        width, height = self.bounds
        x = self._bounce(self.scatterer.position.x + self.velocity_mps.x * time_s, width)
        y = self._bounce(self.scatterer.position.y + self.velocity_mps.y * time_s, height)
        return Point(x, y)

    @staticmethod
    def _bounce(coordinate: float, extent: float) -> float:
        """Fold an unbounded coordinate into [0, extent] with reflections."""
        period = 2.0 * extent
        folded = coordinate % period
        if folded < 0:
            folded += period
        return folded if folded <= extent else period - folded

    def scatterer_at(self, time_s: float) -> Scatterer:
        """The scatterer relocated to its position at ``time_s``."""
        return Scatterer(
            position=self.position_at(time_s),
            reflectivity=self.scatterer.reflectivity,
            gain_dbi=self.scatterer.gain_dbi,
        )

    def obstacle_at(self, time_s: float) -> Optional[Obstacle]:
        """The mover's shadowing segment at ``time_s`` (None if non-blocking)."""
        if self.blocking_half_width_m <= 0:
            return None
        position = self.position_at(time_s)
        speed = self.velocity_mps.norm()
        if speed < 1e-12:
            normal = Point(1.0, 0.0)
        else:
            unit = self.velocity_mps.normalized()
            normal = Point(-unit.y, unit.x)
        half = self.blocking_half_width_m
        return Obstacle(
            segment=Segment(
                position + (-half) * normal, position + half * normal
            ),
            name="mover",
        )

    @property
    def speed_mph(self) -> float:
        """Speed in the paper's units (miles per hour)."""
        return self.velocity_mps.norm() / 0.44704


def walking_person(
    position: Point,
    direction_rad: float,
    bounds: tuple[float, float],
    speed_mph: float = 2.0,
    reflectivity: float = 0.5,
    blocking_half_width_m: float = 0.25,
) -> MovingScatterer:
    """A person-sized scatterer walking at ``speed_mph`` (default 2 mph).

    A human torso at 2.4 GHz has an RCS around 0.5-1 m^2; modelled as a
    moderately reflective scatterer with a small forward gain.
    """
    if speed_mph <= 0:
        raise ValueError(f"speed_mph must be positive, got {speed_mph}")
    speed_mps = speed_mph * 0.44704
    velocity = Point(
        speed_mps * math.cos(direction_rad), speed_mps * math.sin(direction_rad)
    )
    return MovingScatterer(
        scatterer=Scatterer(position=position, reflectivity=reflectivity, gain_dbi=3.0),
        velocity_mps=velocity,
        bounds=bounds,
        blocking_half_width_m=blocking_half_width_m,
    )


@dataclass(frozen=True)
class TimeVaryingScene:
    """A static scene plus moving scatterers.

    Attributes
    ----------
    base:
        The static part (walls, obstacles, static scatterers).
    movers:
        The moving scatterers.
    """

    base: Scene
    movers: tuple[MovingScatterer, ...]

    def __post_init__(self) -> None:
        if len(self.movers) == 0:
            raise ValueError("a time-varying scene needs at least one mover")

    def scene_at(self, time_s: float) -> Scene:
        """The full (static) scene snapshot at ``time_s``."""
        moved = tuple(mover.scatterer_at(time_s) for mover in self.movers)
        shadows = tuple(
            obstacle
            for obstacle in (mover.obstacle_at(time_s) for mover in self.movers)
            if obstacle is not None
        )
        return Scene(
            walls=self.base.walls,
            obstacles=self.base.obstacles + shadows,
            scatterers=self.base.scatterers + moved,
            name=f"{self.base.name}@t={time_s:.3f}",
        )

    def max_speed_mph(self) -> float:
        """The fastest mover's speed — sets the coherence-time budget."""
        return max(mover.speed_mph for mover in self.movers)
