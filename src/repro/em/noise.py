"""Receiver noise models.

Complex additive white Gaussian noise (AWGN) generation for the sample-level
PHY simulations, plus noise-power bookkeeping that matches the frequency-
domain SNR computations in :mod:`repro.em.channel`.
"""

from __future__ import annotations

import numpy as np

from ..constants import thermal_noise_power_w

__all__ = ["awgn", "noise_power_per_subcarrier_w", "add_noise"]


def awgn(
    shape: tuple[int, ...] | int,
    noise_power_w: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Complex AWGN samples with total power ``noise_power_w`` per sample."""
    if noise_power_w < 0:
        raise ValueError(f"noise_power_w must be non-negative, got {noise_power_w}")
    sigma = np.sqrt(noise_power_w / 2.0)
    return sigma * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


def noise_power_per_subcarrier_w(
    bandwidth_hz: float,
    num_subcarriers: int,
    noise_figure_db: float = 0.0,
) -> float:
    """Thermal noise power in one subcarrier's bandwidth."""
    if num_subcarriers <= 0:
        raise ValueError(f"num_subcarriers must be positive, got {num_subcarriers}")
    return thermal_noise_power_w(bandwidth_hz / num_subcarriers, noise_figure_db)


def add_noise(
    samples: np.ndarray,
    snr_db: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Add complex AWGN scaled to achieve ``snr_db`` against the signal power.

    The signal power is measured from ``samples`` (mean |x|^2), so the
    function realises the requested SNR exactly in expectation regardless of
    the input's scaling.
    """
    signal_power = float(np.mean(np.abs(samples) ** 2))
    if signal_power == 0.0:
        return samples.copy()
    noise_power = signal_power / 10.0 ** (snr_db / 10.0)
    return samples + awgn(samples.shape, noise_power, rng)
