"""The multipath signal model of §2.

The paper adopts the standard parametric signal model (Tse & Viswanath): the
channel between a sender and receiver is a superposition of paths, each
characterised by its angle of departure phi_l, propagation delay tau_l,
Doppler shift gamma_l and angle of arrival theta_l, plus a complex gain.
:class:`SignalPath` carries exactly those parameters, and
:func:`paths_to_cfr` synthesises the channel frequency response

    H(f, t) = sum_l  g_l  e^{j 2 pi gamma_l t}  e^{-j 2 pi f tau_l}

on an arbitrary frequency grid.  PRESS's "inverse problem" (§2) — given a
desired H, find path parameters whose superposition produces it — is solved
against this same model in :mod:`repro.core.inverse`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "SignalPath",
    "PathBatch",
    "path_arrays",
    "paths_to_cfr",
    "paths_to_cfr_batch",
    "paths_to_cir",
    "total_path_power",
]


@dataclass(frozen=True)
class SignalPath:
    """One propagation path in the §2 signal model.

    Attributes
    ----------
    gain:
        Complex field gain of the path (includes antenna gains, path loss,
        reflection losses and the carrier-phase rotation at f=0 of the
        baseband grid — i.e. the phase accumulated at the carrier).
    delay_s:
        Propagation delay tau_l in seconds, measured over the air (and any
        waveguide stubs inside PRESS elements).
    aod_rad:
        Angle of departure phi_l from the transmitter, radians in scene
        coordinates.
    aoa_rad:
        Angle of arrival theta_l at the receiver, radians.
    doppler_hz:
        Doppler shift gamma_l in hertz (0 for the static scenes of §3).
    kind:
        Free-form tag describing the path's origin: ``"los"``,
        ``"wall-reflection"``, ``"press-element"``, ``"scatterer"``,
        ``"active-element"`` ...  Used by analyses that separate the PRESS
        contribution from the ambient environment.
    hops:
        Number of interactions (reflections/retransmissions) along the path.
    """

    gain: complex
    delay_s: float
    aod_rad: float = 0.0
    aoa_rad: float = 0.0
    doppler_hz: float = 0.0
    kind: str = "generic"
    hops: int = 0

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if self.hops < 0:
            raise ValueError(f"hops must be non-negative, got {self.hops}")

    @property
    def power(self) -> float:
        """Path power |g_l|^2."""
        return float(abs(self.gain) ** 2)

    def scaled(self, factor: complex) -> "SignalPath":
        """A copy of this path with the gain multiplied by ``factor``."""
        return replace(self, gain=self.gain * factor)

    def delayed(self, extra_delay_s: float) -> "SignalPath":
        """A copy with ``extra_delay_s`` added to the propagation delay."""
        return replace(self, delay_s=self.delay_s + extra_delay_s)


def path_arrays(
    paths: Sequence[SignalPath] | Iterable[SignalPath],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack paths into (gains, delays_s, dopplers_hz) numpy arrays.

    The array form is what the vectorized CFR kernels operate on; packing
    once and reusing the arrays avoids touching ``SignalPath`` attributes
    in hot loops.
    """
    path_list = list(paths)
    gains = np.array([p.gain for p in path_list], dtype=complex)
    delays = np.array([p.delay_s for p in path_list], dtype=float)
    dopplers = np.array([p.doppler_hz for p in path_list], dtype=float)
    return gains, delays, dopplers


def paths_to_cfr_batch(
    gains: np.ndarray,
    delays_s: np.ndarray,
    frequencies_hz: np.ndarray,
    dopplers_hz: Optional[np.ndarray] = None,
    time_s: float = 0.0,
) -> np.ndarray:
    """Batched channel frequency response from packed path arrays.

    Evaluates ``H[..., k] = sum_l gains[..., l] e^{-j 2 pi f_k tau_l}`` as
    one outer-product ``np.exp`` plus a matmul — no per-path Python loop.
    The leading dimensions of ``gains`` broadcast, so a whole batch of
    gain realisations (e.g. per-measurement coherence drift) evaluates in
    one call against a shared delay vector.

    Parameters
    ----------
    gains:
        Complex path gains, shape ``(..., L)``.
    delays_s:
        Path delays: shape ``(L,)`` shared across the gain batch, or any
        shape broadcastable against ``gains`` (e.g. ``(P, L)`` per-point
        delays from a batched geometry trace).
    frequencies_hz:
        Baseband frequency grid, shape ``(K,)``.
    dopplers_hz:
        Optional per-path Doppler shifts, shape ``(L,)``.
    time_s:
        Observation time; only matters with non-zero Doppler.

    Returns
    -------
    numpy.ndarray
        Complex H of shape ``(..., K)``.
    """
    freqs = np.asarray(frequencies_hz, dtype=float)
    gains = np.asarray(gains, dtype=complex)
    delays = np.asarray(delays_s, dtype=float)
    if gains.shape[-1:] != delays.shape[-1:]:
        raise ValueError(
            f"gains last axis {gains.shape[-1:]} must match delays last axis "
            f"{delays.shape[-1:]}"
        )
    if delays.shape[-1:] == (0,):
        batch = np.broadcast_shapes(gains.shape[:-1], delays.shape[:-1])
        return np.zeros(batch + freqs.shape, dtype=complex)
    if dopplers_hz is not None and time_s != 0.0:
        dopplers = np.asarray(dopplers_hz, dtype=float)
        gains = gains * np.exp(2.0j * np.pi * dopplers * time_s)
    if delays.ndim == 1:
        phasors = np.exp(-2.0j * np.pi * np.outer(delays, freqs))  # (L, K)
        return gains @ phasors
    # Per-batch delays: one phasor tensor (..., L, K), contracted over L.
    phasors = np.exp(-2.0j * np.pi * delays[..., None] * freqs)
    return (gains[..., None] * phasors).sum(axis=-2)


def paths_to_cfr(
    paths: Sequence[SignalPath] | Iterable[SignalPath],
    frequencies_hz: np.ndarray,
    time_s: float = 0.0,
) -> np.ndarray:
    """Channel frequency response of a path superposition.

    Parameters
    ----------
    paths:
        The multipath components.
    frequencies_hz:
        Frequency grid — *baseband* offsets from the carrier (the carrier
        phase is already folded into each path's complex gain).
    time_s:
        Observation time; only matters when paths carry Doppler.

    Returns
    -------
    numpy.ndarray
        Complex H of the same shape as ``frequencies_hz``.
    """
    freqs = np.asarray(frequencies_hz, dtype=float)
    gains, delays, dopplers = path_arrays(paths)
    if gains.size == 0:
        return np.zeros(freqs.shape, dtype=complex)
    response = paths_to_cfr_batch(
        gains, delays, freqs.reshape(-1), dopplers_hz=dopplers, time_s=time_s
    )
    return response.reshape(freqs.shape)


@dataclass(frozen=True)
class PathBatch:
    """Packed multipath of one transmitter against P receiver positions.

    The output of :meth:`repro.em.raytracer.RayTracer.trace_batch`: every
    candidate path family (LoS, each wall, each ordered wall pair, each
    scatterer) contributes one column, and validity is a mask — so the
    arrays stay rectangular and every downstream consumer is a vectorized
    numpy operation.  Column order matches the scalar
    :meth:`~repro.em.raytracer.RayTracer.trace` path order exactly, so
    compressing row ``p`` by its validity mask reproduces the per-point
    path list (same paths, same order).

    Attributes
    ----------
    gains:
        Complex path gains, shape ``(P, C)``; zero where invalid.
    delays_s:
        Path delays in seconds, shape ``(P, C)``; zero where invalid.
    aod_rad, aoa_rad:
        Departure/arrival angles, shape ``(P, C)``.
    valid:
        Which (point, candidate) pairs are real paths, shape ``(P, C)``.
    kinds:
        Per-candidate path kind (``"los"``, ``"wall-reflection"``,
        ``"scatterer"`` ...), length ``C``.
    hops:
        Per-candidate interaction count, length ``C``.
    """

    gains: np.ndarray
    delays_s: np.ndarray
    aod_rad: np.ndarray
    aoa_rad: np.ndarray
    valid: np.ndarray
    kinds: tuple[str, ...]
    hops: tuple[int, ...]

    @property
    def num_points(self) -> int:
        return int(self.gains.shape[0])

    @property
    def num_candidates(self) -> int:
        return int(self.gains.shape[1])

    def counts(self) -> np.ndarray:
        """Number of valid paths per receiver position, shape ``(P,)``."""
        return self.valid.sum(axis=1)

    def point_arrays(self, point: int) -> tuple[np.ndarray, np.ndarray]:
        """Packed ``(gains, delays_s)`` of point ``point``'s valid paths.

        The arrays are ordered exactly like the scalar trace, so they can
        stand in for ``path_arrays(tracer.trace(tx, rx))`` — e.g. as a
        :class:`~repro.core.basis.ChannelBasis` ambient vector whose length
        drives drift-draw counts.
        """
        mask = self.valid[point]
        return self.gains[point, mask], self.delays_s[point, mask]

    def paths(self, point: int) -> list[SignalPath]:
        """Point ``point``'s paths as :class:`SignalPath` objects."""
        out: list[SignalPath] = []
        for c in range(self.num_candidates):
            if not self.valid[point, c]:
                continue
            out.append(
                SignalPath(
                    gain=complex(self.gains[point, c]),
                    delay_s=float(self.delays_s[point, c]),
                    aod_rad=float(self.aod_rad[point, c]),
                    aoa_rad=float(self.aoa_rad[point, c]),
                    kind=self.kinds[c],
                    hops=self.hops[c],
                )
            )
        return out

    def cfr(self, frequencies_hz: np.ndarray) -> np.ndarray:
        """All P channel frequency responses, shape ``(P, K)``.

        Invalid candidates carry zero gain, so they drop out of the sum;
        the whole grid evaluates as one vectorized
        :func:`paths_to_cfr_batch` call with per-point delays.
        """
        return paths_to_cfr_batch(self.gains, self.delays_s, frequencies_hz)


def paths_to_cir(
    paths: Sequence[SignalPath],
    sample_rate_hz: float,
    num_taps: int,
) -> np.ndarray:
    """Discrete channel impulse response (tapped delay line).

    Each path's energy is placed on the nearest tap of a uniform delay grid
    with spacing ``1/sample_rate_hz``.  Paths whose delay exceeds the grid
    are folded onto the last tap so that total power is conserved (and the
    caller can detect an undersized grid by inspecting the final tap).

    Parameters
    ----------
    paths:
        Multipath components.
    sample_rate_hz:
        Tap spacing is one sample at this rate.
    num_taps:
        Length of the returned tap vector.
    """
    if sample_rate_hz <= 0:
        raise ValueError(f"sample_rate_hz must be positive, got {sample_rate_hz}")
    if num_taps <= 0:
        raise ValueError(f"num_taps must be positive, got {num_taps}")
    taps = np.zeros(num_taps, dtype=complex)
    for path in paths:
        index = int(round(path.delay_s * sample_rate_hz))
        index = min(index, num_taps - 1)
        taps[index] += path.gain
    return taps


def total_path_power(paths: Iterable[SignalPath]) -> float:
    """Sum of |g_l|^2 over all paths (incoherent total received power)."""
    return float(sum(path.power for path in paths))
