"""Image-method ray tracer.

Computes the discrete multipath components (:class:`~repro.em.paths.SignalPath`)
between a transmitter and receiver in a :class:`~repro.em.scene.Scene`:

* the direct (line-of-sight) path, when not blocked;
* specular wall reflections up to two bounces, found with the classical
  image method (mirror the source across each wall, then across each ordered
  wall pair);
* single-bounce scattering off point scatterers;
* arbitrary two-hop relays (used by :mod:`repro.core` to model PRESS
  elements, which are exactly "antennas that re-radiate with a programmable
  reflection coefficient").

Amplitudes follow the Friis free-space law per hop: a one-hop field gain of
``lambda / (4 pi d)`` times the endpoint antennas' field gains; reflections
multiply in the wall material's complex reflection coefficient; two-hop
relays multiply the two hop gains and the relay's re-radiation pattern
(the standard backscatter link budget).  Carrier phase ``-2 pi L / lambda``
is folded into the complex path gain, and the propagation delay ``L / c``
drives per-subcarrier phase in :func:`repro.em.paths.paths_to_cfr`.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Optional, Sequence

import numpy as np

from ..constants import CARRIER_FREQUENCY_HZ, SPEED_OF_LIGHT
from .antennas import Antenna, IsotropicAntenna
from .geometry import (
    Point,
    Segment,
    SegmentArrays,
    Wall,
    distance,
    leg_blocked_packed,
    mirror_point,
    pack_segments,
    segment_intersection,
)
from .materials import get_material
from .paths import SignalPath
from .scene import Scatterer, Scene

__all__ = [
    "RayTracer",
    "free_space_amplitude",
    "carrier_phase",
    "two_hop_gain",
]

#: Minimum hop distance [m] used in amplitude calculations, preventing the
#: near-field singularity of the Friis law when geometry degenerates.
MIN_HOP_DISTANCE_M = 0.05

_ENDPOINT_TOL = 1e-6


def free_space_amplitude(distance_m: float, wavelength_m: float) -> float:
    """One-hop free-space field gain ``lambda / (4 pi d)``.

    Distances below :data:`MIN_HOP_DISTANCE_M` are clamped.
    """
    if wavelength_m <= 0:
        raise ValueError(f"wavelength_m must be positive, got {wavelength_m}")
    d = max(distance_m, MIN_HOP_DISTANCE_M)
    return wavelength_m / (4.0 * math.pi * d)


def carrier_phase(total_length_m: float, wavelength_m: float) -> complex:
    """Carrier-phase rotation ``e^{-j 2 pi L / lambda}`` over path length L."""
    if wavelength_m <= 0:
        raise ValueError(f"wavelength_m must be positive, got {wavelength_m}")
    return cmath.exp(-2.0j * math.pi * total_length_m / wavelength_m)


def two_hop_gain(
    d1_m: float,
    d2_m: float,
    wavelength_m: float,
    tx_field_gain: float = 1.0,
    rx_field_gain: float = 1.0,
    relay_field_gain_in: float = 1.0,
    relay_field_gain_out: float = 1.0,
    reflectivity: complex = 1.0 + 0.0j,
) -> complex:
    """Complex field gain of a TX -> relay -> RX path.

    This is the backscatter link budget: the relay captures the incident
    field with its receive pattern, scales it by its complex reflectivity
    (for PRESS: the switched reflection coefficient), and re-radiates with
    its transmit pattern.  Carrier phase over ``d1 + d2`` is included.
    """
    amplitude = (
        free_space_amplitude(d1_m, wavelength_m)
        * free_space_amplitude(d2_m, wavelength_m)
        * tx_field_gain
        * rx_field_gain
        * relay_field_gain_in
        * relay_field_gain_out
    )
    return amplitude * reflectivity * carrier_phase(d1_m + d2_m, wavelength_m)


@dataclass(frozen=True)
class RayTracer:
    """Traces multipath components through a scene.

    Attributes
    ----------
    scene:
        The environment (walls, obstacles, scatterers).
    frequency_hz:
        Carrier frequency; sets the wavelength used for amplitudes and
        carrier phase.
    max_bounces:
        Maximum number of specular wall bounces (0, 1 or 2).
    """

    scene: Scene
    frequency_hz: float = CARRIER_FREQUENCY_HZ
    max_bounces: int = 2

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {self.frequency_hz}")
        if not 0 <= self.max_bounces <= 2:
            raise ValueError(f"max_bounces must be 0, 1 or 2, got {self.max_bounces}")

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT / self.frequency_hz

    # ------------------------------------------------------------------
    # Blockage
    # ------------------------------------------------------------------
    @cached_property
    def _packed_blockers(self) -> SegmentArrays:
        """The scene's opaque segments packed into numpy arrays (built once).

        ``Scene`` is immutable, so the packed form is computed lazily on
        first blockage test and reused for the tracer's lifetime.
        """
        return pack_segments(self.scene.blocking_segments())

    def leg_is_clear(
        self,
        start: Point,
        end: Point,
        exclude: Sequence[Segment] = (),
    ) -> bool:
        """Whether a straight leg crosses no opaque segment.

        Segments in ``exclude`` (the walls the leg reflects off) are
        skipped, as are crossings that coincide with the leg's endpoints —
        a reflection point lies exactly on its wall by construction.  One
        broadcast intersection test over the packed scene segments replaces
        the per-segment Python loop.
        """
        packed = self._packed_blockers
        exclude_mask: Optional[np.ndarray] = None
        if exclude and len(packed):
            exclude_mask = np.zeros(len(packed), dtype=bool)
            for other in exclude:
                exclude_mask |= packed.match_mask(other)
        return not leg_blocked_packed(
            start, end, packed, exclude_mask=exclude_mask, endpoint_tol=_ENDPOINT_TOL
        )

    def has_line_of_sight(self, tx: Point, rx: Point) -> bool:
        """Whether the direct TX->RX path is unobstructed."""
        return self.leg_is_clear(tx, rx)

    # ------------------------------------------------------------------
    # Path construction
    # ------------------------------------------------------------------
    def trace(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        include_los: bool = True,
        include_scatterers: bool = True,
    ) -> list[SignalPath]:
        """All multipath components from ``tx`` to ``rx``.

        Returns LoS (if clear and requested), wall reflections up to
        ``max_bounces``, and scatterer bounces.  PRESS element paths are not
        produced here — the PRESS array layer adds them on top (they depend
        on the array configuration).
        """
        paths: list[SignalPath] = []
        if include_los:
            los = self.line_of_sight_path(tx, rx, tx_antenna, rx_antenna)
            if los is not None:
                paths.append(los)
        if self.max_bounces >= 1:
            paths.extend(self.single_bounce_paths(tx, rx, tx_antenna, rx_antenna))
        if self.max_bounces >= 2:
            paths.extend(self.double_bounce_paths(tx, rx, tx_antenna, rx_antenna))
        if include_scatterers:
            paths.extend(self.scatterer_paths(tx, rx, tx_antenna, rx_antenna))
        return paths

    def line_of_sight_path(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> Optional[SignalPath]:
        """The direct path, or ``None`` if it is blocked."""
        if not self.has_line_of_sight(tx, rx):
            return None
        d = distance(tx, rx)
        aod = (rx - tx).angle()
        aoa = (tx - rx).angle()
        amplitude = (
            free_space_amplitude(d, self.wavelength_m)
            * tx_antenna.amplitude_gain(aod)
            * rx_antenna.amplitude_gain(aoa)
        )
        gain = amplitude * carrier_phase(d, self.wavelength_m)
        return SignalPath(
            gain=gain,
            delay_s=d / SPEED_OF_LIGHT,
            aod_rad=aod,
            aoa_rad=aoa,
            kind="los",
            hops=0,
        )

    def single_bounce_paths(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> list[SignalPath]:
        """Specular one-bounce wall reflections (image method)."""
        paths: list[SignalPath] = []
        for wall in self.scene.walls:
            path = self._wall_path(tx, rx, [wall], tx_antenna, rx_antenna)
            if path is not None:
                paths.append(path)
        return paths

    def double_bounce_paths(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> list[SignalPath]:
        """Specular two-bounce wall reflections over ordered wall pairs."""
        paths: list[SignalPath] = []
        for first in self.scene.walls:
            for second in self.scene.walls:
                if _same_segment(first.segment, second.segment):
                    continue
                path = self._wall_path(tx, rx, [first, second], tx_antenna, rx_antenna)
                if path is not None:
                    paths.append(path)
        return paths

    def _wall_path(
        self,
        tx: Point,
        rx: Point,
        walls: Sequence[Wall],
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> Optional[SignalPath]:
        """Specular path bouncing off ``walls`` in order, or ``None``.

        Uses the image method: mirror the source across each wall in
        sequence, then walk back from the receiver to recover the physical
        reflection points, validating that each lies on its wall segment and
        each leg is unobstructed.
        """
        # Forward pass: iterated images of the transmitter.
        images = [tx]
        for wall in walls:
            images.append(mirror_point(images[-1], wall.segment))
        # Backward pass: recover reflection points.
        vertices = [rx]
        target = rx
        valid = True
        for index in range(len(walls) - 1, -1, -1):
            wall = walls[index]
            ray = Segment(images[index + 1], target)
            hit = segment_intersection(ray, wall.segment)
            if hit is None or not wall.segment.contains_point(hit, tol=1e-6):
                valid = False
                break
            vertices.append(hit)
            target = hit
        if not valid:
            return None
        vertices.append(tx)
        vertices.reverse()  # tx, refl_1, ..., refl_k, rx
        # Degenerate geometry (reflection point coincides with an endpoint)
        # produces zero-length legs; treat as no path.
        legs = list(zip(vertices[:-1], vertices[1:]))
        if any(distance(a, b) <= _ENDPOINT_TOL for a, b in legs):
            return None
        # Blockage: each leg must be clear, ignoring the walls it touches.
        for leg_index, (start, end) in enumerate(legs):
            exclude: list[Segment] = []
            if leg_index > 0:
                exclude.append(walls[leg_index - 1].segment)
            if leg_index < len(walls):
                exclude.append(walls[leg_index].segment)
            if not self.leg_is_clear(start, end, exclude=exclude):
                return None
        total_length = sum(distance(a, b) for a, b in legs)
        reflection = complex(1.0, 0.0)
        for wall in walls:
            reflection *= get_material(wall.material).reflection_coefficient
        aod = (vertices[1] - tx).angle()
        aoa = (vertices[-2] - rx).angle()
        amplitude = (
            free_space_amplitude(total_length, self.wavelength_m)
            * tx_antenna.amplitude_gain(aod)
            * rx_antenna.amplitude_gain(aoa)
        )
        gain = amplitude * reflection * carrier_phase(total_length, self.wavelength_m)
        return SignalPath(
            gain=gain,
            delay_s=total_length / SPEED_OF_LIGHT,
            aod_rad=aod,
            aoa_rad=aoa,
            kind="wall-reflection",
            hops=len(walls),
        )

    def scatterer_paths(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> list[SignalPath]:
        """Single-bounce paths via each visible point scatterer."""
        paths: list[SignalPath] = []
        for scatterer in self.scene.scatterers:
            path = self.relay_path(
                tx,
                scatterer.position,
                rx,
                tx_antenna=tx_antenna,
                rx_antenna=rx_antenna,
                relay_gain_dbi=scatterer.gain_dbi,
                reflectivity=scatterer.reflectivity,
                kind="scatterer",
            )
            if path is not None:
                paths.append(path)
        return paths

    def relay_path(
        self,
        tx: Point,
        via: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        relay_antenna_in: Optional[Antenna] = None,
        relay_antenna_out: Optional[Antenna] = None,
        relay_gain_dbi: float = 0.0,
        reflectivity: complex = 1.0 + 0.0j,
        extra_delay_s: float = 0.0,
        extra_phase_rad: float = 0.0,
        kind: str = "relay",
    ) -> Optional[SignalPath]:
        """A TX -> via -> RX two-hop path, or ``None`` if either leg is blocked.

        This is the primitive PRESS elements are built on: ``reflectivity``
        carries the element's switched reflection coefficient,
        ``extra_delay_s``/``extra_phase_rad`` the waveguide-stub delay, and
        the relay antennas the element's pattern (e.g. the 14 dBi parabolic
        dish of §3.1).

        Parameters
        ----------
        relay_antenna_in, relay_antenna_out:
            Patterns applied to the incident and re-radiated hop.  When
            ``None``, an isotropic pattern with ``relay_gain_dbi`` is used.
        relay_gain_dbi:
            Flat gain per hop, used only when the corresponding antenna is
            ``None``.
        """
        if not self.leg_is_clear(tx, via) or not self.leg_is_clear(via, rx):
            return None
        d1 = distance(tx, via)
        d2 = distance(via, rx)
        aod = (via - tx).angle()
        aoa = (via - rx).angle()
        incident_angle = (tx - via).angle()
        departure_angle = (rx - via).angle()
        if relay_antenna_in is not None:
            gain_in = relay_antenna_in.amplitude_gain(incident_angle)
        else:
            gain_in = 10.0 ** (relay_gain_dbi / 20.0)
        if relay_antenna_out is not None:
            gain_out = relay_antenna_out.amplitude_gain(departure_angle)
        else:
            gain_out = 10.0 ** (relay_gain_dbi / 20.0)
        gain = two_hop_gain(
            d1,
            d2,
            self.wavelength_m,
            tx_field_gain=tx_antenna.amplitude_gain(aod),
            rx_field_gain=rx_antenna.amplitude_gain(aoa),
            relay_field_gain_in=gain_in,
            relay_field_gain_out=gain_out,
            reflectivity=reflectivity,
        )
        gain *= cmath.exp(1j * extra_phase_rad)
        if abs(gain) == 0.0:
            return None
        return SignalPath(
            gain=gain,
            delay_s=(d1 + d2) / SPEED_OF_LIGHT + extra_delay_s,
            aod_rad=aod,
            aoa_rad=aoa,
            kind=kind,
            hops=1,
        )


def _same_segment(a: Segment, b: Segment) -> bool:
    """Whether two segments have identical endpoints (in either order)."""
    return (a.start == b.start and a.end == b.end) or (
        a.start == b.end and a.end == b.start
    )
