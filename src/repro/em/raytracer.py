"""Image-method ray tracer.

Computes the discrete multipath components (:class:`~repro.em.paths.SignalPath`)
between a transmitter and receiver in a :class:`~repro.em.scene.Scene`:

* the direct (line-of-sight) path, when not blocked;
* specular wall reflections up to two bounces, found with the classical
  image method (mirror the source across each wall, then across each ordered
  wall pair);
* single-bounce scattering off point scatterers;
* arbitrary two-hop relays (used by :mod:`repro.core` to model PRESS
  elements, which are exactly "antennas that re-radiate with a programmable
  reflection coefficient").

Amplitudes follow the Friis free-space law per hop: a one-hop field gain of
``lambda / (4 pi d)`` times the endpoint antennas' field gains; reflections
multiply in the wall material's complex reflection coefficient; two-hop
relays multiply the two hop gains and the relay's re-radiation pattern
(the standard backscatter link budget).  Carrier phase ``-2 pi L / lambda``
is folded into the complex path gain, and the propagation delay ``L / c``
drives per-subcarrier phase in :func:`repro.em.paths.paths_to_cfr`.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence, Union

import numpy as np

from ..constants import CARRIER_FREQUENCY_HZ, SPEED_OF_LIGHT
from ..obs.metrics import counter_handle
from .antennas import Antenna, IsotropicAntenna
from .geometry import (
    Point,
    Segment,
    SegmentArrays,
    Wall,
    distance,
    leg_blocked_packed,
    legs_blocked_packed,
    mirror_point,
    pack_segments,
    segment_intersection,
)
from .materials import get_material
from .paths import PathBatch, SignalPath
from .scene import Scene

__all__ = [
    "RayTracer",
    "free_space_amplitude",
    "carrier_phase",
    "two_hop_gain",
]

_EPS = 1e-9

_TRACES = counter_handle("em.raytracer.traces")
_BATCH_TRACES = counter_handle("em.raytracer.batch_traces")
_BATCH_POINTS = counter_handle("em.raytracer.batch_points")

#: Minimum hop distance [m] used in amplitude calculations, preventing the
#: near-field singularity of the Friis law when geometry degenerates.
MIN_HOP_DISTANCE_M = 0.05

_ENDPOINT_TOL = 1e-6


def free_space_amplitude(distance_m: float, wavelength_m: float) -> float:
    """One-hop free-space field gain ``lambda / (4 pi d)``.

    Distances below :data:`MIN_HOP_DISTANCE_M` are clamped.
    """
    if wavelength_m <= 0:
        raise ValueError(f"wavelength_m must be positive, got {wavelength_m}")
    d = max(distance_m, MIN_HOP_DISTANCE_M)
    return wavelength_m / (4.0 * math.pi * d)


def carrier_phase(total_length_m: float, wavelength_m: float) -> complex:
    """Carrier-phase rotation ``e^{-j 2 pi L / lambda}`` over path length L."""
    if wavelength_m <= 0:
        raise ValueError(f"wavelength_m must be positive, got {wavelength_m}")
    return cmath.exp(-2.0j * math.pi * total_length_m / wavelength_m)


def two_hop_gain(
    d1_m: float,
    d2_m: float,
    wavelength_m: float,
    tx_field_gain: float = 1.0,
    rx_field_gain: float = 1.0,
    relay_field_gain_in: float = 1.0,
    relay_field_gain_out: float = 1.0,
    reflectivity: complex = 1.0 + 0.0j,
) -> complex:
    """Complex field gain of a TX -> relay -> RX path.

    This is the backscatter link budget: the relay captures the incident
    field with its receive pattern, scales it by its complex reflectivity
    (for PRESS: the switched reflection coefficient), and re-radiates with
    its transmit pattern.  Carrier phase over ``d1 + d2`` is included.
    """
    amplitude = (
        free_space_amplitude(d1_m, wavelength_m)
        * free_space_amplitude(d2_m, wavelength_m)
        * tx_field_gain
        * rx_field_gain
        * relay_field_gain_in
        * relay_field_gain_out
    )
    return amplitude * reflectivity * carrier_phase(d1_m + d2_m, wavelength_m)


@dataclass(frozen=True)
class RayTracer:
    """Traces multipath components through a scene.

    Attributes
    ----------
    scene:
        The environment (walls, obstacles, scatterers).
    frequency_hz:
        Carrier frequency; sets the wavelength used for amplitudes and
        carrier phase.
    max_bounces:
        Maximum number of specular wall bounces (0, 1 or 2).
    """

    scene: Scene
    frequency_hz: float = CARRIER_FREQUENCY_HZ
    max_bounces: int = 2

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {self.frequency_hz}")
        if not 0 <= self.max_bounces <= 2:
            raise ValueError(f"max_bounces must be 0, 1 or 2, got {self.max_bounces}")

    @property
    def wavelength_m(self) -> float:
        return SPEED_OF_LIGHT / self.frequency_hz

    # ------------------------------------------------------------------
    # Blockage
    # ------------------------------------------------------------------
    @cached_property
    def _packed_blockers(self) -> SegmentArrays:
        """The scene's opaque segments packed into numpy arrays (built once).

        ``Scene`` is immutable, so the packed form is computed lazily on
        first blockage test and reused for the tracer's lifetime.
        """
        return pack_segments(self.scene.blocking_segments())

    def leg_is_clear(
        self,
        start: Point,
        end: Point,
        exclude: Sequence[Segment] = (),
    ) -> bool:
        """Whether a straight leg crosses no opaque segment.

        Segments in ``exclude`` (the walls the leg reflects off) are
        skipped, as are crossings that coincide with the leg's endpoints —
        a reflection point lies exactly on its wall by construction.  One
        broadcast intersection test over the packed scene segments replaces
        the per-segment Python loop.
        """
        packed = self._packed_blockers
        exclude_mask: Optional[np.ndarray] = None
        if exclude and len(packed):
            exclude_mask = np.zeros(len(packed), dtype=bool)
            for other in exclude:
                exclude_mask |= packed.match_mask(other)
        return not leg_blocked_packed(
            start, end, packed, exclude_mask=exclude_mask, endpoint_tol=_ENDPOINT_TOL
        )

    def has_line_of_sight(self, tx: Point, rx: Point) -> bool:
        """Whether the direct TX->RX path is unobstructed."""
        return self.leg_is_clear(tx, rx)

    # ------------------------------------------------------------------
    # Path construction
    # ------------------------------------------------------------------
    def trace(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        include_los: bool = True,
        include_scatterers: bool = True,
    ) -> list[SignalPath]:
        """All multipath components from ``tx`` to ``rx``.

        Returns LoS (if clear and requested), wall reflections up to
        ``max_bounces``, and scatterer bounces.  PRESS element paths are not
        produced here — the PRESS array layer adds them on top (they depend
        on the array configuration).
        """
        _TRACES.inc()
        paths: list[SignalPath] = []
        if include_los:
            los = self.line_of_sight_path(tx, rx, tx_antenna, rx_antenna)
            if los is not None:
                paths.append(los)
        if self.max_bounces >= 1:
            paths.extend(self.single_bounce_paths(tx, rx, tx_antenna, rx_antenna))
        if self.max_bounces >= 2:
            paths.extend(self.double_bounce_paths(tx, rx, tx_antenna, rx_antenna))
        if include_scatterers:
            paths.extend(self.scatterer_paths(tx, rx, tx_antenna, rx_antenna))
        return paths

    def line_of_sight_path(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> Optional[SignalPath]:
        """The direct path, or ``None`` if it is blocked."""
        if not self.has_line_of_sight(tx, rx):
            return None
        d = distance(tx, rx)
        aod = (rx - tx).angle()
        aoa = (tx - rx).angle()
        amplitude = (
            free_space_amplitude(d, self.wavelength_m)
            * tx_antenna.amplitude_gain(aod)
            * rx_antenna.amplitude_gain(aoa)
        )
        gain = amplitude * carrier_phase(d, self.wavelength_m)
        return SignalPath(
            gain=gain,
            delay_s=d / SPEED_OF_LIGHT,
            aod_rad=aod,
            aoa_rad=aoa,
            kind="los",
            hops=0,
        )

    def single_bounce_paths(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> list[SignalPath]:
        """Specular one-bounce wall reflections (image method)."""
        paths: list[SignalPath] = []
        for wall in self.scene.walls:
            path = self._wall_path(tx, rx, [wall], tx_antenna, rx_antenna)
            if path is not None:
                paths.append(path)
        return paths

    def double_bounce_paths(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> list[SignalPath]:
        """Specular two-bounce wall reflections over ordered wall pairs."""
        paths: list[SignalPath] = []
        for first in self.scene.walls:
            for second in self.scene.walls:
                if _same_segment(first.segment, second.segment):
                    continue
                path = self._wall_path(tx, rx, [first, second], tx_antenna, rx_antenna)
                if path is not None:
                    paths.append(path)
        return paths

    def _wall_path(
        self,
        tx: Point,
        rx: Point,
        walls: Sequence[Wall],
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> Optional[SignalPath]:
        """Specular path bouncing off ``walls`` in order, or ``None``.

        Uses the image method: mirror the source across each wall in
        sequence, then walk back from the receiver to recover the physical
        reflection points, validating that each lies on its wall segment and
        each leg is unobstructed.
        """
        # Forward pass: iterated images of the transmitter.
        images = [tx]
        for wall in walls:
            images.append(mirror_point(images[-1], wall.segment))
        # Backward pass: recover reflection points.
        vertices = [rx]
        target = rx
        valid = True
        for index in range(len(walls) - 1, -1, -1):
            wall = walls[index]
            ray = Segment(images[index + 1], target)
            hit = segment_intersection(ray, wall.segment)
            if hit is None or not wall.segment.contains_point(hit, tol=1e-6):
                valid = False
                break
            vertices.append(hit)
            target = hit
        if not valid:
            return None
        vertices.append(tx)
        vertices.reverse()  # tx, refl_1, ..., refl_k, rx
        # Degenerate geometry (reflection point coincides with an endpoint)
        # produces zero-length legs; treat as no path.
        legs = list(zip(vertices[:-1], vertices[1:]))
        if any(distance(a, b) <= _ENDPOINT_TOL for a, b in legs):
            return None
        # Blockage: each leg must be clear, ignoring the walls it touches.
        for leg_index, (start, end) in enumerate(legs):
            exclude: list[Segment] = []
            if leg_index > 0:
                exclude.append(walls[leg_index - 1].segment)
            if leg_index < len(walls):
                exclude.append(walls[leg_index].segment)
            if not self.leg_is_clear(start, end, exclude=exclude):
                return None
        total_length = sum(distance(a, b) for a, b in legs)
        reflection = complex(1.0, 0.0)
        for wall in walls:
            reflection *= get_material(wall.material).reflection_coefficient
        aod = (vertices[1] - tx).angle()
        aoa = (vertices[-2] - rx).angle()
        amplitude = (
            free_space_amplitude(total_length, self.wavelength_m)
            * tx_antenna.amplitude_gain(aod)
            * rx_antenna.amplitude_gain(aoa)
        )
        gain = amplitude * reflection * carrier_phase(total_length, self.wavelength_m)
        return SignalPath(
            gain=gain,
            delay_s=total_length / SPEED_OF_LIGHT,
            aod_rad=aod,
            aoa_rad=aoa,
            kind="wall-reflection",
            hops=len(walls),
        )

    def scatterer_paths(
        self,
        tx: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
    ) -> list[SignalPath]:
        """Single-bounce paths via each visible point scatterer."""
        paths: list[SignalPath] = []
        for scatterer in self.scene.scatterers:
            path = self.relay_path(
                tx,
                scatterer.position,
                rx,
                tx_antenna=tx_antenna,
                rx_antenna=rx_antenna,
                relay_gain_dbi=scatterer.gain_dbi,
                reflectivity=scatterer.reflectivity,
                kind="scatterer",
            )
            if path is not None:
                paths.append(path)
        return paths

    def relay_path(
        self,
        tx: Point,
        via: Point,
        rx: Point,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        relay_antenna_in: Optional[Antenna] = None,
        relay_antenna_out: Optional[Antenna] = None,
        relay_gain_dbi: float = 0.0,
        reflectivity: complex = 1.0 + 0.0j,
        extra_delay_s: float = 0.0,
        extra_phase_rad: float = 0.0,
        kind: str = "relay",
    ) -> Optional[SignalPath]:
        """A TX -> via -> RX two-hop path, or ``None`` if either leg is blocked.

        This is the primitive PRESS elements are built on: ``reflectivity``
        carries the element's switched reflection coefficient,
        ``extra_delay_s``/``extra_phase_rad`` the waveguide-stub delay, and
        the relay antennas the element's pattern (e.g. the 14 dBi parabolic
        dish of §3.1).

        Parameters
        ----------
        relay_antenna_in, relay_antenna_out:
            Patterns applied to the incident and re-radiated hop.  When
            ``None``, an isotropic pattern with ``relay_gain_dbi`` is used.
        relay_gain_dbi:
            Flat gain per hop, used only when the corresponding antenna is
            ``None``.
        """
        if not self.leg_is_clear(tx, via) or not self.leg_is_clear(via, rx):
            return None
        d1 = distance(tx, via)
        d2 = distance(via, rx)
        aod = (via - tx).angle()
        aoa = (via - rx).angle()
        incident_angle = (tx - via).angle()
        departure_angle = (rx - via).angle()
        if relay_antenna_in is not None:
            gain_in = relay_antenna_in.amplitude_gain(incident_angle)
        else:
            gain_in = 10.0 ** (relay_gain_dbi / 20.0)
        if relay_antenna_out is not None:
            gain_out = relay_antenna_out.amplitude_gain(departure_angle)
        else:
            gain_out = 10.0 ** (relay_gain_dbi / 20.0)
        gain = two_hop_gain(
            d1,
            d2,
            self.wavelength_m,
            tx_field_gain=tx_antenna.amplitude_gain(aod),
            rx_field_gain=rx_antenna.amplitude_gain(aoa),
            relay_field_gain_in=gain_in,
            relay_field_gain_out=gain_out,
            reflectivity=reflectivity,
        )
        gain *= cmath.exp(1j * extra_phase_rad)
        if abs(gain) == 0.0:
            return None
        return SignalPath(
            gain=gain,
            delay_s=(d1 + d2) / SPEED_OF_LIGHT + extra_delay_s,
            aod_rad=aod,
            aoa_rad=aoa,
            kind=kind,
            hops=1,
        )

    # ------------------------------------------------------------------
    # Batched path construction (geometry as the fast axis)
    # ------------------------------------------------------------------
    def trace_batch(
        self,
        tx: Point,
        rx_points: Union[Sequence[Point], np.ndarray],
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        include_los: bool = True,
        include_scatterers: bool = True,
    ) -> PathBatch:
        """All multipath components from ``tx`` to every point of a batch.

        Vectorizes the image method over an array of receiver positions:
        each candidate family (LoS, each wall, each ordered wall pair, each
        scatterer) evaluates its mirror/intersection/blockage tests for all
        P points with numpy broadcasts instead of P scalar traces.  The
        result reproduces per-point :meth:`trace` — same paths, same order,
        gains to machine precision (``tests/test_trace_batch.py``) — with
        :meth:`trace` kept as the scalar reference implementation.
        """
        pxs, pys = _points_to_arrays(rx_points)
        num = pxs.shape[0]
        _BATCH_TRACES.inc()
        _BATCH_POINTS.inc(num)
        columns: list[tuple[np.ndarray, ...]] = []
        kinds: list[str] = []
        hops: list[int] = []

        def add(gain, delay, aod, aoa, valid, kind: str, hop: int) -> None:
            columns.append(
                (
                    np.where(valid, gain, 0.0 + 0.0j),
                    np.where(valid, delay, 0.0),
                    aod,
                    aoa,
                    valid,
                )
            )
            kinds.append(kind)
            hops.append(hop)

        if include_los:
            add(*self._los_column(tx, pxs, pys, tx_antenna, rx_antenna), "los", 0)
        if self.max_bounces >= 1:
            for wall in self.scene.walls:
                add(
                    *self._wall_column(tx, pxs, pys, [wall], tx_antenna, rx_antenna),
                    "wall-reflection",
                    1,
                )
        if self.max_bounces >= 2:
            for first in self.scene.walls:
                for second in self.scene.walls:
                    if _same_segment(first.segment, second.segment):
                        continue
                    add(
                        *self._wall_column(
                            tx, pxs, pys, [first, second], tx_antenna, rx_antenna
                        ),
                        "wall-reflection",
                        2,
                    )
        if include_scatterers:
            for scatterer in self.scene.scatterers:
                add(
                    *self.relay_column(
                        tx,
                        scatterer.position,
                        pxs,
                        pys,
                        tx_antenna=tx_antenna,
                        rx_antenna=rx_antenna,
                        relay_gain_dbi=scatterer.gain_dbi,
                        reflectivity=scatterer.reflectivity,
                    ),
                    "scatterer",
                    1,
                )
        if not columns:
            empty_c = np.zeros((num, 0), dtype=complex)
            empty_f = np.zeros((num, 0), dtype=float)
            return PathBatch(
                gains=empty_c,
                delays_s=empty_f,
                aod_rad=empty_f,
                aoa_rad=empty_f.copy(),
                valid=np.zeros((num, 0), dtype=bool),
                kinds=(),
                hops=(),
            )
        return PathBatch(
            gains=np.stack([c[0] for c in columns], axis=1),
            delays_s=np.stack([c[1] for c in columns], axis=1),
            aod_rad=np.stack([c[2] for c in columns], axis=1),
            aoa_rad=np.stack([c[3] for c in columns], axis=1),
            valid=np.stack([c[4] for c in columns], axis=1),
            kinds=tuple(kinds),
            hops=tuple(hops),
        )

    def _leg_blocked_batch(
        self,
        start_x: np.ndarray,
        start_y: np.ndarray,
        end_x: np.ndarray,
        end_y: np.ndarray,
        exclude: Sequence[Segment] = (),
    ) -> np.ndarray:
        """Batched :meth:`leg_is_clear` complement over the packed scene."""
        packed = self._packed_blockers
        exclude_mask: Optional[np.ndarray] = None
        if exclude and len(packed):
            exclude_mask = np.zeros(len(packed), dtype=bool)
            for other in exclude:
                exclude_mask |= packed.match_mask(other)
        return legs_blocked_packed(
            start_x,
            start_y,
            end_x,
            end_y,
            packed,
            exclude_mask=exclude_mask,
            endpoint_tol=_ENDPOINT_TOL,
        )

    def _los_column(
        self,
        tx: Point,
        pxs: np.ndarray,
        pys: np.ndarray,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Direct-path candidate for every receiver point."""
        num = pxs.shape[0]
        blocked = self._leg_blocked_batch(
            np.full(num, tx.x), np.full(num, tx.y), pxs, pys
        )
        dx = pxs - tx.x
        dy = pys - tx.y
        d = np.hypot(dx, dy)
        aod = np.arctan2(dy, dx)
        aoa = np.arctan2(-dy, -dx)
        amplitude = (
            _free_space_amplitude_array(d, self.wavelength_m)
            * tx_antenna.amplitude_gain_array(aod)
            * rx_antenna.amplitude_gain_array(aoa)
        )
        gain = amplitude * np.exp(-2.0j * np.pi * d / self.wavelength_m)
        return gain, d / SPEED_OF_LIGHT, aod, aoa, ~blocked

    def _wall_column(
        self,
        tx: Point,
        pxs: np.ndarray,
        pys: np.ndarray,
        walls: Sequence[Wall],
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One wall (or ordered wall pair) specular candidate per point.

        The batched twin of :meth:`_wall_path`: iterated transmitter images
        are shared by every receiver, so the backward pass is one
        :func:`_ray_segment_hits` broadcast per wall and the blockage tests
        one :func:`legs_blocked_packed` call per leg.
        """
        num = pxs.shape[0]
        images = [tx]
        for wall in walls:
            images.append(mirror_point(images[-1], wall.segment))
        # Backward pass: recover reflection points for all rays at once.
        ok = np.ones(num, dtype=bool)
        hits_x: list[np.ndarray] = []
        hits_y: list[np.ndarray] = []
        target_x, target_y = pxs, pys
        for index in range(len(walls) - 1, -1, -1):
            hx, hy, hit_ok = _ray_segment_hits(
                images[index + 1], target_x, target_y, walls[index].segment, tol=1e-6
            )
            ok &= hit_ok
            hits_x.append(hx)
            hits_y.append(hy)
            target_x, target_y = hx, hy
        hits_x.reverse()
        hits_y.reverse()
        # vertices: tx, refl_1, ..., refl_k, rx (per point)
        verts_x = [np.full(num, tx.x)] + hits_x + [pxs]
        verts_y = [np.full(num, tx.y)] + hits_y + [pys]
        leg_lengths = [
            np.hypot(verts_x[i] - verts_x[i + 1], verts_y[i] - verts_y[i + 1])
            for i in range(len(verts_x) - 1)
        ]
        degenerate = np.zeros(num, dtype=bool)
        for length in leg_lengths:
            degenerate |= length <= _ENDPOINT_TOL
        blocked = np.zeros(num, dtype=bool)
        for leg_index in range(len(verts_x) - 1):
            exclude: list[Segment] = []
            if leg_index > 0:
                exclude.append(walls[leg_index - 1].segment)
            if leg_index < len(walls):
                exclude.append(walls[leg_index].segment)
            blocked |= self._leg_blocked_batch(
                verts_x[leg_index],
                verts_y[leg_index],
                verts_x[leg_index + 1],
                verts_y[leg_index + 1],
                exclude=exclude,
            )
        valid = ok & ~degenerate & ~blocked
        total = leg_lengths[0]
        for length in leg_lengths[1:]:
            total = total + length
        reflection = complex(1.0, 0.0)
        for wall in walls:
            reflection *= get_material(wall.material).reflection_coefficient
        aod = np.arctan2(verts_y[1] - tx.y, verts_x[1] - tx.x)
        aoa = np.arctan2(verts_y[-2] - pys, verts_x[-2] - pxs)
        amplitude = (
            _free_space_amplitude_array(total, self.wavelength_m)
            * tx_antenna.amplitude_gain_array(aod)
            * rx_antenna.amplitude_gain_array(aoa)
        )
        gain = amplitude * reflection * np.exp(-2.0j * np.pi * total / self.wavelength_m)
        return gain, total / SPEED_OF_LIGHT, aod, aoa, valid

    def relay_geometry_batch(
        self,
        tx: Point,
        via: Point,
        rx_x: np.ndarray,
        rx_y: np.ndarray,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        relay_antenna_in: Optional[Antenna] = None,
        relay_antenna_out: Optional[Antenna] = None,
        relay_gain_dbi: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Configuration-independent geometry of TX -> via -> each RX point.

        Returns ``(amplitude, total_length_m, aod, aoa, clear)``, all shape
        ``(P,)``.  ``amplitude`` is the real field amplitude of
        :func:`two_hop_gain` *before* reflectivity and carrier phase — the
        part shared by every relay state — so per-state gains fold in as
        ``amplitude * reflectivity * exp(-2j pi L / lambda)`` (exactly the
        scalar order of operations).  :meth:`ChannelBasis.trace_batch`
        builds its per-point state tensors on this.
        """
        num = rx_x.shape[0]
        if self.leg_is_clear(tx, via):
            clear = ~self._leg_blocked_batch(
                np.full(num, via.x), np.full(num, via.y), rx_x, rx_y
            )
        else:
            clear = np.zeros(num, dtype=bool)
        d1 = distance(tx, via)
        d2 = np.hypot(rx_x - via.x, rx_y - via.y)
        aod = np.full(num, (via - tx).angle())
        aoa = np.arctan2(via.y - rx_y, via.x - rx_x)
        incident_angle = (tx - via).angle()
        departure_angle = np.arctan2(rx_y - via.y, rx_x - via.x)
        if relay_antenna_in is not None:
            gain_in = relay_antenna_in.amplitude_gain(incident_angle)
        else:
            gain_in = 10.0 ** (relay_gain_dbi / 20.0)
        if relay_antenna_out is not None:
            gain_out = relay_antenna_out.amplitude_gain_array(departure_angle)
        else:
            gain_out = 10.0 ** (relay_gain_dbi / 20.0)
        amplitude = (
            free_space_amplitude(d1, self.wavelength_m)
            * _free_space_amplitude_array(d2, self.wavelength_m)
            * tx_antenna.amplitude_gain((via - tx).angle())
            * rx_antenna.amplitude_gain_array(aoa)
            * gain_in
            * gain_out
        )
        return amplitude, d1 + d2, aod, aoa, clear

    def relay_column(
        self,
        tx: Point,
        via: Point,
        rx_x: np.ndarray,
        rx_y: np.ndarray,
        tx_antenna: Antenna = IsotropicAntenna(),
        rx_antenna: Antenna = IsotropicAntenna(),
        relay_antenna_in: Optional[Antenna] = None,
        relay_antenna_out: Optional[Antenna] = None,
        relay_gain_dbi: float = 0.0,
        reflectivity: complex = 1.0 + 0.0j,
        extra_delay_s: float = 0.0,
        extra_phase_rad: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`relay_path`: TX -> via -> each RX point.

        Returns ``(gain, delay_s, aod, aoa, valid)``, all shape ``(P,)``.
        """
        amplitude, total, aod, aoa, clear = self.relay_geometry_batch(
            tx,
            via,
            rx_x,
            rx_y,
            tx_antenna=tx_antenna,
            rx_antenna=rx_antenna,
            relay_antenna_in=relay_antenna_in,
            relay_antenna_out=relay_antenna_out,
            relay_gain_dbi=relay_gain_dbi,
        )
        gain = amplitude * reflectivity * np.exp(
            -2.0j * np.pi * total / self.wavelength_m
        )
        gain = gain * cmath.exp(1j * extra_phase_rad)
        valid = clear & (np.abs(gain) != 0.0)
        delay = total / SPEED_OF_LIGHT + extra_delay_s
        return gain, delay, aod, aoa, valid


def _free_space_amplitude_array(
    distance_m: np.ndarray, wavelength_m: float
) -> np.ndarray:
    """Vectorized :func:`free_space_amplitude` (same clamp, same op order)."""
    return wavelength_m / (
        4.0 * np.pi * np.maximum(distance_m, MIN_HOP_DISTANCE_M)
    )


def _points_to_arrays(
    points: Union[Sequence[Point], np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Split a point batch into ``(x, y)`` float arrays.

    Accepts a sequence of :class:`Point` or an ``(P, 2)`` array.
    """
    if isinstance(points, np.ndarray):
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"point array must have shape (P, 2), got {arr.shape}")
        return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])
    xs = np.array([p.x for p in points], dtype=float)
    ys = np.array([p.y for p in points], dtype=float)
    return xs, ys


def _ray_segment_hits(
    start: Point,
    target_x: np.ndarray,
    target_y: np.ndarray,
    seg: Segment,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched image-method back-step: rays ``start -> target[i]`` vs one wall.

    Vectorizes ``segment_intersection(Segment(start, target), seg)`` plus
    the ``seg.contains_point(hit, tol)`` validity test of the scalar
    ``_wall_path``, branch for branch, over an array of ray targets.

    Returns ``(hit_x, hit_y, ok)`` where ``ok[i]`` means ray ``i`` crosses
    the wall segment at the returned point.
    """
    px, py = start.x, start.y
    rx = target_x - px
    ry = target_y - py
    qx, qy = seg.start.x, seg.start.y
    sx = seg.end.x - qx
    sy = seg.end.y - qy
    qpx = qx - px  # q - p is shared by every ray (same origin).
    qpy = qy - py
    rxs = rx * sy - ry * sx  # cross(r, s), (P,)
    qp_x_r = qpx * ry - qpy * rx  # cross(q - p, r), (P,)
    qp_x_s = qpx * sy - qpy * sx  # cross(q - p, s), scalar
    parallel = np.abs(rxs) < _EPS
    rxs_safe = np.where(parallel, 1.0, rxs)
    t_np = qp_x_s / rxs_safe
    u_np = qp_x_r / rxs_safe
    ok_np = (
        ~parallel
        & (t_np >= -_EPS)
        & (t_np <= 1.0 + _EPS)
        & (u_np >= -_EPS)
        & (u_np <= 1.0 + _EPS)
    )
    # Parallel rays: collinear overlap resolves to the overlap start;
    # degenerate (zero-length) rays hit at the ray origin if it lies on
    # the wall — which the contains test below settles.
    r_len2 = rx * rx + ry * ry
    degenerate = r_len2 < _EPS * _EPS
    r_len2_safe = np.where(degenerate, 1.0, r_len2)
    collinear = parallel & (np.abs(qp_x_r) <= _EPS)
    t0 = (qpx * rx + qpy * ry) / r_len2_safe
    t1 = t0 + (sx * rx + sy * ry) / r_len2_safe
    lo = np.minimum(t0, t1)
    hi = np.maximum(t0, t1)
    overlap = collinear & ~degenerate & (hi >= -_EPS) & (lo <= 1.0 + _EPS)
    ok_pre = ok_np | overlap | (collinear & degenerate)
    t_sel = np.where(parallel, np.clip(lo, 0.0, 1.0), np.clip(t_np, 0.0, 1.0))
    t_sel = np.where(degenerate, 0.0, t_sel)
    hit_x = px + t_sel * rx
    hit_y = py + t_sel * ry
    # Wall containment, replicating Segment.contains_point exactly.
    seg_len = np.hypot(sx, sy)
    if seg_len < _EPS:
        contains = np.hypot(hit_x - qx, hit_y - qy) <= tol
    else:
        rel_x = hit_x - qx
        rel_y = hit_y - qy
        perp = np.abs(sx * rel_y - sy * rel_x) / seg_len
        tt = (rel_x * sx + rel_y * sy) / (seg_len * seg_len)
        contains = (
            (perp <= tol) & (tt >= -tol / seg_len) & (tt <= 1.0 + tol / seg_len)
        )
    return hit_x, hit_y, ok_pre & contains


def _same_segment(a: Segment, b: Segment) -> bool:
    """Whether two segments have identical endpoints (in either order)."""
    return (a.start == b.start and a.end == b.end) or (
        a.start == b.end and a.end == b.start
    )
