"""Scene description: the indoor environment the radios and PRESS array live in.

A :class:`Scene` bundles the reflecting walls, absorbing obstacles and point
scatterers that make up an indoor propagation environment.  The §3 study was
run in "a controlled indoor setting" where "each antenna placement results in
a different scattering environment due to the movement of our experiment
equipment"; :func:`shoebox_scene` plus the seeded scatterer generator
reproduce that: one rectangular room, an absorbing blocker between TX and RX
for the NLoS experiments, and a per-trial random population of scatterers
standing in for the moved lab equipment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .geometry import Obstacle, Point, Segment, Wall, rectangle_walls

__all__ = [
    "Scatterer",
    "Scene",
    "shoebox_scene",
    "blocker_between",
    "surface_grid_positions",
]


@dataclass(frozen=True)
class Scatterer:
    """A point scatterer (furniture, lab equipment, a metal cabinet...).

    Attributes
    ----------
    position:
        Location in the floor plan.
    reflectivity:
        Complex field re-radiation coefficient (plays the role of the
        product Gamma * antenna response for a PRESS element); magnitude in
        [0, 1] with 1 meaning a perfect re-radiator.
    gain_dbi:
        Equivalent isotropic re-radiation gain (applied once each for the
        incident and scattered hop, like a passive element's antenna).
    """

    position: Point
    reflectivity: complex = 0.5 + 0.0j
    gain_dbi: float = 4.0

    def __post_init__(self) -> None:
        if abs(self.reflectivity) > 1.0 + 1e-9:
            raise ValueError(
                f"|reflectivity| must be <= 1 for a passive scatterer, got {abs(self.reflectivity)}"
            )


@dataclass(frozen=True)
class Scene:
    """An indoor propagation environment.

    Attributes
    ----------
    walls:
        Specularly reflecting boundaries.  Walls are also opaque: a ray leg
        crossing a wall (other than at its own reflection points) is blocked.
    obstacles:
        Perfectly absorbing blockers (e.g. the LoS blocker of §3.2).
    scatterers:
        Point scatterers contributing single-bounce paths.
    name:
        Human-readable label used in experiment reports.
    """

    walls: tuple[Wall, ...] = ()
    obstacles: tuple[Obstacle, ...] = ()
    scatterers: tuple[Scatterer, ...] = ()
    name: str = "scene"

    def with_obstacles(self, *obstacles: Obstacle) -> "Scene":
        """A copy of the scene with extra obstacles appended."""
        return Scene(
            walls=self.walls,
            obstacles=self.obstacles + tuple(obstacles),
            scatterers=self.scatterers,
            name=self.name,
        )

    def with_scatterers(self, *scatterers: Scatterer) -> "Scene":
        """A copy of the scene with extra scatterers appended."""
        return Scene(
            walls=self.walls,
            obstacles=self.obstacles,
            scatterers=self.scatterers + tuple(scatterers),
            name=self.name,
        )

    def blocking_segments(self) -> list[Segment]:
        """All opaque segments (walls and obstacles) for blockage tests."""
        segments = [wall.segment for wall in self.walls]
        segments.extend(obstacle.segment for obstacle in self.obstacles)
        return segments


def shoebox_scene(
    width: float = 8.0,
    height: float = 6.0,
    material: str = "drywall",
    num_scatterers: int = 0,
    rng: Optional[np.random.Generator] = None,
    scatterer_margin: float = 0.5,
    reflectivity_range: tuple[float, float] = (0.3, 0.9),
    name: str = "shoebox",
) -> Scene:
    """A rectangular room, optionally populated with random scatterers.

    Parameters
    ----------
    width, height:
        Interior room dimensions in metres.
    material:
        Wall material (see :mod:`repro.em.materials`).
    num_scatterers:
        Number of random point scatterers to draw (requires ``rng``).
    rng:
        Random generator used for scatterer placement and reflectivity.
    scatterer_margin:
        Keep scatterers at least this far from the walls.
    reflectivity_range:
        Uniform range for scatterer |reflectivity|; phases are uniform.
    name:
        Scene label.
    """
    walls = tuple(rectangle_walls(width, height, material=material))
    scatterers: list[Scatterer] = []
    if num_scatterers > 0:
        if rng is None:
            raise ValueError("num_scatterers > 0 requires an rng")
        if 2 * scatterer_margin >= min(width, height):
            raise ValueError("scatterer_margin too large for the room size")
        for _ in range(num_scatterers):
            position = Point(
                float(rng.uniform(scatterer_margin, width - scatterer_margin)),
                float(rng.uniform(scatterer_margin, height - scatterer_margin)),
            )
            magnitude = float(rng.uniform(*reflectivity_range))
            phase = float(rng.uniform(0.0, 2.0 * math.pi))
            scatterers.append(
                Scatterer(
                    position=position,
                    reflectivity=magnitude * complex(math.cos(phase), math.sin(phase)),
                )
            )
    return Scene(walls=walls, scatterers=tuple(scatterers), name=name)


def surface_grid_positions(
    start: Point,
    end: Point,
    count: int,
    rows: int = 1,
    standoff_m: float = 0.05,
    row_spacing_m: float = 0.06,
) -> tuple[Point, ...]:
    """Element positions tiling a wall-sized programmable surface.

    Lays ``count`` positions in ``rows`` rows parallel to the ``start`` ->
    ``end`` segment, offset into the room by ``standoff_m`` along the
    left-hand normal (so a surface on the top wall of a shoebox faces
    down into it).  Columns are evenly spaced along the segment; rows
    step a further ``row_spacing_m`` inward.  Purely deterministic — the
    RFocus-scale builder (``build_large_array_setup``) scales ``count``
    into the thousands without touching any RNG stream.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if rows <= 0:
        raise ValueError(f"rows must be positive, got {rows}")
    direction = end - start
    length = direction.norm()
    if length <= 0:
        raise ValueError("start and end must be distinct points")
    unit = direction.normalized()
    normal = Point(-unit.y, unit.x)
    columns = -(-count // rows)  # ceil: last row may be partial
    positions: list[Point] = []
    for index in range(count):
        row, column = divmod(index, columns)
        if columns == 1:
            along = 0.5 * length
        else:
            along = length * column / (columns - 1)
        inward = standoff_m + row * row_spacing_m
        positions.append(start + along * unit + inward * normal)
    return tuple(positions)


def blocker_between(
    tx: Point,
    rx: Point,
    half_width: float = 0.5,
    offset: float = 0.0,
) -> Obstacle:
    """An absorbing obstacle perpendicular to (and centred on) the TX–RX line.

    Reproduces the §3.2 setup "that blocks the direct path between the
    transmitter and receiver".

    Parameters
    ----------
    tx, rx:
        Link endpoints.
    half_width:
        Half-length of the blocking segment in metres.
    offset:
        Fractional position along the TX->RX line of the blocker centre,
        where 0 is the midpoint, -0.5 is at the TX and +0.5 is at the RX.
    """
    direction = rx - tx
    length = direction.norm()
    if length <= 0:
        raise ValueError("tx and rx must be distinct points")
    unit = direction.normalized()
    normal = Point(-unit.y, unit.x)
    centre = tx + (0.5 + offset) * length * unit
    start = centre + half_width * normal
    end = centre + (-half_width) * normal
    return Obstacle(segment=Segment(start, end), name="los-blocker")
