"""Process-wide geometry trace cache, keyed by scene fingerprint.

Every experiment that re-builds a testbed for the same placement seed used
to re-trace identical geometry: ``run_fig6`` and ``run_fig7`` construct a
fresh :class:`~repro.sdr.testbed.Testbed` per call, and a figure suite run
back-to-back repeats the same (scene, endpoints) traces many times over.

All the scene types are immutable value dataclasses, so a trace is fully
determined by the *values* of ``(scene, frequency, max_bounces, tx, rx,
antennas)`` — that tuple is the cache key (the "scene fingerprint").  Two
testbeds built from the same placement seed hash to the same key and share
one trace, across instances and across experiments within a process.

The cache is a bounded LRU; worker processes of the parallel experiment
runner each hold their own copy (it is per-process state, never pickled).
Hit/miss/eviction totals are mirrored into the observability registry
(``em.trace_cache.*``) so the parallel runner can merge complete run-level
cache statistics across workers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable, Optional

import numpy as np

from ..obs.metrics import counter_handle, gauge_handle
from .antennas import Antenna
from .geometry import Point
from .paths import PathBatch, SignalPath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .raytracer import RayTracer

__all__ = ["TraceCache", "configure", "global_trace_cache", "reset"]

#: Default bound on cached traces.  A coverage run touches a few hundred
#: endpoints per placement; 4096 comfortably holds several placements.
DEFAULT_MAXSIZE = 4096

#: Approximate resident size of one cached :class:`SignalPath`.  The exact
#: CPython figure varies by version and field values; the budget only needs
#: the right order of magnitude to keep batch entries (megabytes of packed
#: arrays) from starving scalar ones.
_SIGNAL_PATH_NBYTES = 160

_HITS = counter_handle("em.trace_cache.hits")
_MISSES = counter_handle("em.trace_cache.misses")
_EVICTIONS = counter_handle("em.trace_cache.evictions")
_BATCH_HITS = counter_handle("em.trace_cache.batch_hits")
_BATCH_MISSES = counter_handle("em.trace_cache.batch_misses")
_ENTRIES = gauge_handle("em.trace_cache.entries")
_BYTES = gauge_handle("em.trace_cache.bytes")
_HIT_RATE = gauge_handle("em.trace_cache.hit_rate")


def _entry_nbytes(value: object) -> int:
    """Approximate resident bytes of one cached value.

    PathBatch entries are dominated by their packed numpy arrays, which
    report exact ``nbytes``; scalar path tuples use a fixed per-path
    estimate (see :data:`_SIGNAL_PATH_NBYTES`).
    """
    if isinstance(value, PathBatch):
        total = 0
        for field in (value.gains, value.delays_s, value.aod_rad, value.aoa_rad, value.valid):
            if isinstance(field, np.ndarray):
                total += int(field.nbytes)
        return max(total, 1)
    if isinstance(value, tuple):
        return max(len(value), 1) * _SIGNAL_PATH_NBYTES
    return _SIGNAL_PATH_NBYTES


class TraceCache:
    """A bounded LRU cache of ambient traces keyed by geometry values.

    Keys combine the tracer's scene fingerprint (the scene value itself —
    an immutable dataclass hashing by field values) with its radio
    parameters and the endpoint positions/antennas.  Values are the packed
    ``tuple[SignalPath, ...]`` of :meth:`RayTracer.trace` — or, for the
    batched entry point, the :class:`~repro.em.paths.PathBatch` of
    :meth:`RayTracer.trace_batch` keyed by the raw coordinate bytes.

    ``hits``/``misses``/``evictions`` count per-instance; the same events
    are mirrored into the global metrics registry under
    ``em.trace_cache.*`` so run records see totals across all instances
    and worker processes.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_MAXSIZE,
        max_bytes: Optional[int] = None,
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache since the last reset."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @staticmethod
    def key(
        tracer: "RayTracer",
        tx: Point,
        rx: Point,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> Hashable:
        """The scene-fingerprint cache key for one trace."""
        return (
            tracer.scene,
            tracer.frequency_hz,
            tracer.max_bounces,
            tx,
            rx,
            tx_antenna,
            rx_antenna,
        )

    @staticmethod
    def batch_key(
        tracer: "RayTracer",
        tx: Point,
        rx_points,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> Hashable:
        """The cache key for one batched trace (coordinate grid by value)."""
        from .raytracer import _points_to_arrays

        xs, ys = _points_to_arrays(rx_points)
        return (
            "batch",
            tracer.scene,
            tracer.frequency_hz,
            tracer.max_bounces,
            tx,
            xs.shape,
            xs.tobytes(),
            ys.tobytes(),
            tx_antenna,
            rx_antenna,
        )

    def _store(self, key: Hashable, value: object) -> None:
        nbytes = _entry_nbytes(value)
        self._entries[key] = value
        self._sizes[key] = nbytes
        self.current_bytes += nbytes
        while len(self._entries) > self.maxsize or (
            self.max_bytes is not None
            and self.current_bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            evicted_key, _ = self._entries.popitem(last=False)
            self.current_bytes -= self._sizes.pop(evicted_key)
            self.evictions += 1
            _EVICTIONS.inc()
        _ENTRIES.set(len(self._entries))
        _BYTES.set(self.current_bytes)

    def _record_hit(self, mirror) -> None:
        self.hits += 1
        mirror.inc()
        _HIT_RATE.set(self.hit_rate)

    def _record_miss(self, mirror) -> None:
        self.misses += 1
        mirror.inc()
        _HIT_RATE.set(self.hit_rate)

    def get_or_trace(
        self,
        tracer: "RayTracer",
        tx: Point,
        rx: Point,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> tuple[SignalPath, ...]:
        """The cached trace for these values, tracing on first request."""
        key = self.key(tracer, tx, rx, tx_antenna, rx_antenna)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self._record_hit(_HITS)
            return cached  # type: ignore[return-value]
        self._record_miss(_MISSES)
        paths = tuple(tracer.trace(tx, rx, tx_antenna, rx_antenna))
        self._store(key, paths)
        return paths

    def get_or_trace_batch(
        self,
        tracer: "RayTracer",
        tx: Point,
        rx_points,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> PathBatch:
        """The cached batched trace for a batch of receiver points.

        Keys by the raw bytes of the coordinate arrays, so re-running the
        same coverage grid (across figure calls, or across repeats within
        a worker) reuses one :class:`~repro.em.paths.PathBatch` instead of
        re-tracing.  Batch lookups are counted separately
        (``em.trace_cache.batch_hits``/``batch_misses``) from per-link
        ones, since one batch stands in for hundreds of point traces.
        """
        key = self.batch_key(tracer, tx, rx_points, tx_antenna, rx_antenna)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self._record_hit(_BATCH_HITS)
            return cached  # type: ignore[return-value]
        self._record_miss(_BATCH_MISSES)
        batch = tracer.trace_batch(tx, rx_points, tx_antenna, rx_antenna)
        self._store(key, batch)
        return batch

    def reset_counters(self) -> None:
        """Zero hit/miss/eviction counters without dropping entries.

        Benchmarks call this between phases so one phase's warm-up traffic
        does not bleed into the next phase's statistics.
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _HIT_RATE.set(0.0)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss/eviction counters."""
        self._entries.clear()
        self._sizes.clear()
        self.current_bytes = 0
        self.reset_counters()
        _ENTRIES.set(0)
        _BYTES.set(0)


_GLOBAL_CACHE = TraceCache()


def global_trace_cache() -> TraceCache:
    """The process-wide trace cache shared by all testbeds."""
    return _GLOBAL_CACHE


def configure(
    maxsize: int = DEFAULT_MAXSIZE, max_bytes: Optional[int] = None
) -> TraceCache:
    """Replace the process-wide cache with a freshly sized, empty one.

    The serving layer calls this at startup to pin an explicit budget, and
    test suites use it (via the autouse fixture in ``tests/conftest.py``)
    to stop cached traces and hit/miss counts leaking between tests.
    Returns the new cache, which :func:`global_trace_cache` hands out from
    now on.  Existing references to the old cache keep working but no
    longer see global traffic.
    """
    global _GLOBAL_CACHE
    _GLOBAL_CACHE.clear()
    _GLOBAL_CACHE = TraceCache(maxsize=maxsize, max_bytes=max_bytes)
    return _GLOBAL_CACHE


def reset() -> TraceCache:
    """Restore the process-wide cache to a default-sized empty one."""
    return configure()
