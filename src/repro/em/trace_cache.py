"""Process-wide geometry trace cache, keyed by scene fingerprint.

Every experiment that re-builds a testbed for the same placement seed used
to re-trace identical geometry: ``run_fig6`` and ``run_fig7`` construct a
fresh :class:`~repro.sdr.testbed.Testbed` per call, and a figure suite run
back-to-back repeats the same (scene, endpoints) traces many times over.

All the scene types are immutable value dataclasses, so a trace is fully
determined by the *values* of ``(scene, frequency, max_bounces, tx, rx,
antennas)`` — that tuple is the cache key (the "scene fingerprint").  Two
testbeds built from the same placement seed hash to the same key and share
one trace, across instances and across experiments within a process.

The cache is a bounded LRU; worker processes of the parallel experiment
runner each hold their own copy (it is per-process state, never pickled).
Hit/miss/eviction totals are mirrored into the observability registry
(``em.trace_cache.*``) so the parallel runner can merge complete run-level
cache statistics across workers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from ..obs.metrics import global_registry
from .antennas import Antenna
from .geometry import Point
from .paths import PathBatch, SignalPath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .raytracer import RayTracer

__all__ = ["TraceCache", "global_trace_cache"]

#: Default bound on cached traces.  A coverage run touches a few hundred
#: endpoints per placement; 4096 comfortably holds several placements.
DEFAULT_MAXSIZE = 4096

_HITS = global_registry().counter("em.trace_cache.hits")
_MISSES = global_registry().counter("em.trace_cache.misses")
_EVICTIONS = global_registry().counter("em.trace_cache.evictions")
_BATCH_HITS = global_registry().counter("em.trace_cache.batch_hits")
_BATCH_MISSES = global_registry().counter("em.trace_cache.batch_misses")
_ENTRIES = global_registry().gauge("em.trace_cache.entries")


class TraceCache:
    """A bounded LRU cache of ambient traces keyed by geometry values.

    Keys combine the tracer's scene fingerprint (the scene value itself —
    an immutable dataclass hashing by field values) with its radio
    parameters and the endpoint positions/antennas.  Values are the packed
    ``tuple[SignalPath, ...]`` of :meth:`RayTracer.trace` — or, for the
    batched entry point, the :class:`~repro.em.paths.PathBatch` of
    :meth:`RayTracer.trace_batch` keyed by the raw coordinate bytes.

    ``hits``/``misses``/``evictions`` count per-instance; the same events
    are mirrored into the global metrics registry under
    ``em.trace_cache.*`` so run records see totals across all instances
    and worker processes.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        tracer: "RayTracer",
        tx: Point,
        rx: Point,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> Hashable:
        """The scene-fingerprint cache key for one trace."""
        return (
            tracer.scene,
            tracer.frequency_hz,
            tracer.max_bounces,
            tx,
            rx,
            tx_antenna,
            rx_antenna,
        )

    @staticmethod
    def batch_key(
        tracer: "RayTracer",
        tx: Point,
        rx_points,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> Hashable:
        """The cache key for one batched trace (coordinate grid by value)."""
        from .raytracer import _points_to_arrays

        xs, ys = _points_to_arrays(rx_points)
        return (
            "batch",
            tracer.scene,
            tracer.frequency_hz,
            tracer.max_bounces,
            tx,
            xs.shape,
            xs.tobytes(),
            ys.tobytes(),
            tx_antenna,
            rx_antenna,
        )

    def _store(self, key: Hashable, value: object) -> None:
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            _EVICTIONS.inc()
        _ENTRIES.set(len(self._entries))

    def get_or_trace(
        self,
        tracer: "RayTracer",
        tx: Point,
        rx: Point,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> tuple[SignalPath, ...]:
        """The cached trace for these values, tracing on first request."""
        key = self.key(tracer, tx, rx, tx_antenna, rx_antenna)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            _HITS.inc()
            return cached  # type: ignore[return-value]
        self.misses += 1
        _MISSES.inc()
        paths = tuple(tracer.trace(tx, rx, tx_antenna, rx_antenna))
        self._store(key, paths)
        return paths

    def get_or_trace_batch(
        self,
        tracer: "RayTracer",
        tx: Point,
        rx_points,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> PathBatch:
        """The cached batched trace for a batch of receiver points.

        Keys by the raw bytes of the coordinate arrays, so re-running the
        same coverage grid (across figure calls, or across repeats within
        a worker) reuses one :class:`~repro.em.paths.PathBatch` instead of
        re-tracing.  Batch lookups are counted separately
        (``em.trace_cache.batch_hits``/``batch_misses``) from per-link
        ones, since one batch stands in for hundreds of point traces.
        """
        key = self.batch_key(tracer, tx, rx_points, tx_antenna, rx_antenna)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            _BATCH_HITS.inc()
            return cached  # type: ignore[return-value]
        self.misses += 1
        _BATCH_MISSES.inc()
        batch = tracer.trace_batch(tx, rx_points, tx_antenna, rx_antenna)
        self._store(key, batch)
        return batch

    def reset_counters(self) -> None:
        """Zero hit/miss/eviction counters without dropping entries.

        Benchmarks call this between phases so one phase's warm-up traffic
        does not bleed into the next phase's statistics.
        """
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss/eviction counters."""
        self._entries.clear()
        self.reset_counters()
        _ENTRIES.set(0)


_GLOBAL_CACHE = TraceCache()


def global_trace_cache() -> TraceCache:
    """The process-wide trace cache shared by all testbeds."""
    return _GLOBAL_CACHE
