"""Process-wide geometry trace cache, keyed by scene fingerprint.

Every experiment that re-builds a testbed for the same placement seed used
to re-trace identical geometry: ``run_fig6`` and ``run_fig7`` construct a
fresh :class:`~repro.sdr.testbed.Testbed` per call, and a figure suite run
back-to-back repeats the same (scene, endpoints) traces many times over.

All the scene types are immutable value dataclasses, so a trace is fully
determined by the *values* of ``(scene, frequency, max_bounces, tx, rx,
antennas)`` — that tuple is the cache key (the "scene fingerprint").  Two
testbeds built from the same placement seed hash to the same key and share
one trace, across instances and across experiments within a process.

The cache is a bounded LRU; worker processes of the parallel experiment
runner each hold their own copy (it is per-process state, never pickled).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from .antennas import Antenna
from .geometry import Point
from .paths import SignalPath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .raytracer import RayTracer

__all__ = ["TraceCache", "global_trace_cache"]

#: Default bound on cached traces.  A coverage run touches a few hundred
#: endpoints per placement; 4096 comfortably holds several placements.
DEFAULT_MAXSIZE = 4096


class TraceCache:
    """A bounded LRU cache of ambient traces keyed by geometry values.

    Keys combine the tracer's scene fingerprint (the scene value itself —
    an immutable dataclass hashing by field values) with its radio
    parameters and the endpoint positions/antennas.  Values are the packed
    ``tuple[SignalPath, ...]`` of :meth:`RayTracer.trace`.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, tuple[SignalPath, ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        tracer: "RayTracer",
        tx: Point,
        rx: Point,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> Hashable:
        """The scene-fingerprint cache key for one trace."""
        return (
            tracer.scene,
            tracer.frequency_hz,
            tracer.max_bounces,
            tx,
            rx,
            tx_antenna,
            rx_antenna,
        )

    def get_or_trace(
        self,
        tracer: "RayTracer",
        tx: Point,
        rx: Point,
        tx_antenna: Antenna,
        rx_antenna: Antenna,
    ) -> tuple[SignalPath, ...]:
        """The cached trace for these values, tracing on first request."""
        key = self.key(tracer, tx, rx, tx_antenna, rx_antenna)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        paths = tuple(tracer.trace(tx, rx, tx_antenna, rx_antenna))
        self._entries[key] = paths
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return paths

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_GLOBAL_CACHE = TraceCache()


def global_trace_cache() -> TraceCache:
    """The process-wide trace cache shared by all testbeds."""
    return _GLOBAL_CACHE
