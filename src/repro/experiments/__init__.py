"""Experiment drivers reproducing the paper's §3 exploratory study."""

from .common import (
    FIG5_PLACEMENT_SEED,
    StudyConfig,
    StudySetup,
    build_harmonization_setup,
    build_large_array_setup,
    build_los_setup,
    build_mimo_setup,
    build_nlos_setup,
    build_study_scene,
    facing_panel,
    used_subcarrier_mask,
)
from .alignment_study import AlignmentResult, run_alignment_study
from .control_robustness import (
    ControlRobustnessCell,
    ControlRobustnessResult,
    control_link_by_name,
    run_control_robustness,
)
from .coverage import CoverageMap, run_coverage, run_coverage_suite
from .fig4_link_enhancement import Fig4PlacementResult, Fig4Result, run_fig4
from .fig5_null_movement import Fig5Result, run_fig5
from .fig6_snr_ccdf import Fig6Result, run_fig6
from .fig7_harmonization import Fig7Result, run_fig7
from .fig8_mimo import Fig8Result, run_fig8
from .large_array import (
    LargeArrayCell,
    LargeArrayResult,
    make_searcher,
    run_large_array,
)
from .los_study import LosStudyResult, run_los_study
from .mac_harmonization import MacHarmonizationResult, run_mac_harmonization
from .mu_mimo import MuMimoResult, mu_mimo_matrices, run_mu_mimo, zf_sum_rate_bits
from .multi_user import (
    AdmissionPoint,
    MultiUserCell,
    MultiUserResult,
    build_user_links,
    run_multi_user,
)
from .runner import (
    available_cpus,
    derive_seeds,
    merged_telemetry,
    process_telemetry,
    resolve_jobs,
    run_parallel,
)
from .tracking import TrackingResult, run_tracking
from .workloads import (
    DynamicStrategyResult,
    TrafficEpoch,
    evaluate_dynamic_strategies,
    generate_traffic,
)

__all__ = [
    "StudyConfig",
    "StudySetup",
    "build_study_scene",
    "build_nlos_setup",
    "build_los_setup",
    "build_harmonization_setup",
    "build_large_array_setup",
    "build_mimo_setup",
    "facing_panel",
    "used_subcarrier_mask",
    "FIG5_PLACEMENT_SEED",
    "Fig4Result",
    "Fig4PlacementResult",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    "LargeArrayCell",
    "LargeArrayResult",
    "make_searcher",
    "run_large_array",
    "LosStudyResult",
    "run_los_study",
    "MacHarmonizationResult",
    "run_mac_harmonization",
    "TrackingResult",
    "run_tracking",
    "CoverageMap",
    "run_coverage",
    "run_coverage_suite",
    "available_cpus",
    "resolve_jobs",
    "derive_seeds",
    "run_parallel",
    "process_telemetry",
    "merged_telemetry",
    "ControlRobustnessCell",
    "ControlRobustnessResult",
    "control_link_by_name",
    "run_control_robustness",
    "AlignmentResult",
    "run_alignment_study",
    "MuMimoResult",
    "mu_mimo_matrices",
    "zf_sum_rate_bits",
    "run_mu_mimo",
    "AdmissionPoint",
    "MultiUserCell",
    "MultiUserResult",
    "build_user_links",
    "run_multi_user",
    "TrafficEpoch",
    "generate_traffic",
    "DynamicStrategyResult",
    "evaluate_dynamic_strategies",
]
