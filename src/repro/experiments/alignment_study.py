"""Interference alignment via the environment (§1's harmonization list).

"aligning the interference that two networks cause at a receiver in a
third network, so that that receiver may remove the interference from both
interfering networks in a single nulling step."

Two interfering APs transmit near a two-antenna bystander receiver.  The
bystander has one spatial degree of freedom to burn on a null; if the two
interference vectors arrive aligned (collinear in antenna space), one null
removes both.  PRESS can steer that alignment from the walls: this
experiment sweeps the array, measures the per-configuration alignment and
the residual interference-to-noise ratio after the single null.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import dbm_to_watts, thermal_noise_power_w
from ..core.configuration import ArrayConfiguration
from ..em.channel import subcarrier_frequencies
from ..em.geometry import Point
from ..em.paths import paths_to_cfr
from ..net.alignment import mean_alignment_cosine, post_nulling_inr_db
from ..sdr.device import usrp_x310, warp_v3
from ..sdr.testbed import Testbed
from .common import StudyConfig, build_study_scene, used_subcarrier_mask
from ..em.scene import blocker_between
from ..core.array import PressArray
from ..core.element import omni_element
from ..em.geometry import points_on_grid

__all__ = ["AlignmentResult", "run_alignment_study"]


@dataclass(frozen=True)
class AlignmentResult:
    """Per-configuration interference alignment at the bystander.

    Attributes
    ----------
    alignment:
        Mean alignment cosine per configuration (1 = collinear).
    residual_inr_db:
        Mean post-single-null interference-to-noise ratio per
        configuration.
    labels:
        Configuration labels in sweep order.
    """

    alignment: np.ndarray
    residual_inr_db: np.ndarray
    labels: tuple[str, ...]

    @property
    def best_configuration(self) -> int:
        """Most aligned configuration."""
        return int(np.argmax(self.alignment))

    @property
    def worst_configuration(self) -> int:
        return int(np.argmin(self.alignment))

    @property
    def alignment_spread(self) -> float:
        return float(self.alignment.max() - self.alignment.min())

    @property
    def inr_improvement_db(self) -> float:
        """Residual-INR reduction from worst-aligned to best-aligned."""
        return float(
            self.residual_inr_db[self.worst_configuration]
            - self.residual_inr_db[self.best_configuration]
        )


def run_alignment_study(
    placement_seed: int = 0,
    config: StudyConfig = StudyConfig(),
    element_gain_dbi: float = 2.0,
) -> AlignmentResult:
    """Sweep the array, measuring alignment at a 2-antenna bystander.

    Geometry: the two interfering APs stand at the study's TX/RX positions;
    the bystander (a 2-chain USRP X310) sits across the room with three
    PRESS elements deployed nearby (the §2 guidance to "focus the search in
    the vicinity of intended receivers").
    """
    rng = np.random.default_rng(placement_seed)
    clutter_rng = np.random.default_rng([placement_seed, 77])
    scene = build_study_scene(config, rng, blocked=False, clutter_rng=clutter_rng)
    ap1 = warp_v3("ap-1", config.tx_position())
    ap2 = warp_v3("ap-2", config.rx_position())
    bystander_pos = Point(
        config.room_width_m * 0.55, config.room_height_m * 0.72
    )
    # Block the bystander's direct view of both APs: with LoS interference
    # the endpoint geometry fixes the alignment; through multipath the
    # walls (and hence PRESS) control it.
    scene = scene.with_obstacles(
        blocker_between(ap1.position, bystander_pos, half_width=0.35),
        blocker_between(ap2.position, bystander_pos, half_width=0.35),
    )
    bystander = usrp_x310("bystander", bystander_pos)
    element_positions = points_on_grid(
        3,
        (bystander_pos.x - 1.0, bystander_pos.x + 1.0),
        (bystander_pos.y - 1.8, bystander_pos.y - 0.8),
        config.element_grid_rows,
        config.element_grid_cols,
        rng,
    )
    array = PressArray.from_elements(
        [
            omni_element(p, name=f"e{i}", gain_dbi=element_gain_dbi)
            for i, p in enumerate(element_positions)
        ]
    )
    testbed = Testbed(scene=scene, array=array)
    mask = used_subcarrier_mask()
    freqs = subcarrier_frequencies(testbed.num_subcarriers, testbed.bandwidth_hz)
    num_sc = testbed.num_subcarriers
    interferer_power = dbm_to_watts(config.tx_power_dbm) / num_sc
    noise_power = thermal_noise_power_w(
        testbed.bandwidth_hz / num_sc, bystander.noise_figure_db
    )

    def interference_vectors(
        ap, configuration: ArrayConfiguration
    ) -> np.ndarray:
        """(used subcarriers, 2 antennas) interference channel from one AP."""
        vectors = np.zeros((num_sc, bystander.num_chains), dtype=complex)
        for chain in range(bystander.num_chains):
            env = testbed.environment_paths(ap, bystander, 0, chain)
            press = array.element_paths(
                configuration,
                ap.position,
                bystander.chains[chain].position,
                testbed.tracer,
                ap.chains[0].antenna,
                bystander.chains[chain].antenna,
            )
            vectors[:, chain] = paths_to_cfr(list(env) + press, freqs)
        return vectors[mask]

    space = array.configuration_space()
    alignments = []
    residuals = []
    labels = []
    for configuration in space.all_configurations():
        h1 = interference_vectors(ap1, configuration)
        h2 = interference_vectors(ap2, configuration)
        alignments.append(mean_alignment_cosine(h1, h2))
        inrs = [
            post_nulling_inr_db(a, b, interferer_power, noise_power)
            for a, b in zip(h1, h2)
        ]
        residuals.append(float(np.mean(inrs)))
        labels.append(array.describe(configuration))
    return AlignmentResult(
        alignment=np.array(alignments),
        residual_inr_db=np.array(residuals),
        labels=tuple(labels),
    )
