"""The §3 exploratory-study setup, as a reproducible scenario generator.

The paper's study ran in "a controlled indoor setting": WARP endpoints with
2 dBi omnis, the direct path blocked, three SP4T-switched PRESS elements
placed "in eight randomly generated locations in a grid 1-2 meters from
both the transmitting and receiving antennas", and an ambient scattering
environment that changed per placement "due to the movement of our
experiment equipment".

This module rebuilds that lab in simulation.  The scene is calibrated (see
DESIGN.md and EXPERIMENTS.md) so the *statistics* of the sweeps match the
paper's reported shapes:

* walls carry a low effective specular reflectivity (|Gamma| = 0.12) —
  in a cluttered lab most wall energy is scattered diffusely, not returned
  specularly;
* one partially-reflective "shelf" panel far from the link, oriented for a
  specular TX -> panel -> RX bounce, supplies the long-delay (~58 ns)
  multipath component that real labs get from multi-bounce clutter — this
  is what puts a frequency null inside the 20 MHz band and sets the
  ~9-subcarrier null-movement quantum the paper reports;
* per-placement random scatterers play the moved lab equipment;
* PRESS elements use a modest -1.5 dBi effective bistatic gain: the prototype's
  14 dBi parabolic cannot cover the wide bistatic angle of this geometry
  (its 21-degree beam misses one endpoint), so we model the omnidirectional
  variant §3.1 also used, minus switch/mismatch losses.

Placement seeds 0..7 correspond to the paper's placements (a)..(h);
Figures 5 and 6 use placement (e) = seed 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.array import PressArray
from ..core.element import PressElement, omni_element, sp4t_states
from ..em.geometry import Point, Segment, Wall, points_on_grid
from ..em.materials import MATERIALS, Material, register_material
from ..em.scene import (
    Scatterer,
    Scene,
    blocker_between,
    shoebox_scene,
    surface_grid_positions,
)
from ..phy.ofdm import OfdmParams
from ..sdr.device import SdrDevice, usrp_n210, usrp_x310, warp_v3
from ..sdr.testbed import Testbed

__all__ = [
    "StudyConfig",
    "StudySetup",
    "facing_panel",
    "build_study_scene",
    "build_nlos_setup",
    "build_los_setup",
    "build_harmonization_setup",
    "build_mimo_setup",
    "build_large_array_setup",
    "FIG5_PLACEMENT_SEED",
    "used_subcarrier_mask",
]

#: Figures 5 and 6 analyse "one of the PRESS element positions" — the
#: paper's placement (e), which is seed 4 in our (a)..(h) = 0..7 mapping.
FIG5_PLACEMENT_SEED = 4


def _ensure_materials() -> None:
    """Register the study's calibrated materials (idempotent)."""
    if "lab-wall" not in MATERIALS:
        register_material(Material("lab-wall", 0.12))
    if "metal-shelf" not in MATERIALS:
        register_material(Material("metal-shelf", 0.15))


@dataclass(frozen=True)
class StudyConfig:
    """Calibrated parameters of the §3 study scene.

    The defaults reproduce the paper's reported statistics; ablation
    benchmarks vary them deliberately.
    """

    room_width_m: float = 12.0
    room_height_m: float = 8.0
    wall_material: str = "lab-wall"
    panel_material: str = "metal-shelf"
    panel_length_m: float = 1.6
    num_scatterers: int = 4
    scatterer_reflectivity: tuple[float, float] = (0.3, 0.7)
    scatterer_gain_dbi: tuple[float, float] = (4.0, 9.0)
    #: Weak clutter scatterers forming the diffuse multipath floor that caps
    #: how deep a null can get (real labs bottom out ~25 dB below the
    #: dominant paths; without this floor simulated nulls are unphysically
    #: deep).
    num_clutter: int = 14
    #: Target per-path power of the clutter floor, in dB relative to the
    #: two-hop reference (includes endpoint antennas).  Roughly 20-28 dB
    #: below the dominant ~-71 dB ambient components.
    clutter_power_db: tuple[float, float] = (-95.0, -88.0)
    link_separation_m: float = 2.5
    blocker_half_width_m: float = 0.35
    num_elements: int = 3
    element_gain_dbi: float = -1.5
    element_grid_rows: int = 4
    element_grid_cols: int = 4
    tx_power_dbm: float = 15.0
    #: Ambient-channel drift between successive measurements — the §3.2
    #: sweep takes ~5 s, far beyond coherence time, so each configuration's
    #: measurement sees a slightly different ambient channel.
    drift_phase_rad: float = 0.08
    drift_amplitude: float = 0.03

    def tx_position(self) -> Point:
        return Point(1.6, self.room_height_m * 0.35)

    def rx_position(self) -> Point:
        tx = self.tx_position()
        return Point(tx.x + self.link_separation_m, tx.y + 0.25)

    def panel_position(self) -> Point:
        return Point(self.room_width_m - 1.5, self.room_height_m - 1.0)


def facing_panel(
    position: Point,
    tx: Point,
    rx: Point,
    length_m: float = 1.6,
    material: str = "metal-shelf",
) -> Wall:
    """A reflector panel oriented for a specular TX -> panel -> RX bounce.

    The panel's normal bisects the directions to TX and RX, so the image
    method finds a reflection exactly at ``position`` — a deterministic
    long-delay multipath component of controllable strength.
    """
    to_tx = (tx - position).normalized()
    to_rx = (rx - position).normalized()
    bisector = Point(to_tx.x + to_rx.x, to_tx.y + to_rx.y).normalized()
    direction = Point(-bisector.y, bisector.x)
    half = length_m / 2.0
    return Wall(
        Segment(position + (-half) * direction, position + half * direction),
        material=material,
    )


@dataclass(frozen=True)
class StudySetup:
    """Everything one experiment needs: testbed, devices, geometry."""

    testbed: Testbed
    tx_device: SdrDevice
    rx_device: SdrDevice
    array: PressArray
    config: StudyConfig
    placement_seed: int


def _clutter_scatterers(
    config: StudyConfig,
    rng: np.random.Generator,
) -> list[Scatterer]:
    """Weak scatterers forming the diffuse multipath floor.

    Each clutter scatterer's re-radiation gain is solved from its geometry
    so its TX -> scatterer -> RX path lands at a drawn target power
    (``config.clutter_power_db``), giving a floor that is a controlled
    20-28 dB below the dominant ambient components regardless of where the
    scatterer happens to sit.
    """
    from ..constants import WAVELENGTH_M
    from ..em.raytracer import free_space_amplitude

    tx = config.tx_position()
    rx = config.rx_position()
    endpoint_gain_db = 4.0  # two 2 dBi endpoint omnis
    scatterers: list[Scatterer] = []
    for _ in range(config.num_clutter):
        position = Point(
            float(rng.uniform(0.8, config.room_width_m - 0.8)),
            float(rng.uniform(0.8, config.room_height_m - 0.8)),
        )
        d1 = max(((tx - position).norm()), 0.3)
        d2 = max(((rx - position).norm()), 0.3)
        base_amp = free_space_amplitude(d1, WAVELENGTH_M) * free_space_amplitude(
            d2, WAVELENGTH_M
        )
        base_db = 20.0 * np.log10(base_amp) + endpoint_gain_db
        target_db = float(rng.uniform(*config.clutter_power_db))
        gain_dbi = (target_db - base_db) / 2.0
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        scatterers.append(
            Scatterer(
                position,
                1.0 * complex(np.cos(phase), np.sin(phase)),
                gain_dbi=float(gain_dbi),
            )
        )
    return scatterers


def _default_clutter_rng() -> np.random.Generator:
    """The documented fixed clutter-floor stream used when none is threaded.

    Module-level by design: tuning the clutter floor never perturbs the
    main placement draw, and the seed lives in exactly one place.
    """
    return np.random.default_rng(12345)


def build_study_scene(
    config: StudyConfig,
    rng: np.random.Generator,
    blocked: bool = True,
    clutter_rng: Optional[np.random.Generator] = None,
) -> Scene:
    """The lab scene: room + shelf panel + scatterers + clutter floor.

    ``clutter_rng`` draws the diffuse-floor clutter from an independent
    stream so tuning the floor never perturbs the main placement draw.
    """
    _ensure_materials()
    scene = shoebox_scene(
        config.room_width_m,
        config.room_height_m,
        material=config.wall_material,
        num_scatterers=config.num_scatterers,
        rng=rng,
        scatterer_margin=0.8,
        reflectivity_range=config.scatterer_reflectivity,
    )
    lo, hi = config.scatterer_gain_dbi
    scatterers = list(
        Scatterer(s.position, s.reflectivity, gain_dbi=float(rng.uniform(lo, hi)))
        for s in scene.scatterers
    )
    if clutter_rng is None:
        clutter_rng = _default_clutter_rng()
    scatterers.extend(_clutter_scatterers(config, clutter_rng))
    scatterers = tuple(scatterers)
    tx = config.tx_position()
    rx = config.rx_position()
    walls = tuple(scene.walls) + (
        facing_panel(
            config.panel_position(),
            tx,
            rx,
            length_m=config.panel_length_m,
            material=config.panel_material,
        ),
    )
    scene = Scene(walls=walls, scatterers=scatterers, name="press-lab")
    if blocked:
        scene = scene.with_obstacles(
            blocker_between(tx, rx, half_width=config.blocker_half_width_m)
        )
    return scene


def _element_positions(
    config: StudyConfig,
    rng: np.random.Generator,
    count: int,
) -> list[Point]:
    """Random grid cells 1-2 m from the link, as in §3.2."""
    tx = config.tx_position()
    rx = config.rx_position()
    mid = Point((tx.x + rx.x) / 2.0, (tx.y + rx.y) / 2.0)
    return points_on_grid(
        count,
        (mid.x - 1.0, mid.x + 1.0),
        (mid.y + 1.0, mid.y + 2.0),
        config.element_grid_rows,
        config.element_grid_cols,
        rng,
    )


def _build_setup(
    placement_seed: int,
    config: StudyConfig,
    *,
    blocked: bool,
    elements_fn: Callable[[StudyConfig, np.random.Generator], Sequence[PressElement]],
    device_factory: Callable[..., SdrDevice],
    device_prefix: str,
) -> StudySetup:
    """Shared scaffolding of every ``build_*_setup`` scenario.

    One place owns the rng/clutter-rng seeding, scene construction, testbed
    wiring and endpoint-device placement; the scenarios differ only in
    whether the LoS is blocked, which PRESS elements they install (drawn
    from ``rng`` *after* the scene, preserving each builder's historical
    draw order) and which SDR model stands at the endpoints.
    """
    rng = np.random.default_rng(placement_seed)
    clutter_rng = np.random.default_rng([placement_seed, 77])
    scene = build_study_scene(config, rng, blocked=blocked, clutter_rng=clutter_rng)
    array = PressArray.from_elements(list(elements_fn(config, rng)))
    testbed = Testbed(
        scene=scene,
        array=array,
        drift_phase_rad=config.drift_phase_rad,
        drift_amplitude=config.drift_amplitude,
    )
    tx_device = device_factory(
        f"{device_prefix}-tx", config.tx_position(), tx_power_dbm=config.tx_power_dbm
    )
    rx_device = device_factory(f"{device_prefix}-rx", config.rx_position())
    return StudySetup(
        testbed=testbed,
        tx_device=tx_device,
        rx_device=rx_device,
        array=array,
        config=config,
        placement_seed=placement_seed,
    )


def _study_elements(
    config: StudyConfig, rng: np.random.Generator
) -> list[PressElement]:
    """The §3.2 elements: SP4T omnis on random grid cells near the link."""
    positions = _element_positions(config, rng, config.num_elements)
    return [
        omni_element(p, name=f"e{i}", gain_dbi=config.element_gain_dbi)
        for i, p in enumerate(positions)
    ]


def build_nlos_setup(
    placement_seed: int,
    config: StudyConfig = StudyConfig(),
) -> StudySetup:
    """The Figure 4-6 setup: blocked LoS, 3 elements, WARP endpoints.

    ``placement_seed`` selects both the element placement and the ambient
    scatterer realisation, reproducing "each antenna placement results in a
    different scattering environment".
    """
    return _build_setup(
        placement_seed,
        config,
        blocked=True,
        elements_fn=_study_elements,
        device_factory=warp_v3,
        device_prefix="warp",
    )


def build_los_setup(
    placement_seed: int,
    config: StudyConfig = StudyConfig(),
) -> StudySetup:
    """The §3 line-of-sight control: identical, but the blocker removed."""
    return _build_setup(
        placement_seed,
        config,
        blocked=False,
        elements_fn=_study_elements,
        device_factory=warp_v3,
        device_prefix="warp",
    )


def build_harmonization_setup(
    placement_seed: int,
    config: StudyConfig = StudyConfig(),
) -> StudySetup:
    """The §3.2.2 setup: USRP N210 endpoints, two 4-phase elements, no load.

    "we use two USRP N210 radios with only two PRESS elements, each of
    which is attached to four different reflective cable lengths and no
    absorptive load, to decrease the reflected phase granularity."
    """

    def elements_fn(
        config: StudyConfig, rng: np.random.Generator
    ) -> list[PressElement]:
        positions = _element_positions(config, rng, 2)
        states = sp4t_states(include_load=False, num_phases=4)
        return [
            omni_element(
                p, name=f"e{i}", gain_dbi=config.element_gain_dbi, states=states
            )
            for i, p in enumerate(positions)
        ]

    return _build_setup(
        placement_seed,
        config,
        blocked=True,
        elements_fn=elements_fn,
        device_factory=usrp_n210,
        device_prefix="n210",
    )


def build_mimo_setup(
    placement_seed: int,
    config: StudyConfig = StudyConfig(),
    element_spacing_wavelengths: float = 1.0,
    element_gain_dbi: float = -9.0,
) -> StudySetup:
    """The §3.2.3 setup: 2x2 MIMO endpoints, co-linear omni elements.

    "Omnidirectional PRESS elements are deployed co-linear to the transmit
    antenna pair with lambda spacing between the PRESS antenna elements."
    """
    from ..constants import WAVELENGTH_M

    def elements_fn(
        config: StudyConfig, rng: np.random.Generator
    ) -> list[PressElement]:
        tx = config.tx_position()
        spacing = element_spacing_wavelengths * WAVELENGTH_M
        # Elements co-linear with the TX array's axis (§3.2.3), raised above
        # the link line so their view of the receiver clears the LoS blocker.
        # They sit close to the TX array, where each element is at a
        # distinctly different distance/angle from each TX antenna, so
        # switching its reflection perturbs the *spatial* structure of H
        # (conditioning), not just its overall gain.  The gain default
        # reflects that this near-array deployment couples more strongly than
        # the far-field two-hop model of a mid-room element.
        first = Point(tx.x + 0.25, tx.y + 0.75)
        return [
            omni_element(
                Point(first.x + i * spacing, first.y),
                name=f"e{i}",
                gain_dbi=element_gain_dbi,
            )
            for i in range(config.num_elements)
        ]

    return _build_setup(
        placement_seed,
        config,
        blocked=True,
        elements_fn=elements_fn,
        device_factory=usrp_x310,
        device_prefix="x310",
    )


def build_large_array_setup(
    placement_seed: int,
    num_elements: int = 1024,
    config: StudyConfig = StudyConfig(),
    states: Optional[Sequence] = None,
    rows: Optional[int] = None,
) -> StudySetup:
    """An RFocus-scale scenario: a wall-sized element grid, N into the thousands.

    Same room, clutter and blocked link as :func:`build_nlos_setup`, but
    instead of three elements near the link the far wall carries a
    programmable surface: ``num_elements`` SP4T omni elements tiled in a
    deterministic grid (``surface_grid_positions``) along the top wall.
    This is the regime RFocus (arXiv:1905.05130) targets — ~3,000 passive
    elements, where the M^N space cannot be enumerated and search must
    scale with elements touched.

    The testbed automatically routes basis construction through the
    chunked large-array path, and ``pick_searcher``/``search_basis``
    select the delta-powered searchers; calling ``testbed.sweep`` (an
    exhaustive enumeration) on such a setup raises
    :class:`~repro.core.basis.SearchSpaceTooLarge` by design.

    ``rows`` defaults to the smallest row count keeping at most 256
    columns per row; ``states`` overrides the per-element state set
    (default: the prototype's 4-state SP4T).
    """
    if num_elements <= 0:
        raise ValueError(f"num_elements must be positive, got {num_elements}")
    if rows is None:
        rows = -(-num_elements // 256)
    state_set = tuple(states) if states is not None else sp4t_states()

    def elements_fn(
        config: StudyConfig, rng: np.random.Generator
    ) -> list[PressElement]:
        margin = 0.6
        y = config.room_height_m - 0.2
        # Right-to-left along the top wall so the grid's left-hand normal
        # (and its row stacking) faces down into the room.
        positions = surface_grid_positions(
            Point(config.room_width_m - margin, y),
            Point(margin, y),
            count=num_elements,
            rows=rows,
        )
        return [
            omni_element(
                p,
                name=f"e{i}",
                gain_dbi=config.element_gain_dbi,
                states=state_set,
            )
            for i, p in enumerate(positions)
        ]

    return _build_setup(
        placement_seed,
        config,
        blocked=True,
        elements_fn=elements_fn,
        device_factory=warp_v3,
        device_prefix="warp",
    )


def used_subcarrier_mask() -> np.ndarray:
    """Mask of the 52 used subcarriers on the 64-bin grid."""
    return OfdmParams().used_mask()
