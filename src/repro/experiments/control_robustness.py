"""Control-loop robustness sweep: link type x loss probability x mobility.

§2 frames PRESS's binding constraint as finishing measure -> search ->
actuate inside the channel coherence window over a control plane that is
itself lossy and latency-bound.  This experiment makes that constraint
measurable: for each (control medium, per-message loss probability,
mobility speed) cell, a :class:`~repro.core.controller.PressController`
runs several closed optimisation rounds through a real
:class:`~repro.control.protocol.ControlPlane` over the §3 lab scene, and
the cell records what the control plane did to the loop — retries, lost
messages, failed/degraded actuations, stale rounds, the objective the
link actually achieved.

All loss sampling draws from ``SeedSequence``-derived per-cell streams,
so the sweep is bit-identical at any ``--jobs`` worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..control.links import (
    ControlLink,
    sub_ghz_ism_link,
    ultrasound_link,
    wifi_inband_link,
    wired_bus_link,
)
from ..control.protocol import ControlPlane
from ..core.controller import PressController
from ..core.objectives import MinSnrObjective
from ..obs.records import RunRecorder, current_sample
from .common import StudyConfig, build_nlos_setup, used_subcarrier_mask
from .runner import derive_seeds, merged_telemetry, run_parallel

__all__ = [
    "ControlRobustnessCell",
    "ControlRobustnessResult",
    "control_link_by_name",
    "run_control_robustness",
]

#: Media swept by default, in the §4.2 candidate order.
DEFAULT_LINKS = ("wired", "sub-ghz", "wifi", "ultrasound")


def control_link_by_name(name: str, loss_probability: float) -> ControlLink:
    """One of the §4.2 candidate media, at a given per-message loss rate.

    The wired bus is lossless by construction; the sweep overrides its
    loss so every medium sees the same fault axis (a noisy shared bus is
    a real deployment failure mode too).
    """
    if name == "wired":
        return replace(wired_bus_link(), loss_probability=loss_probability)
    if name == "sub-ghz":
        return sub_ghz_ism_link(loss_probability=loss_probability)
    if name == "wifi":
        return wifi_inband_link(loss_probability=loss_probability)
    if name == "ultrasound":
        return ultrasound_link(loss_probability=loss_probability)
    raise ValueError(
        f"unknown control link {name!r}; expected one of {DEFAULT_LINKS}"
    )


@dataclass(frozen=True)
class ControlRobustnessCell:
    """Closed-loop statistics of one (link, loss, speed) sweep cell.

    Attributes
    ----------
    link_name, loss_probability, speed_mph:
        The cell's coordinates.
    rounds:
        Optimisation rounds run.
    final_score:
        Objective (worst-subcarrier SNR, dB) of the configuration the
        array physically holds after the last round — partial actuations
        and rollbacks included, which is the point.
    best_round_score:
        Best per-round winning score seen across the sweep.
    total_measurements:
        Over-the-air soundings spent by the searches.
    total_retries:
        Command retransmissions across all rounds.
    total_lost_messages:
        Control messages (commands + acks) lost across all rounds.
    failed_actuations:
        Actuations that exhausted their retry/deadline budget.
    degraded_rounds:
        Rounds that ended in any degradation mode (zero-budget hold,
        rollback, partial state).
    stale_rounds:
        Rounds that overran the coherence window.
    mean_round_elapsed_s:
        Mean wall-clock per round (search + adoption, protocol time).
    coherence_s:
        The coherence window the rounds were budgeted against.
    """

    link_name: str
    loss_probability: float
    speed_mph: float
    rounds: int
    final_score: float
    best_round_score: float
    total_measurements: int
    total_retries: int
    total_lost_messages: int
    failed_actuations: int
    degraded_rounds: int
    stale_rounds: int
    mean_round_elapsed_s: float
    coherence_s: float


@dataclass(frozen=True)
class ControlRobustnessResult:
    """The full sweep plus run-level counters.

    ``cells`` is the deterministic payload (bit-identical at any worker
    count); ``telemetry`` carries the run's merged trace-cache counters —
    parent *and* worker processes, via the runner's observability samples
    (:func:`repro.experiments.runner.merged_telemetry`) — and is
    observability data only.
    """

    cells: tuple[ControlRobustnessCell, ...]
    telemetry: dict

    def cell(
        self, link_name: str, loss_probability: float, speed_mph: float
    ) -> ControlRobustnessCell:
        """Look one cell up by its coordinates."""
        for cell in self.cells:
            if (
                cell.link_name == link_name
                and cell.loss_probability == loss_probability
                and cell.speed_mph == speed_mph
            ):
                return cell
        raise KeyError((link_name, loss_probability, speed_mph))


def _robustness_task(
    task: tuple[str, float, float, int, int, StudyConfig, int, np.random.SeedSequence],
) -> ControlRobustnessCell:
    """One sweep cell: a fresh closed loop over one seeded loss stream.

    Everything the cell computes depends only on the task payload — the
    scene comes from ``placement_seed``, the searches are internally
    seeded, and all control-plane losses draw from the cell's own
    ``SeedSequence`` child — so execution order and worker count cannot
    change the result.
    """
    (
        link_name,
        loss,
        speed,
        rounds,
        placement_seed,
        config,
        maintenance_interval,
        seed_seq,
    ) = task
    setup = build_nlos_setup(placement_seed, config)
    mask = used_subcarrier_mask()
    measure = setup.testbed.snr_function(setup.tx_device, setup.rx_device, mask)
    measure_cfr = setup.testbed.cfr_function(setup.tx_device, setup.rx_device)
    plane = ControlPlane(
        link=control_link_by_name(link_name, loss),
        num_elements=setup.array.num_elements,
        max_retries=6,
    )
    controller = PressController(
        setup.array,
        measure,
        MinSnrObjective(),
        control_plane=plane,
        rng=np.random.default_rng(seed_seq),
        maintenance_interval=maintenance_interval,
        measure_cfr=measure_cfr if maintenance_interval > 0 else None,
    )
    decisions = [controller.optimize(speed_mph=speed) for _ in range(rounds)]
    records = [d.telemetry for d in decisions]
    final_score = float(
        MinSnrObjective()(measure(controller.current_configuration))
    )
    return ControlRobustnessCell(
        link_name=link_name,
        loss_probability=loss,
        speed_mph=speed,
        rounds=rounds,
        final_score=final_score,
        best_round_score=max(t.best_score for t in records),
        total_measurements=sum(t.num_evaluations for t in records),
        total_retries=sum(t.retries for t in records),
        total_lost_messages=sum(t.lost_messages for t in records),
        failed_actuations=sum(t.failed_actuations for t in records),
        degraded_rounds=sum(1 for t in records if t.degraded),
        stale_rounds=sum(1 for t in records if t.stale),
        mean_round_elapsed_s=float(
            np.mean([d.elapsed_s for d in decisions])
        ),
        coherence_s=decisions[-1].coherence_s,
    )


def run_control_robustness(
    links: Sequence[str] = DEFAULT_LINKS,
    loss_probabilities: Sequence[float] = (0.0, 0.05, 0.2),
    speeds_mph: Sequence[float] = (0.5, 6.0),
    rounds: int = 3,
    placement_seed: int = 2,
    config: StudyConfig = StudyConfig(),
    maintenance_interval: int = 2,
    base_seed: int = 0,
    jobs: Optional[int] = None,
    record_to: Optional[str] = None,
) -> ControlRobustnessResult:
    """Sweep link type x loss probability x mobility speed.

    Each cell runs ``rounds`` closed measure -> search -> actuate rounds
    over its own ``SeedSequence``-derived loss stream.  ``jobs`` fans the
    cell axis across processes (``None``/``1`` serial, ``<= 0`` all
    CPUs); ``cells`` are bit-identical at any value.  ``record_to``
    appends a schema-validated run record (config, seeds, merged metrics,
    span summaries) to the given JSONL file.
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    if not links:
        raise ValueError("need at least one link")
    if not loss_probabilities or not speeds_mph:
        raise ValueError("need at least one loss probability and one speed")
    for name in links:
        control_link_by_name(name, 0.0)  # validate names before fanning out
    coordinates = [
        (link_name, float(loss), float(speed))
        for link_name in links
        for loss in loss_probabilities
        for speed in speeds_mph
    ]
    seeds = derive_seeds(base_seed, len(coordinates))
    tasks = [
        (
            link_name,
            loss,
            speed,
            rounds,
            placement_seed,
            config,
            maintenance_interval,
            seed_seq,
        )
        for (link_name, loss, speed), seed_seq in zip(coordinates, seeds)
    ]
    with RunRecorder(
        "control_robustness",
        config={
            "links": list(links),
            "loss_probabilities": [float(p) for p in loss_probabilities],
            "speeds_mph": [float(s) for s in speeds_mph],
            "rounds": rounds,
            "maintenance_interval": maintenance_interval,
            "study": config,
        },
        path=record_to,
        jobs=jobs,
        seeds={"base_seed": base_seed, "placement_seed": placement_seed},
    ) as recorder:
        since = current_sample()
        cells, samples = run_parallel(
            _robustness_task, tasks, jobs=jobs, collect_obs=True
        )
        recorder.add_worker_samples(samples)
        telemetry = merged_telemetry(samples, since=since)
    return ControlRobustnessResult(cells=tuple(cells), telemetry=telemetry)
