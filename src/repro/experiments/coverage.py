"""Coverage maps: dead zones across the whole room (§1's first question).

"How best to eliminate dead zones in the presence of the vagaries of
multipath propagation?"  A dead zone is a *place*; this experiment maps
link quality over a grid of client positions, before and after PRESS, and
reports the coverage statistics a site survey would: worst-spot quality,
the fraction of positions below a service threshold, and how much a single
(joint) configuration versus a per-position configuration recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.configuration import ArrayConfiguration
from ..em.channel import snr_db_from_cfr
from ..em.geometry import Point
from ..obs.records import RunRecorder
from ..sdr.device import warp_v3
from .common import StudyConfig, StudySetup, build_nlos_setup, used_subcarrier_mask
from .runner import run_parallel

__all__ = ["CoverageMap", "run_coverage", "run_coverage_suite"]


@dataclass(frozen=True)
class CoverageMap:
    """Link quality over a grid of client positions.

    Attributes
    ----------
    xs, ys:
        Grid coordinates (metres).
    baseline_db:
        min-SNR at each position with the all-zero-stub configuration,
        shape (len(ys), len(xs)).
    per_position_db:
        min-SNR with the best configuration *for that position*.
    joint_db:
        min-SNR with the single configuration maximising the worst grid
        position (one setting for the whole room).
    joint_configuration:
        That configuration.
    """

    xs: np.ndarray
    ys: np.ndarray
    baseline_db: np.ndarray
    per_position_db: np.ndarray
    joint_db: np.ndarray
    joint_configuration: ArrayConfiguration

    def fraction_below(self, threshold_db: float, which: str = "baseline") -> float:
        """Fraction of grid positions below a service threshold."""
        grid = {
            "baseline": self.baseline_db,
            "per-position": self.per_position_db,
            "joint": self.joint_db,
        }[which]
        return float(np.mean(grid < threshold_db))

    def worst_db(self, which: str = "baseline") -> float:
        grid = {
            "baseline": self.baseline_db,
            "per-position": self.per_position_db,
            "joint": self.joint_db,
        }[which]
        return float(grid.min())


def run_coverage(
    placement_seed: int = 2,
    config: StudyConfig = StudyConfig(),
    grid_shape: tuple[int, int] = (5, 7),
    x_span_m: float = 1.8,
    y_span_m: float = 1.2,
    setup: Optional[StudySetup] = None,
) -> CoverageMap:
    """Map min-SNR over client positions around the nominal receiver.

    The grid covers the NLoS region behind the blocker (a full-room sweep
    is possible but slow for a benchmark; dead zones concentrate where
    multipath dominates).
    """
    rows, cols = grid_shape
    if rows <= 0 or cols <= 0:
        raise ValueError(f"grid_shape must be positive, got {grid_shape}")
    setup = setup or build_nlos_setup(placement_seed, config)
    mask = used_subcarrier_mask()
    space = setup.array.configuration_space()
    configurations = list(space.all_configurations())
    rx0 = setup.rx_device.position
    xs = np.linspace(rx0.x - x_span_m / 2, rx0.x + x_span_m / 2, cols)
    ys = np.linspace(rx0.y - y_span_m / 2, rx0.y + y_span_m / 2, rows)

    # min-SNR for every (position, configuration) pair.  The whole position
    # axis goes through the batched geometry trace — one trace_batch call
    # for all grid cells instead of one scalar trace per cell — and the
    # configuration axis is a vectorized CFR evaluation per point.
    testbed = setup.testbed
    probe = warp_v3("probe", rx0)
    points = [
        Point(float(x), float(y)) for y in ys for x in xs
    ]  # row-major, matching the original (row, col) loop order
    bases = testbed.bases_for_points(
        setup.tx_device, points, probe.chains[0].antenna
    )
    quality = np.empty((rows, cols, len(configurations)))
    for index, basis in enumerate(bases):
        row, col = divmod(index, cols)
        snr = snr_db_from_cfr(
            basis.evaluate(),
            testbed.num_subcarriers,
            testbed.bandwidth_hz,
            tx_power_dbm=setup.tx_device.tx_power_dbm,
            noise_figure_db=probe.noise_figure_db,
        )
        quality[row, col] = snr[:, mask].min(axis=1)

    baseline_index = space.index_of(
        ArrayConfiguration(tuple([0] * setup.array.num_elements))
    )
    baseline = quality[:, :, baseline_index]
    per_position = quality.max(axis=2)
    # Joint: one configuration maximising the worst grid position.
    worst_per_config = quality.reshape(-1, len(configurations)).min(axis=0)
    joint_index = int(np.argmax(worst_per_config))
    joint = quality[:, :, joint_index]
    return CoverageMap(
        xs=xs,
        ys=ys,
        baseline_db=baseline,
        per_position_db=per_position,
        joint_db=joint,
        joint_configuration=configurations[joint_index],
    )


def _coverage_task(
    task: tuple[int, StudyConfig, tuple[int, int], float, float],
) -> CoverageMap:
    """One placement's coverage map (module-level for process pools)."""
    placement_seed, config, grid_shape, x_span_m, y_span_m = task
    return run_coverage(
        placement_seed=placement_seed,
        config=config,
        grid_shape=grid_shape,
        x_span_m=x_span_m,
        y_span_m=y_span_m,
    )


def run_coverage_suite(
    placement_seeds: tuple[int, ...] = (0, 1, 2, 3),
    config: StudyConfig = StudyConfig(),
    grid_shape: tuple[int, int] = (5, 7),
    x_span_m: float = 1.8,
    y_span_m: float = 1.2,
    jobs: Optional[int] = None,
    record_to: Optional[str] = None,
) -> list[CoverageMap]:
    """Coverage maps for several placements, fanned across processes.

    Each placement's map is deterministic in its seed (coverage draws no
    measurement noise), so results are identical at any ``jobs`` value;
    within each placement the position axis runs through the batched
    geometry trace.  ``record_to`` appends a schema-validated run record
    (config, merged metrics across all workers, span summaries) to the
    given JSONL file.
    """
    tasks = [
        (int(seed), config, grid_shape, x_span_m, y_span_m)
        for seed in placement_seeds
    ]
    with RunRecorder(
        "coverage_suite",
        config={
            "placement_seeds": [int(seed) for seed in placement_seeds],
            "grid_shape": list(grid_shape),
            "x_span_m": x_span_m,
            "y_span_m": y_span_m,
            "study": config,
        },
        path=record_to,
        jobs=jobs,
        seeds={"placement_seeds": [int(seed) for seed in placement_seeds]},
    ) as recorder:
        maps, samples = run_parallel(
            _coverage_task, tasks, jobs=jobs, collect_obs=True
        )
        recorder.add_worker_samples(samples)
    return maps
