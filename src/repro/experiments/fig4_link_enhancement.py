"""Figure 4: per-subcarrier SNR for the largest-difference configuration pairs.

"We calculate which two configurations give the largest difference in
subcarrier SNR across all subcarriers ... In these eight experiments, the
largest change in the mean SNR on any given subcarrier is 18.6 dB, and the
largest change in the SNR within one experimental repetition is 26 dB."
(§3.2.1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.metrics import ConfigPairGap, largest_single_subcarrier_gap
from ..core.basis import ChannelBasis
from ..obs.records import RunRecorder
from ..sdr.testbed import sweep_basis_snr
from .common import StudyConfig, build_nlos_setup, used_subcarrier_mask
from .runner import run_parallel

__all__ = ["Fig4PlacementResult", "Fig4Result", "run_fig4"]


@dataclass(frozen=True)
class Fig4PlacementResult:
    """One panel of Figure 4 (one element placement).

    Attributes
    ----------
    placement_seed:
        Which random placement this is ((a)..(h) = 0..7).
    pair:
        The configuration pair with the largest mean-SNR gap on a single
        subcarrier.
    label_low, label_high:
        Figure-style labels of the two configurations, e.g. "(0.5:, 0, T)".
    snr_low, snr_high:
        Mean per-used-subcarrier SNR curves of the two configurations.
    mean_gap_db:
        The pair's gap in repetition-averaged SNR.
    max_single_rep_gap_db:
        The same pair's largest per-subcarrier SNR gap within a single
        repetition (single-sweep fluctuations exceed the mean gap, which is
        how the paper's 26 dB exceeds its 18.6 dB).
    """

    placement_seed: int
    pair: ConfigPairGap
    label_low: str
    label_high: str
    snr_low: np.ndarray
    snr_high: np.ndarray
    mean_gap_db: float
    max_single_rep_gap_db: float


@dataclass(frozen=True)
class Fig4Result:
    """All placements plus the two §3.2.1 headline numbers."""

    placements: tuple[Fig4PlacementResult, ...]

    @property
    def largest_mean_change_db(self) -> float:
        """Largest change in repetition-mean SNR on any subcarrier (paper: 18.6)."""
        return max(p.mean_gap_db for p in self.placements)

    @property
    def largest_single_rep_change_db(self) -> float:
        """Largest within-repetition SNR change (paper: 26)."""
        return max(p.max_single_rep_gap_db for p in self.placements)


@dataclass(frozen=True)
class _Fig4Task:
    """One placement's worker payload: a pre-traced basis, not a scene.

    The parent traces geometry once per placement (cheap, milliseconds, and
    value-cached across figure runs) and ships the resulting basis plus the
    handful of radio scalars a sweep needs.  Workers never rebuild scenes or
    ray tracers — the old per-job rebuild cost more than the sweep itself,
    which is how parallel fig4 ended up slower than serial.
    """

    placement_seed: int
    repetitions: int
    noise_seed: int
    basis: ChannelBasis
    tx_power_dbm: float
    noise_figure_db: float
    drift_phase_rad: float
    drift_amplitude: float
    labels: tuple[str, ...]


def _fig4_task_for(
    placement_seed: int,
    repetitions: int,
    config: StudyConfig,
    noise_seed: int,
) -> _Fig4Task:
    """Build one placement's payload: trace its basis in the parent."""
    setup = build_nlos_setup(placement_seed, config)
    basis = setup.testbed.basis_for(setup.tx_device, setup.rx_device)
    labels = tuple(
        setup.array.describe(configuration)
        for configuration in setup.testbed.configurations
    )
    return _Fig4Task(
        placement_seed=placement_seed,
        repetitions=repetitions,
        noise_seed=noise_seed,
        basis=basis,
        tx_power_dbm=setup.tx_device.tx_power_dbm,
        noise_figure_db=setup.rx_device.noise_figure_db,
        drift_phase_rad=setup.testbed.drift_phase_rad,
        drift_amplitude=setup.testbed.drift_amplitude,
        labels=labels,
    )


def _fig4_placement_task(task: _Fig4Task) -> Fig4PlacementResult:
    """One Figure 4 panel: sweep 64 configs x reps over a shipped basis.

    The placement's rng is seeded from ``noise_seed + placement_seed``
    alone and the drift/noise draws follow the legacy sweep order, so
    results are bit-identical to the historical build-in-worker path at
    any worker count.
    """
    mask = used_subcarrier_mask()
    rng = np.random.default_rng(task.noise_seed + task.placement_seed)
    snr = sweep_basis_snr(
        task.basis,
        task.repetitions,
        rng,
        tx_power_dbm=task.tx_power_dbm,
        noise_figure_db=task.noise_figure_db,
        drift_phase_rad=task.drift_phase_rad,
        drift_amplitude=task.drift_amplitude,
    )
    mean_snr = snr.mean(axis=0)[:, mask]  # (configs, used subcarriers)
    pair = largest_single_subcarrier_gap(mean_snr)
    per_rep = snr[:, :, mask]
    rep_gaps = np.abs(
        per_rep[:, pair.config_high, :] - per_rep[:, pair.config_low, :]
    )  # (reps, used)
    return Fig4PlacementResult(
        placement_seed=task.placement_seed,
        pair=pair,
        label_low=task.labels[pair.config_low],
        label_high=task.labels[pair.config_high],
        snr_low=mean_snr[pair.config_low],
        snr_high=mean_snr[pair.config_high],
        mean_gap_db=pair.gap_db,
        max_single_rep_gap_db=float(rep_gaps.max()),
    )


def run_fig4(
    num_placements: int = 8,
    repetitions: int = 10,
    config: StudyConfig = StudyConfig(),
    noise_seed: int = 1000,
    jobs: Optional[int] = None,
    record_to: Optional[str] = None,
) -> Fig4Result:
    """Run the Figure 4 experiment: sweep 64 configs x reps per placement.

    ``jobs`` fans the placement axis across processes (``None``/``1``
    serial, ``<= 0`` all CPUs); results are bit-identical at any value.
    Geometry is traced in the parent and shipped to workers as channel
    bases, so workers only sweep.  ``record_to`` appends a
    schema-validated run record to the given JSONL file.
    """
    if num_placements <= 0:
        raise ValueError(f"num_placements must be positive, got {num_placements}")
    with RunRecorder(
        "fig4",
        config={
            "num_placements": num_placements,
            "repetitions": repetitions,
            "study": config,
        },
        path=record_to,
        jobs=jobs,
        seeds={"noise_seed": noise_seed},
    ) as recorder:
        tasks = [
            _fig4_task_for(placement_seed, repetitions, config, noise_seed)
            for placement_seed in range(num_placements)
        ]
        placements, samples = run_parallel(
            _fig4_placement_task, tasks, jobs=jobs, collect_obs=True
        )
        recorder.add_worker_samples(samples)
    return Fig4Result(placements=tuple(placements))
