"""Figure 4: per-subcarrier SNR for the largest-difference configuration pairs.

"We calculate which two configurations give the largest difference in
subcarrier SNR across all subcarriers ... In these eight experiments, the
largest change in the mean SNR on any given subcarrier is 18.6 dB, and the
largest change in the SNR within one experimental repetition is 26 dB."
(§3.2.1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.metrics import ConfigPairGap, largest_single_subcarrier_gap
from ..obs.records import RunRecorder
from .common import StudyConfig, build_nlos_setup, used_subcarrier_mask
from .runner import run_parallel

__all__ = ["Fig4PlacementResult", "Fig4Result", "run_fig4"]


@dataclass(frozen=True)
class Fig4PlacementResult:
    """One panel of Figure 4 (one element placement).

    Attributes
    ----------
    placement_seed:
        Which random placement this is ((a)..(h) = 0..7).
    pair:
        The configuration pair with the largest mean-SNR gap on a single
        subcarrier.
    label_low, label_high:
        Figure-style labels of the two configurations, e.g. "(0.5:, 0, T)".
    snr_low, snr_high:
        Mean per-used-subcarrier SNR curves of the two configurations.
    mean_gap_db:
        The pair's gap in repetition-averaged SNR.
    max_single_rep_gap_db:
        The same pair's largest per-subcarrier SNR gap within a single
        repetition (single-sweep fluctuations exceed the mean gap, which is
        how the paper's 26 dB exceeds its 18.6 dB).
    """

    placement_seed: int
    pair: ConfigPairGap
    label_low: str
    label_high: str
    snr_low: np.ndarray
    snr_high: np.ndarray
    mean_gap_db: float
    max_single_rep_gap_db: float


@dataclass(frozen=True)
class Fig4Result:
    """All placements plus the two §3.2.1 headline numbers."""

    placements: tuple[Fig4PlacementResult, ...]

    @property
    def largest_mean_change_db(self) -> float:
        """Largest change in repetition-mean SNR on any subcarrier (paper: 18.6)."""
        return max(p.mean_gap_db for p in self.placements)

    @property
    def largest_single_rep_change_db(self) -> float:
        """Largest within-repetition SNR change (paper: 26)."""
        return max(p.max_single_rep_gap_db for p in self.placements)


def _fig4_placement_task(
    task: tuple[int, int, StudyConfig, int],
) -> Fig4PlacementResult:
    """One Figure 4 panel: sweep 64 configs x reps at one placement.

    The placement's rng is seeded from ``noise_seed + placement_seed``
    alone, so panels are independent of execution order — parallel runs
    are bit-identical to serial at any worker count.
    """
    placement_seed, repetitions, config, noise_seed = task
    mask = used_subcarrier_mask()
    setup = build_nlos_setup(placement_seed, config)
    rng = np.random.default_rng(noise_seed + placement_seed)
    sweep = setup.testbed.sweep(
        setup.tx_device, setup.rx_device, repetitions=repetitions, rng=rng
    )
    mean_snr = sweep.mean_snr_db()[:, mask]  # (configs, used subcarriers)
    pair = largest_single_subcarrier_gap(mean_snr)
    per_rep = sweep.snr_db[:, :, mask]
    rep_gaps = np.abs(
        per_rep[:, pair.config_high, :] - per_rep[:, pair.config_low, :]
    )  # (reps, used)
    return Fig4PlacementResult(
        placement_seed=placement_seed,
        pair=pair,
        label_low=setup.array.describe(sweep.configurations[pair.config_low]),
        label_high=setup.array.describe(sweep.configurations[pair.config_high]),
        snr_low=mean_snr[pair.config_low],
        snr_high=mean_snr[pair.config_high],
        mean_gap_db=pair.gap_db,
        max_single_rep_gap_db=float(rep_gaps.max()),
    )


def run_fig4(
    num_placements: int = 8,
    repetitions: int = 10,
    config: StudyConfig = StudyConfig(),
    noise_seed: int = 1000,
    jobs: Optional[int] = None,
    record_to: Optional[str] = None,
) -> Fig4Result:
    """Run the Figure 4 experiment: sweep 64 configs x reps per placement.

    ``jobs`` fans the placement axis across processes (``None``/``1``
    serial, ``<= 0`` all CPUs); results are bit-identical at any value.
    ``record_to`` appends a schema-validated run record to the given
    JSONL file.
    """
    if num_placements <= 0:
        raise ValueError(f"num_placements must be positive, got {num_placements}")
    tasks = [
        (placement_seed, repetitions, config, noise_seed)
        for placement_seed in range(num_placements)
    ]
    with RunRecorder(
        "fig4",
        config={
            "num_placements": num_placements,
            "repetitions": repetitions,
            "study": config,
        },
        path=record_to,
        jobs=jobs,
        seeds={"noise_seed": noise_seed},
    ) as recorder:
        placements, samples = run_parallel(
            _fig4_placement_task, tasks, jobs=jobs, collect_obs=True
        )
        recorder.add_worker_samples(samples)
    return Fig4Result(placements=tuple(placements))
