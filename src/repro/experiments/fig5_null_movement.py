"""Figure 5: CCDF of null movement between configuration pairs.

"we plot the complementary CDF of the difference (measured in number of
subcarriers) of the location of the most significant null in all of the
64^2 pairs of PRESS element configurations ... Of these pairs, most show
either no change in null location or a change of only one subcarrier, but
a few show changes of over three subcarriers (1 MHz)." (§3.2.1; abstract
headline: "shifting frequency nulls by nine Wi-Fi subcarriers")

Data comes from placement (e), like the paper's Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.nulls import NULL_THRESHOLD_DB, null_movements
from ..analysis.stats import EmpiricalDistribution
from .common import (
    FIG5_PLACEMENT_SEED,
    StudyConfig,
    build_nlos_setup,
    used_subcarrier_mask,
)

__all__ = ["Fig5Result", "run_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Null-movement distributions, one per experimental repetition.

    Attributes
    ----------
    movements_per_rep:
        One array of pairwise null movements (subcarriers) per repetition.
    """

    movements_per_rep: tuple[np.ndarray, ...]

    @property
    def pooled(self) -> np.ndarray:
        """All repetitions' movements pooled."""
        non_empty = [m for m in self.movements_per_rep if m.size]
        if not non_empty:
            return np.zeros(0, dtype=int)
        return np.concatenate(non_empty)

    @property
    def max_movement(self) -> int:
        """The largest observed null shift (paper headline: 9 subcarriers)."""
        pooled = self.pooled
        return int(pooled.max()) if pooled.size else 0

    def fraction_moving_more_than(self, subcarriers: int) -> float:
        """Pooled CCDF value at ``subcarriers``."""
        pooled = self.pooled
        if pooled.size == 0:
            return 0.0
        return float(np.mean(pooled > subcarriers))

    def ccdf_curves(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """One (x, CCDF) curve per repetition — the Figure 5 axes."""
        curves = []
        for movements in self.movements_per_rep:
            if movements.size == 0:
                continue
            curves.append(
                EmpiricalDistribution.from_samples(movements.astype(float)).ccdf_curve()
            )
        return curves


def run_fig5(
    repetitions: int = 10,
    placement_seed: int = FIG5_PLACEMENT_SEED,
    config: StudyConfig = StudyConfig(),
    noise_seed: int = 2000,
    threshold_db: float = NULL_THRESHOLD_DB,
) -> Fig5Result:
    """Run the Figure 5 experiment at one placement."""
    setup = build_nlos_setup(placement_seed, config)
    rng = np.random.default_rng(noise_seed)
    sweep = setup.testbed.sweep(
        setup.tx_device, setup.rx_device, repetitions=repetitions, rng=rng
    )
    mask = used_subcarrier_mask()
    movements = tuple(
        null_movements(sweep.snr_db[rep][:, mask], threshold_db)
        for rep in range(repetitions)
    )
    return Fig5Result(movements_per_rep=movements)
