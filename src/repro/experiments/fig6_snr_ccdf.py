"""Figure 6: distributions of minimum-subcarrier SNR and its changes.

Left panel: "the complementary CDF of the difference in dB of the minimum
SNR across subcarriers for pairs of PRESS element configurations".  Right
panel: "the complementary CDF of those minimum SNRs for the 64 different
configurations", one trace per trial.

Claims checked: "Around 38% of the configuration changes cause a 10 dB SNR
change on at least one subcarrier, and less than 9% of the configurations
show a worst subcarrier channel gain below 20 dB." (§3.2.1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.metrics import (
    fraction_of_pairs_with_change,
    min_snr_changes,
    min_snrs,
)
from ..analysis.stats import EmpiricalDistribution
from ..obs.records import RunRecorder
from .common import (
    FIG5_PLACEMENT_SEED,
    StudyConfig,
    build_nlos_setup,
    used_subcarrier_mask,
)
from .runner import derive_seeds, run_parallel

__all__ = ["Fig6Result", "run_fig6"]


@dataclass(frozen=True)
class Fig6Result:
    """Both Figure 6 panels plus the §3.2.1 claims.

    Attributes
    ----------
    min_snr_change_pairs:
        |Delta min-SNR| over configuration pairs, pooled across repetitions
        (left panel).
    min_snr_per_trial:
        Per-trial arrays of each configuration's minimum subcarrier SNR
        (right panel: one CCDF trace per trial).
    fraction_pairs_10db_change:
        Fraction of configuration changes causing a >= 10 dB change on at
        least one subcarrier (paper: ~38%).
    fraction_configs_below_20db:
        Fraction of (configuration, trial) samples whose worst subcarrier
        is below 20 dB (paper: < 9%).
    """

    min_snr_change_pairs: np.ndarray
    min_snr_per_trial: tuple[np.ndarray, ...]
    fraction_pairs_10db_change: float
    fraction_configs_below_20db: float

    def left_ccdf(self) -> tuple[np.ndarray, np.ndarray]:
        """The left panel's pooled CCDF curve."""
        return EmpiricalDistribution.from_samples(self.min_snr_change_pairs).ccdf_curve()

    def right_ccdf_curves(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """One CCDF trace per trial (the right panel)."""
        return [
            EmpiricalDistribution.from_samples(trial).ccdf_curve()
            for trial in self.min_snr_per_trial
        ]


def _fig6_rep_task(
    task: tuple[int, StudyConfig, np.random.SeedSequence],
) -> np.ndarray:
    """One Figure 6 repetition: a single 64-configuration sweep.

    Each repetition draws from its own spawned :class:`SeedSequence`
    child, so the result depends only on ``(noise_seed, rep index)`` — any
    worker count reproduces any other.
    """
    placement_seed, config, seed_seq = task
    setup = build_nlos_setup(placement_seed, config)
    rng = np.random.default_rng(seed_seq)
    sweep = setup.testbed.sweep(
        setup.tx_device, setup.rx_device, repetitions=1, rng=rng
    )
    return sweep.snr_db[0]


def run_fig6(
    repetitions: int = 10,
    placement_seed: int = FIG5_PLACEMENT_SEED,
    config: StudyConfig = StudyConfig(),
    noise_seed: int = 3000,
    jobs: Optional[int] = None,
    record_to: Optional[str] = None,
) -> Fig6Result:
    """Run the Figure 6 experiment at the Figure 5 placement.

    ``jobs=None`` (default) keeps the historical serial route: one rng
    stream consumed across all repetitions in order.  Any explicit
    ``jobs`` — including ``jobs=1`` — switches the repetition axis to
    per-rep streams derived with ``SeedSequence.spawn`` so repetitions can
    fan across processes; that scheme's results are bit-identical at every
    worker count (but are a different, equally valid random realisation
    than the legacy single-stream route).  ``record_to`` appends a
    schema-validated run record to the given JSONL file.
    """
    mask = used_subcarrier_mask()
    with RunRecorder(
        "fig6",
        config={
            "repetitions": repetitions,
            "study": config,
        },
        path=record_to,
        jobs=jobs,
        seeds={"noise_seed": noise_seed, "placement_seed": placement_seed},
    ) as recorder:
        if jobs is None:
            setup = build_nlos_setup(placement_seed, config)
            rng = np.random.default_rng(noise_seed)
            sweep = setup.testbed.sweep(
                setup.tx_device, setup.rx_device, repetitions=repetitions, rng=rng
            )
            snr_reps = [sweep.snr_db[rep] for rep in range(repetitions)]
        else:
            tasks = [
                (placement_seed, config, seed_seq)
                for seed_seq in derive_seeds(noise_seed, repetitions)
            ]
            snr_reps, samples = run_parallel(
                _fig6_rep_task, tasks, jobs=jobs, collect_obs=True
            )
            recorder.add_worker_samples(samples)
    per_rep = [snr[:, mask] for snr in snr_reps]
    change_pairs = np.concatenate([min_snr_changes(snr) for snr in per_rep])
    minima_per_trial = tuple(min_snrs(snr) for snr in per_rep)
    frac_10db = float(
        np.mean([fraction_of_pairs_with_change(snr, 10.0) for snr in per_rep])
    )
    all_minima = np.concatenate(minima_per_trial)
    frac_below_20 = float(np.mean(all_minima < 20.0))
    return Fig6Result(
        min_snr_change_pairs=change_pairs,
        min_snr_per_trial=minima_per_trial,
        fraction_pairs_10db_change=frac_10db,
        fraction_configs_below_20db=frac_below_20,
    )
