"""Figure 7: two configurations with opposite frequency selectivity.

"Figure 7 shows that two of the PRESS element configurations exhibit clear
and opposite frequency selectivity; each one favors its own half of the
band." (§3.2.2)

The paper's procedure is manual: "the elements and the surrounding
environment were manipulated until a frequency-selective channel was
found".  We reproduce that deterministically by scanning placement seeds
and keeping the first whose best configuration pair exceeds a contrast
criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..net.harmonization import subband_contrast_db
from ..obs.records import RunRecorder
from .common import StudyConfig, build_harmonization_setup, used_subcarrier_mask
from .runner import run_parallel

__all__ = ["Fig7Result", "run_fig7"]


@dataclass(frozen=True)
class Fig7Result:
    """The selected opposite-selectivity configuration pair.

    Attributes
    ----------
    placement_seed:
        The accepted scenario seed.
    label_a, label_b:
        Configuration labels (paper style, e.g. "(:, 1.5:)").
    snr_a, snr_b:
        Per-used-subcarrier SNR of the two configurations.
    contrast_a_db, contrast_b_db:
        Each configuration's upper-minus-lower half-band contrast; opposite
        selectivity means the signs differ.
    """

    placement_seed: int
    label_a: str
    label_b: str
    snr_a: np.ndarray
    snr_b: np.ndarray
    contrast_a_db: float
    contrast_b_db: float

    @property
    def is_opposite(self) -> bool:
        """Whether the two configurations favour different half-bands."""
        return self.contrast_a_db * self.contrast_b_db < 0

    @property
    def total_contrast_db(self) -> float:
        """|contrast_a| + |contrast_b| — the strength of the Figure 7 effect."""
        return abs(self.contrast_a_db) + abs(self.contrast_b_db)


def _fig7_seed_task(task: tuple[int, StudyConfig, int]) -> Fig7Result:
    """Evaluate one scenario seed: best opposite-selectivity pair.

    Each seed's rng derives from ``noise_seed + placement_seed`` alone, so
    candidates are independent of evaluation order and worker count.
    """
    placement_seed, config, noise_seed = task
    mask = used_subcarrier_mask()
    setup = build_harmonization_setup(placement_seed, config)
    rng = np.random.default_rng(noise_seed + placement_seed)
    space = setup.array.configuration_space()
    configurations = list(space.all_configurations())
    snrs = []
    for configuration in configurations:
        observation = setup.testbed.measure_csi(
            setup.tx_device, setup.rx_device, configuration, rng=rng
        )
        snrs.append(observation.snr_db[mask])
    contrasts = np.array([subband_contrast_db(snr) for snr in snrs])
    index_a = int(np.argmin(contrasts))  # favours lower half
    index_b = int(np.argmax(contrasts))  # favours upper half
    return Fig7Result(
        placement_seed=placement_seed,
        label_a=setup.array.describe(configurations[index_a]),
        label_b=setup.array.describe(configurations[index_b]),
        snr_a=snrs[index_a],
        snr_b=snrs[index_b],
        contrast_a_db=float(contrasts[index_a]),
        contrast_b_db=float(contrasts[index_b]),
    )


def run_fig7(
    config: StudyConfig = StudyConfig(),
    max_seeds: int = 24,
    min_total_contrast_db: float = 6.0,
    noise_seed: int = 4000,
    jobs: Optional[int] = None,
    record_to: Optional[str] = None,
) -> Fig7Result:
    """Scan scenario seeds for a clear opposite-selectivity pair.

    Returns the first scenario whose best configuration pair favours
    opposite half-bands with total contrast >= ``min_total_contrast_db``;
    falls back to the best pair seen if none meets the bar.

    ``jobs`` fans the seed scan across processes.  Serially the scan stops
    at the first acceptable seed; in parallel all ``max_seeds`` candidates
    are evaluated concurrently and the same selection rule is applied in
    seed order — per-seed rngs are order-independent, so the returned
    result is identical (parallelism trades some extra work for latency).
    """
    if max_seeds <= 0:
        raise ValueError(f"max_seeds must be positive, got {max_seeds}")

    def select(candidates: "list[Fig7Result]") -> Optional[Fig7Result]:
        """First candidate meeting the bar, applied in seed order."""
        for candidate in candidates:
            if (
                candidate.is_opposite
                and candidate.total_contrast_db >= min_total_contrast_db
            ):
                return candidate
        return None

    from .runner import resolve_jobs

    with RunRecorder(
        "fig7",
        config={
            "max_seeds": max_seeds,
            "min_total_contrast_db": min_total_contrast_db,
            "study": config,
        },
        path=record_to,
        jobs=jobs,
        seeds={"noise_seed": noise_seed},
    ) as recorder:
        best: Optional[Fig7Result] = None
        chosen: Optional[Fig7Result] = None
        if resolve_jobs(jobs) <= 1:
            # Serial: preserve the historical early exit.
            for placement_seed in range(max_seeds):
                candidate = _fig7_seed_task((placement_seed, config, noise_seed))
                if (
                    best is None
                    or candidate.total_contrast_db > best.total_contrast_db
                ):
                    best = candidate
                accepted = select([candidate])
                if accepted is not None:
                    chosen = accepted
                    break
            if chosen is None:
                assert best is not None
                chosen = best
        else:
            tasks = [
                (placement_seed, config, noise_seed)
                for placement_seed in range(max_seeds)
            ]
            candidates, samples = run_parallel(
                _fig7_seed_task, tasks, jobs=jobs, collect_obs=True
            )
            recorder.add_worker_samples(samples)
            accepted = select(candidates)
            chosen = accepted or max(
                candidates, key=lambda c: c.total_contrast_db
            )
    return chosen
