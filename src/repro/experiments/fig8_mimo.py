"""Figure 8: distribution of 2x2 MIMO condition number per configuration.

"we replace the transceivers with a 2x2 MIMO transceiver pair in a
non-line-of-sight configuration ... and measure the 2x2 channel matrix for
each of the 64 PRESS configurations ... we plot a CDF of the channel
matrix condition number across subcarriers for each PRESS configuration.
Each CDF was computed from the mean of 50 successive channel
measurements."  The abstract quantifies the effect: "changing the 2x2 MIMO
channel condition number by 1.5 dB."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mimo.channel_matrix import condition_numbers_db
from .common import StudyConfig, build_mimo_setup, used_subcarrier_mask

__all__ = ["Fig8Result", "run_fig8"]


@dataclass(frozen=True)
class Fig8Result:
    """Per-configuration condition-number samples.

    Attributes
    ----------
    condition_db:
        Shape (num_configurations, num_used_subcarriers): condition number
        in dB of the repetition-averaged channel matrix per subcarrier.
    labels:
        Configuration labels in sweep order.
    """

    condition_db: np.ndarray
    labels: tuple[str, ...]

    @property
    def medians_db(self) -> np.ndarray:
        """Median condition number per configuration."""
        return np.median(self.condition_db, axis=1)

    @property
    def best_configuration(self) -> int:
        """Index of the configuration with the lowest median condition number."""
        return int(np.argmin(self.medians_db))

    @property
    def worst_configuration(self) -> int:
        return int(np.argmax(self.medians_db))

    @property
    def median_gap_db(self) -> float:
        """Best-to-worst median gap — the paper's 1.5 dB headline."""
        medians = self.medians_db
        return float(medians.max() - medians.min())


def run_fig8(
    placement_seed: int = 0,
    measurements_per_config: int = 50,
    config: StudyConfig = StudyConfig(),
    noise_seed: int = 5000,
    estimation_error_std: float = 0.05,
) -> Fig8Result:
    """Run the Figure 8 experiment.

    For each configuration, ``measurements_per_config`` noisy channel-matrix
    estimates are averaged before computing per-subcarrier condition
    numbers, mirroring §3.2.3's "mean of 50 successive channel
    measurements".
    """
    if measurements_per_config <= 0:
        raise ValueError(
            f"measurements_per_config must be positive, got {measurements_per_config}"
        )
    setup = build_mimo_setup(placement_seed, config)
    rng = np.random.default_rng(noise_seed)
    mask = used_subcarrier_mask()
    space = setup.array.configuration_space()
    configurations = list(space.all_configurations())
    condition_rows = []
    labels = []
    for configuration in configurations:
        accumulated = None
        for _ in range(measurements_per_config):
            h = setup.testbed.mimo_matrices(
                setup.tx_device,
                setup.rx_device,
                configuration,
                rng=rng,
                estimation_error_std=estimation_error_std,
            )
            accumulated = h if accumulated is None else accumulated + h
        mean_h = accumulated / measurements_per_config
        condition_rows.append(condition_numbers_db(mean_h[mask]))
        labels.append(setup.array.describe(configuration))
    return Fig8Result(
        condition_db=np.array(condition_rows),
        labels=tuple(labels),
    )
