"""RFocus-scale search: SNR gain versus soundings on wall-sized arrays.

The §4.2 space-navigation challenge at the scale the paper gestures at:
"walls coated with elements" put thousands of switched elements in the
space, so the M^N configuration table can never be enumerated (or even
held in memory).  This experiment sweeps element count x searcher over a
wall-sized grid (:func:`~repro.experiments.common.build_large_array_setup`)
and records each scalable searcher's SNR-gain-versus-soundings curve —
the figure of merit for a measurement-budgeted controller — through the
same run-record observability layer as the figure experiments.

All scoring runs on the precomputed channel basis via
:meth:`~repro.core.search.Searcher.search_basis`, so delta-capable
searchers (greedy coordinate descent, RFocus majority voting) pay O(K)
per flip regardless of N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.configuration import ArrayConfiguration
from ..core.objectives import MeanSnrObjective
from ..core.search import (
    GreedyCoordinateDescent,
    RandomSearch,
    RFocusMajoritySearch,
    Searcher,
)
from ..obs.records import RunRecorder
from .common import StudyConfig, build_large_array_setup, used_subcarrier_mask
from .runner import run_parallel

__all__ = [
    "DEFAULT_ELEMENT_COUNTS",
    "DEFAULT_SEARCHERS",
    "LargeArrayCell",
    "LargeArrayResult",
    "make_searcher",
    "run_large_array",
]

#: Element counts swept by default: prototype scale up to an RFocus-scale
#: wall (the RFocus prototype has 3200 elements; 1024 keeps the default
#: run interactive while exercising the same non-enumerable regime).
DEFAULT_ELEMENT_COUNTS = (64, 256, 1024)

#: The scalable searchers compared by default.  ``random`` is accepted too
#: as a budget-matched baseline.
DEFAULT_SEARCHERS = ("greedy", "rfocus")

#: Maximum points kept per gain-versus-soundings curve (downsampled
#: evenly; the final point is always the full-budget result).
TRAJECTORY_POINTS = 128


def make_searcher(name: str, seed: int) -> Searcher:
    """A named searcher for the large-array sweep.

    ``greedy``
        Delta-powered coordinate descent — N*(M-1) soundings per sweep.
    ``rfocus``
        Randomized-perturbation majority voting — soundings independent
        of N (rounds * (perturbations + 1) probes).
    ``random``
        Uniform sampling, budget-matched to the rfocus defaults, as the
        no-structure baseline.
    """
    if name == "greedy":
        return GreedyCoordinateDescent(max_sweeps=4, restarts=1, seed=seed)
    if name == "rfocus":
        return RFocusMajoritySearch(seed=seed)
    if name == "random":
        defaults = RFocusMajoritySearch()
        return RandomSearch(
            budget=defaults.rounds * (defaults.perturbations + 1), seed=seed
        )
    raise ValueError(
        f"unknown searcher {name!r}; expected one of 'greedy', 'rfocus', 'random'"
    )


@dataclass(frozen=True)
class LargeArrayCell:
    """One (element count, searcher) cell of the sweep.

    Attributes
    ----------
    num_elements:
        Array size N for this cell.
    searcher:
        Searcher name (``greedy`` / ``rfocus`` / ``random``).
    searcher_seed:
        The seed the searcher ran with (base seed + cell index).
    baseline_db:
        Mean used-subcarrier SNR of the all-zeros configuration.
    best_db:
        Mean used-subcarrier SNR of the best configuration found.
    soundings:
        Objective evaluations the search spent (its measurement budget).
    trajectory_soundings, trajectory_gain_db:
        The SNR-gain-versus-soundings curve: best-so-far gain over the
        baseline after each recorded sounding, downsampled to at most
        :data:`TRAJECTORY_POINTS` points.
    """

    num_elements: int
    searcher: str
    searcher_seed: int
    baseline_db: float
    best_db: float
    soundings: int
    trajectory_soundings: tuple[int, ...]
    trajectory_gain_db: tuple[float, ...]

    @property
    def gain_db(self) -> float:
        """SNR gain of the found configuration over the all-zeros baseline."""
        return self.best_db - self.baseline_db


@dataclass(frozen=True)
class LargeArrayResult:
    """The full element-count x searcher sweep."""

    cells: tuple[LargeArrayCell, ...]

    def cell(self, num_elements: int, searcher: str) -> LargeArrayCell:
        """The cell for one (N, searcher) pair."""
        for candidate in self.cells:
            if candidate.num_elements == num_elements and candidate.searcher == searcher:
                return candidate
        raise KeyError(f"no cell for N={num_elements}, searcher={searcher!r}")

    @property
    def element_counts(self) -> tuple[int, ...]:
        """The distinct element counts, in sweep order."""
        seen: list[int] = []
        for cell in self.cells:
            if cell.num_elements not in seen:
                seen.append(cell.num_elements)
        return tuple(seen)


@dataclass(frozen=True)
class _LargeArrayTask:
    """One cell's worker payload (picklable value types only)."""

    num_elements: int
    searcher: str
    searcher_seed: int
    placement_seed: int
    config: StudyConfig


def _downsample_trajectory(
    trajectory: Sequence[float], baseline_db: float
) -> tuple[tuple[int, ...], tuple[float, ...]]:
    """Evenly thin a best-so-far trajectory to TRAJECTORY_POINTS points."""
    total = len(trajectory)
    if total == 0:
        return (), ()
    count = min(TRAJECTORY_POINTS, total)
    indices = np.unique(
        np.round(np.linspace(0, total - 1, count)).astype(int)
    )
    values = np.asarray(trajectory, dtype=float)
    soundings = tuple(int(index) + 1 for index in indices)
    gains = tuple(float(value - baseline_db) for value in values[indices])
    return soundings, gains


def _large_array_task(task: _LargeArrayTask) -> LargeArrayCell:
    """One cell: build the wall array, trace its basis, run the search.

    Deterministic in the task payload alone (geometry is deterministic
    given the placement seed; searchers are seeded explicitly), so
    parallel runs are bit-identical to serial at any worker count.
    """
    setup = build_large_array_setup(
        task.placement_seed, num_elements=task.num_elements, config=task.config
    )
    basis = setup.testbed.basis_for(setup.tx_device, setup.rx_device)
    mask = used_subcarrier_mask()
    objective = MeanSnrObjective()
    evaluator = basis.evaluator(
        objective,
        tx_power_dbm=setup.tx_device.tx_power_dbm,
        noise_figure_db=setup.rx_device.noise_figure_db,
        mask=mask,
    )
    baseline_db = evaluator(
        ArrayConfiguration(tuple([0] * task.num_elements))
    )
    searcher = make_searcher(task.searcher, task.searcher_seed)
    result = searcher.search_basis(
        basis,
        objective,
        tx_power_dbm=setup.tx_device.tx_power_dbm,
        noise_figure_db=setup.rx_device.noise_figure_db,
        mask=mask,
    )
    soundings, gains = _downsample_trajectory(result.trajectory, baseline_db)
    return LargeArrayCell(
        num_elements=task.num_elements,
        searcher=task.searcher,
        searcher_seed=task.searcher_seed,
        baseline_db=float(baseline_db),
        best_db=float(result.best_score),
        soundings=result.num_evaluations,
        trajectory_soundings=soundings,
        trajectory_gain_db=gains,
    )


def run_large_array(
    element_counts: Sequence[int] = DEFAULT_ELEMENT_COUNTS,
    searchers: Sequence[str] = DEFAULT_SEARCHERS,
    placement_seed: int = 0,
    config: StudyConfig = StudyConfig(),
    base_seed: int = 0,
    jobs: Optional[int] = None,
    record_to: Optional[str] = None,
) -> LargeArrayResult:
    """Sweep element count x searcher on the wall-sized array.

    ``jobs`` fans the (N, searcher) cell axis across processes
    (``None``/``1`` serial, ``<= 0`` all CPUs); each cell's searcher seed
    is ``base_seed + cell index``, so results are bit-identical at any
    worker count.  ``record_to`` appends a schema-validated run record to
    the given JSONL file.
    """
    counts = tuple(int(count) for count in element_counts)
    names = tuple(searchers)
    if not counts or any(count <= 0 for count in counts):
        raise ValueError(f"element_counts must be positive, got {element_counts}")
    for name in names:
        make_searcher(name, 0)  # validate early, before any tracing
    tasks = [
        _LargeArrayTask(
            num_elements=count,
            searcher=name,
            searcher_seed=base_seed + index,
            placement_seed=placement_seed,
            config=config,
        )
        for index, (count, name) in enumerate(
            (count, name) for count in counts for name in names
        )
    ]
    with RunRecorder(
        "large_array",
        config={
            "element_counts": list(counts),
            "searchers": list(names),
            "study": config,
        },
        path=record_to,
        jobs=jobs,
        seeds={"base_seed": base_seed, "placement_seed": placement_seed},
    ) as recorder:
        cells, samples = run_parallel(
            _large_array_task, tasks, jobs=jobs, collect_obs=True
        )
        recorder.add_worker_samples(samples)
    return LargeArrayResult(cells=tuple(cells))
