"""The §3 line-of-sight control experiment.

"We first run experiments involving transmitter and receiver in line of
sight.  In these scenarios, the effect of the PRESS element configurations
on the per-subcarrier SNR is limited to less than 2 dB ... the
line-of-sight signal dominates over the reflection of much lower strength
from the passive PRESS elements.  This suggests that a passive PRESS array
is best suited to improving non-line-of-sight links."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import StudyConfig, build_los_setup, build_nlos_setup, used_subcarrier_mask

__all__ = ["LosStudyResult", "run_los_study"]


@dataclass(frozen=True)
class LosStudyResult:
    """Maximum per-subcarrier SNR swing, LoS vs NLoS.

    Attributes
    ----------
    los_swing_db:
        Largest per-subcarrier SNR difference across configurations with
        the direct path present (paper: < 2 dB).
    nlos_swing_db:
        The same with the direct path blocked (paper: up to 26 dB).
    """

    los_swing_db: float
    nlos_swing_db: float

    @property
    def passive_best_for_nlos(self) -> bool:
        """The §3 conclusion: passive elements matter only without LoS."""
        return self.nlos_swing_db > 5.0 * max(self.los_swing_db, 0.1)


def _max_swing_db(setup, repetitions: int, rng: np.random.Generator) -> float:
    """Largest per-subcarrier SNR spread across configs (repetition mean)."""
    sweep = setup.testbed.sweep(
        setup.tx_device, setup.rx_device, repetitions=repetitions, rng=rng
    )
    mask = used_subcarrier_mask()
    mean_snr = sweep.mean_snr_db()[:, mask]
    return float((mean_snr.max(axis=0) - mean_snr.min(axis=0)).max())


def run_los_study(
    placement_seed: int = 0,
    repetitions: int = 5,
    config: StudyConfig = StudyConfig(),
    noise_seed: int = 6000,
) -> LosStudyResult:
    """Measure configuration influence with and without the blocker."""
    los = build_los_setup(placement_seed, config)
    nlos = build_nlos_setup(placement_seed, config)
    los_swing = _max_swing_db(los, repetitions, np.random.default_rng(noise_seed))
    nlos_swing = _max_swing_db(nlos, repetitions, np.random.default_rng(noise_seed + 1))
    return LosStudyResult(los_swing_db=los_swing, nlos_swing_db=nlos_swing)
