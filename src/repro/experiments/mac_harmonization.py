"""MAC-level payoff of harmonization: Figure 7 carried up the stack.

Figure 7 shows PRESS can give two networks opposite half-band selectivity.
Whether that is *worth* anything depends on the MAC: two co-channel
networks already share via CSMA.  This experiment compares, with the
slotted-CSMA simulator of :mod:`repro.net.mac`:

* **co-channel CSMA** — both networks on the full band.  The APs sit in
  different rooms and cannot carrier-sense each other, but their clients
  are exposed — the classic hidden-terminal situation of "many
  [networks] operating in close proximity" (§1) — so overlaps corrupt
  frames instead of deferring;
* **static split** — half band each, no PRESS (each network keeps its
  ambient SNR on its half);
* **PRESS-harmonized split** — half band each, with the Figure 7
  configuration pair giving each network its favoured half.

Per-network PHY rate comes from the MCS ladder on the relevant subcarriers
(half-band operation halves the subcarrier count and therefore the rate at
equal MCS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.mac import MacConfig, MacStation, simulate_csma
from ..phy.rates import select_mcs
from .common import StudyConfig
from .fig7_harmonization import Fig7Result, run_fig7

__all__ = ["MacHarmonizationResult", "run_mac_harmonization"]


@dataclass(frozen=True)
class MacHarmonizationResult:
    """Aggregate throughput per regime [Mbps].

    Attributes
    ----------
    co_channel_mbps:
        Sum throughput with both networks contending on the full band.
    static_split_mbps:
        Sum throughput with a half-band split but no PRESS shaping.
    harmonized_mbps:
        Sum throughput with the PRESS-harmonized split.
    fig7:
        The underlying Figure 7 selectivity pair.
    """

    co_channel_mbps: float
    static_split_mbps: float
    harmonized_mbps: float
    fig7: Fig7Result

    @property
    def harmonization_gain(self) -> float:
        """Harmonized over co-channel sum throughput."""
        return self.harmonized_mbps / max(self.co_channel_mbps, 1e-9)


def _phy_rate_mbps(snr_db: np.ndarray, band_fraction: float) -> float:
    """PHY rate on a (sub-)band: MCS ladder scaled by the bandwidth share."""
    return select_mcs(snr_db).data_rate_mbps * band_fraction


def run_mac_harmonization(
    config: StudyConfig = StudyConfig(tx_power_dbm=-4.0),
    duration_s: float = 2.0,
    seed: int = 0,
    mac: MacConfig = MacConfig(),
    hidden_terminals: bool = True,
) -> MacHarmonizationResult:
    """Run the three regimes over one Figure 7 scenario.

    The default TX power (-4 dBm) puts the half-band SNRs across MCS
    switching points so channel shaping shows up in PHY rate;
    ``hidden_terminals`` controls whether the co-channel networks can
    carrier-sense each other.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    fig7 = run_fig7(config=config)
    rng = np.random.default_rng(seed)
    half = fig7.snr_a.size // 2
    # Which config favours which half.
    lower_snr = fig7.snr_a if fig7.contrast_a_db < 0 else fig7.snr_b
    upper_snr = fig7.snr_b if fig7.contrast_a_db < 0 else fig7.snr_a
    # Ambient reference: the mean of the two configs stands in for an
    # unshaped channel (any single config would serve both networks).
    ambient = (fig7.snr_a + fig7.snr_b) / 2.0

    def payload_bits(rate_mbps: float) -> int:
        return max(1, int(rate_mbps * 1e6 * mac.frame_airtime_s))

    # 1. Co-channel: both on the full band, mutually audible.
    full_rate = _phy_rate_mbps(ambient, band_fraction=1.0)
    co_mac = MacConfig(
        slot_time_s=mac.slot_time_s,
        difs_s=mac.difs_s,
        cw_min=mac.cw_min,
        cw_max=mac.cw_max,
        frame_airtime_s=mac.frame_airtime_s,
        payload_bits=payload_bits(full_rate),
        max_retries=mac.max_retries,
    )
    if hidden_terminals:
        stations = [
            MacStation(
                "net-1",
                can_hear=frozenset(),
                interferes_with=frozenset({"net-2"}),
            ),
            MacStation(
                "net-2",
                can_hear=frozenset(),
                interferes_with=frozenset({"net-1"}),
            ),
        ]
    else:
        stations = [
            MacStation("net-1", can_hear=frozenset({"net-2"})),
            MacStation("net-2", can_hear=frozenset({"net-1"})),
        ]
    co = simulate_csma(stations, duration_s, rng, co_mac)

    def split_throughput(snr_1: np.ndarray, snr_2: np.ndarray) -> float:
        total = 0.0
        for name, snr, band in (
            ("net-1", snr_1, (0, half)),
            ("net-2", snr_2, (half, snr_2.size)),
        ):
            rate = _phy_rate_mbps(snr[band[0] : band[1]], band_fraction=0.5)
            station_mac = MacConfig(
                slot_time_s=mac.slot_time_s,
                difs_s=mac.difs_s,
                cw_min=mac.cw_min,
                cw_max=mac.cw_max,
                frame_airtime_s=mac.frame_airtime_s,
                payload_bits=payload_bits(rate),
                max_retries=mac.max_retries,
            )
            result = simulate_csma(
                [MacStation(name)], duration_s, rng, station_mac
            )
            total += result.throughput_mbps(name)
        return total

    # 2. Static split: ambient channel on each half.
    static_total = split_throughput(ambient, ambient)
    # 3. Harmonized: each network's favoured configuration on its half.
    harmonized_total = split_throughput(lower_snr, upper_snr)

    return MacHarmonizationResult(
        co_channel_mbps=co.total_throughput_mbps(),
        static_split_mbps=static_total,
        harmonized_mbps=harmonized_total,
        fig7=fig7,
    )
