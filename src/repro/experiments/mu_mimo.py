"""Multi-user MIMO spatial multiplexing (§1's second question).

"How best to leverage spatial multiplexing in the multi-user MIMO channel,
to simultaneously move packets to or from multiple clients?"  A 2-antenna
AP serves two single-antenna clients with zero-forcing precoding; the
per-subcarrier user channel matrix's conditioning decides how much transmit
power ZF burns inverting it.  PRESS reshapes that matrix from the walls:
this experiment sweeps the array and reports the ZF sum rate per
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..constants import dbm_to_watts, thermal_noise_power_w
from ..core.configuration import ArrayConfiguration
from ..em.channel import subcarrier_frequencies
from ..em.geometry import Point
from ..em.paths import paths_to_cfr
from ..mimo.channel_matrix import condition_numbers_db
from ..mimo.precoding import zero_forcing_precoder
from ..sdr.device import SdrDevice, warp_v3
from ..sdr.testbed import Testbed
from .common import StudyConfig, build_mimo_setup, used_subcarrier_mask

__all__ = ["MuMimoResult", "mu_mimo_matrices", "zf_sum_rate_bits", "run_mu_mimo"]


def mu_mimo_matrices(
    testbed: Testbed,
    ap: SdrDevice,
    clients: Sequence[SdrDevice],
    configuration: ArrayConfiguration,
) -> np.ndarray:
    """Per-subcarrier multi-user downlink channel, shape (sc, users, tx)."""
    if len(clients) == 0:
        raise ValueError("need at least one client")
    freqs = subcarrier_frequencies(testbed.num_subcarriers, testbed.bandwidth_hz)
    h = np.zeros(
        (testbed.num_subcarriers, len(clients), ap.num_chains), dtype=complex
    )
    for user, client in enumerate(clients):
        for tx_chain in range(ap.num_chains):
            env = testbed.environment_paths(ap, client, tx_chain, 0)
            press = testbed.array.element_paths(
                configuration,
                ap.chains[tx_chain].position,
                client.chains[0].position,
                testbed.tracer,
                ap.chains[tx_chain].antenna,
                client.chains[0].antenna,
            )
            h[:, user, tx_chain] = paths_to_cfr(list(env) + press, freqs)
    return h


def zf_sum_rate_bits(
    matrices: np.ndarray,
    tx_power_dbm: float,
    bandwidth_hz: float,
    noise_figure_db: float = 7.0,
) -> float:
    """Mean zero-forcing downlink sum rate over subcarriers [bits/s/Hz].

    Per subcarrier: unit-total-power ZF precoder, per-user SNR from the
    diagonalised effective channel, Shannon rate summed over users.
    Singular (unprecodable) subcarriers contribute zero.

    Masked-subcarrier convention: the leading axis of ``matrices`` is
    taken at face value — both the per-subcarrier transmit-power split
    (``tx_power_dbm`` over ``num_sc`` bins) and the per-subcarrier noise
    bandwidth (``bandwidth_hz / num_sc``) divide by the number of rows
    actually passed.  Feeding a masked used-only subset, as
    :func:`run_mu_mimo` does, therefore concentrates the full transmit
    power and the full bandwidth in the used bins — matching an OFDM
    transmitter that puts no energy on guard/null carriers.  Pass the
    full occupied ``bandwidth_hz`` either way; do not pre-scale it by the
    mask fraction, and compare configurations only under one convention.
    """
    matrices = np.asarray(matrices, dtype=complex)
    if matrices.ndim != 3:
        raise ValueError(f"expected (sc, users, tx), got shape {matrices.shape}")
    num_sc = matrices.shape[0]
    power_w = dbm_to_watts(tx_power_dbm) / num_sc
    noise_w = thermal_noise_power_w(bandwidth_hz / num_sc, noise_figure_db)
    total = 0.0
    for h in matrices:
        try:
            w = zero_forcing_precoder(h)
        except ValueError:
            continue
        effective = h @ w
        gains = np.abs(np.diag(effective)) ** 2
        num_users = h.shape[0]
        per_user_power = power_w / num_users
        snrs = per_user_power * gains / noise_w
        total += float(np.sum(np.log2(1.0 + snrs)))
    return total / num_sc


@dataclass(frozen=True)
class MuMimoResult:
    """ZF sum rate and conditioning per configuration.

    Attributes
    ----------
    sum_rate_bits:
        Mean ZF sum rate per configuration [bits/s/Hz].
    median_condition_db:
        Median user-matrix condition number per configuration.
    labels:
        Configuration labels in sweep order.
    """

    sum_rate_bits: np.ndarray
    median_condition_db: np.ndarray
    labels: tuple[str, ...]

    @property
    def best_configuration(self) -> int:
        return int(np.argmax(self.sum_rate_bits))

    @property
    def worst_configuration(self) -> int:
        return int(np.argmin(self.sum_rate_bits))

    @property
    def rate_gain(self) -> float:
        """Best-over-worst sum-rate ratio."""
        worst = max(float(self.sum_rate_bits.min()), 1e-9)
        return float(self.sum_rate_bits.max()) / worst

    def conditioning_rate_correlation(self) -> float:
        """Correlation between (negative) conditioning and sum rate.

        Positive: better-conditioned configurations carry more rate — the
        §3.2.3 premise quantified at the network level.
        """
        return float(
            np.corrcoef(-self.median_condition_db, self.sum_rate_bits)[0, 1]
        )


def run_mu_mimo(
    placement_seed: int = 0,
    config: StudyConfig = StudyConfig(),
    client_spacing_m: float = 0.06,
    element_gain_dbi: float = 0.0,
) -> MuMimoResult:
    """Sweep all configurations of the MU-MIMO downlink scenario.

    The AP reuses the §3.2.3 MIMO geometry; the two clients sit around the
    original receiver position, ``client_spacing_m`` apart.  The default
    lambda/2 spacing correlates the user channels — the poorly conditioned
    "large MIMO" case §1 says PRESS should fix; at several wavelengths the
    users decorrelate and conditioning stops binding.
    """
    setup = build_mimo_setup(
        placement_seed, config, element_gain_dbi=element_gain_dbi
    )
    ap = setup.tx_device
    rx0 = setup.rx_device.position
    clients = [
        warp_v3("client-0", Point(rx0.x, rx0.y)),
        warp_v3("client-1", Point(rx0.x + client_spacing_m, rx0.y + 0.1)),
    ]
    mask = used_subcarrier_mask()
    space = setup.array.configuration_space()
    rates = []
    conditions = []
    labels = []
    for configuration in space.all_configurations():
        h = mu_mimo_matrices(setup.testbed, ap, clients, configuration)[mask]
        rates.append(
            zf_sum_rate_bits(
                h, config.tx_power_dbm, setup.testbed.bandwidth_hz
            )
        )
        conditions.append(float(np.median(condition_numbers_db(h))))
        labels.append(setup.array.describe(configuration))
    return MuMimoResult(
        sum_rate_bits=np.array(rates),
        median_condition_db=np.array(conditions),
        labels=tuple(labels),
    )
