"""Multi-user joint optimisation: strategy quality and admission at scale.

The §2 agility-vs-optimisation trade-off, measured: many concurrent user
pairs share one wall-sized programmable surface, and each strategy point
(per-link / joint / hybrid) is scored as user count climbs.  Grounded in
Liaskos et al. (arXiv:1812.11429) — the multi-user multi-objective
configuration problem — at the RFocus array scale, which is exactly what
the delta-powered multi-link scorer
(:class:`~repro.core.basis.MultiLinkDeltaEvaluator`) makes tractable.

Two sweeps share one scene:

* **strategy cells** — links × strategy: aggregate and worst-link score,
  sounding cost, distinct configurations, and the switching load the
  resulting packet-timescale schedule implies;
* **admission curve** — links arrive one at a time at a
  :class:`~repro.core.tenancy.MultiTenantController` whose per-link SNR
  floors are each user's solo optimum minus a headroom; the admission
  rate versus user count is the controller's graceful-degradation curve.

Both phases fan across processes via :func:`~repro.experiments.runner`
and are bit-identical at any ``--jobs`` (geometry is deterministic in the
placement seed; searchers and user placements are seeded explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.joint import BasisLink, JointResult
from ..core.objectives import MeanSnrObjective, joint_aggregate
from ..core.tenancy import MultiTenantController
from ..em.geometry import Point
from ..obs.records import RunRecorder
from .common import StudyConfig, StudySetup, build_large_array_setup, used_subcarrier_mask
from .large_array import make_searcher
from .runner import run_parallel

__all__ = [
    "DEFAULT_LINK_COUNTS",
    "DEFAULT_STRATEGIES",
    "AdmissionPoint",
    "MultiUserCell",
    "MultiUserResult",
    "build_user_links",
    "run_multi_user",
]

#: User counts swept by default.
DEFAULT_LINK_COUNTS = (2, 4, 8)

#: The §2 strategy spectrum, agile to static.
DEFAULT_STRATEGIES = ("per-link", "hybrid", "joint")

#: Users are placed uniformly inside a square of this side length centred
#: on the scenario's RX anchor (the same addressing coverage grids use).
USER_SPAN_M = 3.0


@dataclass(frozen=True)
class MultiUserCell:
    """One (user count, strategy) cell of the sweep."""

    num_links: int
    strategy: str
    searcher: str
    searcher_seed: int
    aggregate_db: float
    worst_link_db: float
    num_measurements: int
    num_distinct_configurations: int
    num_switches: int


@dataclass(frozen=True)
class AdmissionPoint:
    """Controller outcome after offering one population of users."""

    num_links: int
    admitted: int
    rejected: int
    reclusters: int
    admission_rate: float
    floor_headroom_db: float
    num_measurements: int


@dataclass(frozen=True)
class MultiUserResult:
    """The full links × strategy sweep plus the admission curve."""

    cells: tuple[MultiUserCell, ...]
    admission: tuple[AdmissionPoint, ...]

    def cell(self, num_links: int, strategy: str) -> MultiUserCell:
        for candidate in self.cells:
            if candidate.num_links == num_links and candidate.strategy == strategy:
                return candidate
        raise KeyError(f"no cell for L={num_links}, strategy={strategy!r}")

    @property
    def link_counts(self) -> tuple[int, ...]:
        seen: list[int] = []
        for cell in self.cells:
            if cell.num_links not in seen:
                seen.append(cell.num_links)
        return tuple(seen)


def build_user_links(
    setup: StudySetup,
    num_links: int,
    placement_seed: int,
    weights: Optional[Sequence[float]] = None,
) -> list[BasisLink]:
    """Basis-backed links for ``num_links`` users sharing the scene's array.

    User receivers are placed by a generator seeded from
    ``(placement_seed, num_links)``, so a population is a deterministic
    value; their bases ride the batched trace path (and the process-wide
    trace cache), one per user, all sharing the array's configuration
    space.
    """
    if num_links <= 0:
        raise ValueError(f"num_links must be positive, got {num_links}")
    rng = np.random.default_rng([placement_seed, num_links, 0x9E77])
    rx0 = setup.rx_device.position
    offsets = rng.uniform(-USER_SPAN_M / 2, USER_SPAN_M / 2, size=(num_links, 2))
    points = [
        Point(rx0.x + float(dx), rx0.y + float(dy)) for dx, dy in offsets
    ]
    bases = setup.testbed.bases_for_points(
        setup.tx_device, points, setup.rx_device.chains[0].antenna
    )
    mask = used_subcarrier_mask()
    if weights is None:
        weights = [1.0] * num_links
    return [
        BasisLink(
            name=f"user{index}",
            evaluator=basis.evaluator(
                MeanSnrObjective(),
                tx_power_dbm=setup.tx_device.tx_power_dbm,
                noise_figure_db=setup.rx_device.noise_figure_db,
                mask=mask,
            ),
            weight=float(weight),
        )
        for index, (basis, weight) in enumerate(zip(bases, weights))
    ]


@dataclass(frozen=True)
class _StrategyTask:
    """One strategy cell's worker payload (picklable value types only)."""

    num_links: int
    strategy: str
    searcher: str
    searcher_seed: int
    placement_seed: int
    num_elements: int
    aggregate: str
    tolerance: float
    config: StudyConfig


@dataclass(frozen=True)
class _AdmissionTask:
    """One admission-curve row's worker payload."""

    num_links: int
    searcher: str
    searcher_seed: int
    placement_seed: int
    num_elements: int
    aggregate: str
    tolerance: float
    floor_headroom_db: float
    config: StudyConfig


def _strategy_task(task: _StrategyTask) -> MultiUserCell:
    from ..core.joint import optimize_hybrid, optimize_joint, optimize_per_link

    setup = build_large_array_setup(
        task.placement_seed, num_elements=task.num_elements, config=task.config
    )
    links = build_user_links(setup, task.num_links, task.placement_seed)
    searcher = make_searcher(task.searcher, task.searcher_seed)
    aggregate = joint_aggregate(task.aggregate)
    result: JointResult
    if task.strategy == "per-link":
        result = optimize_per_link(links, searcher=searcher)
    elif task.strategy == "joint":
        result = optimize_joint(links, searcher=searcher, aggregate=aggregate)
    elif task.strategy == "hybrid":
        result = optimize_hybrid(links, searcher=searcher, tolerance=task.tolerance)
    else:
        raise ValueError(
            f"unknown strategy {task.strategy!r}; expected one of "
            f"{DEFAULT_STRATEGIES}"
        )
    schedule = result.schedule()
    return MultiUserCell(
        num_links=task.num_links,
        strategy=task.strategy,
        searcher=task.searcher,
        searcher_seed=task.searcher_seed,
        aggregate_db=float(result.aggregate_score(links, aggregate=aggregate)),
        worst_link_db=float(result.worst_link_score()),
        num_measurements=int(result.num_measurements),
        num_distinct_configurations=int(result.num_distinct_configurations),
        num_switches=int(schedule.num_switches),
    )


def _admission_task(task: _AdmissionTask) -> AdmissionPoint:
    setup = build_large_array_setup(
        task.placement_seed, num_elements=task.num_elements, config=task.config
    )
    links = build_user_links(setup, task.num_links, task.placement_seed)
    controller = MultiTenantController(
        searcher=make_searcher(task.searcher, task.searcher_seed),
        tolerance=task.tolerance,
        aggregate=joint_aggregate(task.aggregate),
    )
    admitted = rejected = reclusters = 0
    for index, link in enumerate(links):
        # Floor: what this user could get with the array to itself, minus
        # the headroom it is willing to concede to share it.
        solo_searcher = make_searcher(task.searcher, task.searcher_seed + index + 1)
        evaluator = link.evaluator
        solo = solo_searcher.search_basis(
            evaluator.basis,
            evaluator.objective,
            tx_power_dbm=evaluator.tx_power_dbm,
            noise_figure_db=evaluator.noise_figure_db,
            mask=evaluator.mask,
        )
        controller.total_measurements += solo.num_evaluations
        decision = controller.admit(
            link, snr_floor_db=solo.best_score - task.floor_headroom_db
        )
        if decision.admitted:
            admitted += 1
            reclusters += int(decision.reclustered)
        else:
            rejected += 1
    return AdmissionPoint(
        num_links=task.num_links,
        admitted=admitted,
        rejected=rejected,
        reclusters=reclusters,
        admission_rate=admitted / task.num_links,
        floor_headroom_db=task.floor_headroom_db,
        num_measurements=controller.total_measurements,
    )


def run_multi_user(
    link_counts: Sequence[int] = DEFAULT_LINK_COUNTS,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    num_elements: int = 256,
    placement_seed: int = 0,
    searcher: str = "greedy",
    aggregate: str = "mean",
    tolerance: float = 1.0,
    floor_headroom_db: float = 3.0,
    config: StudyConfig = StudyConfig(),
    base_seed: int = 0,
    jobs: Optional[int] = None,
    record_to: Optional[str] = None,
) -> MultiUserResult:
    """Sweep user count × strategy and trace the admission-rate curve.

    ``jobs`` fans both phases' cell axes across processes (``None``/``1``
    serial, ``<= 0`` all CPUs); every cell's searcher seed is derived from
    ``base_seed`` plus its index and user placements from the placement
    seed, so results are bit-identical at any worker count.  ``record_to``
    appends a schema-validated run record to the given JSONL file.
    """
    counts = tuple(int(count) for count in link_counts)
    names = tuple(strategies)
    if not counts or any(count <= 0 for count in counts):
        raise ValueError(f"link_counts must be positive, got {link_counts}")
    make_searcher(searcher, 0)  # validate early, before any tracing
    joint_aggregate(aggregate)
    for name in names:
        if name not in ("per-link", "joint", "hybrid"):
            raise ValueError(
                f"unknown strategy {name!r}; expected per-link, joint or hybrid"
            )
    strategy_tasks = [
        _StrategyTask(
            num_links=count,
            strategy=name,
            searcher=searcher,
            searcher_seed=base_seed + index,
            placement_seed=placement_seed,
            num_elements=num_elements,
            aggregate=aggregate,
            tolerance=tolerance,
            config=config,
        )
        for index, (count, name) in enumerate(
            (count, name) for count in counts for name in names
        )
    ]
    admission_tasks = [
        _AdmissionTask(
            num_links=count,
            searcher=searcher,
            searcher_seed=base_seed + len(strategy_tasks) + 101 * index,
            placement_seed=placement_seed,
            num_elements=num_elements,
            aggregate=aggregate,
            tolerance=tolerance,
            floor_headroom_db=floor_headroom_db,
            config=config,
        )
        for index, count in enumerate(counts)
    ]
    with RunRecorder(
        "multi_user",
        config={
            "link_counts": list(counts),
            "strategies": list(names),
            "num_elements": num_elements,
            "searcher": searcher,
            "aggregate": aggregate,
            "tolerance": tolerance,
            "floor_headroom_db": floor_headroom_db,
            "study": config,
        },
        path=record_to,
        jobs=jobs,
        seeds={"base_seed": base_seed, "placement_seed": placement_seed},
    ) as recorder:
        cells, samples = run_parallel(
            _strategy_task, strategy_tasks, jobs=jobs, collect_obs=True
        )
        recorder.add_worker_samples(samples)
        admission, samples = run_parallel(
            _admission_task, admission_tasks, jobs=jobs, collect_obs=True
        )
        recorder.add_worker_samples(samples)
    return MultiUserResult(cells=tuple(cells), admission=tuple(admission))
