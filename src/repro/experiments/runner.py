"""Parallel experiment runner: fan independent tasks across processes.

The figure experiments decompose along embarrassingly parallel axes —
placements (Figure 4), scenario seeds (Figure 7), repetitions (Figure 6),
grid placements (coverage suites).  This module is the one place that owns
how those axes fan out:

* :func:`run_parallel` maps a module-level task function over a task list,
  serially for ``jobs=1`` (no pool, no pickling — bit-identical to the
  historical loops) or on a ``concurrent.futures.ProcessPoolExecutor``
  otherwise, preserving task order either way.
* :func:`derive_seeds` derives per-task random seeds deterministically with
  ``numpy.random.SeedSequence.spawn`` — the statistically sound way to give
  parallel tasks independent streams from one base seed.  Results depend
  only on ``(base_seed, task index)``, never on worker scheduling, so any
  ``jobs`` value reproduces any other.
* With ``collect_obs=True``, :func:`run_parallel` also returns each task's
  observability delta — the per-worker metrics/span sample the run-record
  sink merges into a complete run-level view at any ``--jobs``
  (:func:`merged_telemetry`), fixing the parent-only blind spot the old
  :func:`process_telemetry` documented.

Task functions must be module-level (picklable) and tasks/results must
survive a round-trip through pickle; every experiment's task payload here
is a tuple of frozen value dataclasses and ints, and every result a frozen
dataclass of arrays.
"""

from __future__ import annotations

import atexit
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..obs.context import RequestCapture, RequestContext, bind_context, request_span
from ..obs.records import ObsSample, current_sample, merge_samples
from ..obs.tracing import global_tracer

__all__ = [
    "available_cpus",
    "resolve_jobs",
    "derive_seeds",
    "run_parallel",
    "shared_pool",
    "warm_pool",
    "shutdown_shared_pools",
    "process_telemetry",
    "merged_telemetry",
]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def available_cpus() -> int:
    """CPUs available to this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a worker count.

    ``None`` and ``1`` mean serial; ``0`` or negative mean "all available
    CPUs"; any other positive value is taken literally.
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return available_cpus()
    return int(jobs)


def derive_seeds(base_seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences from one base seed.

    ``SeedSequence.spawn`` guarantees the children's streams are mutually
    independent and fully determined by ``(base_seed, index)`` — the
    per-task seeding contract that makes parallel results identical at any
    worker count.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return np.random.SeedSequence(base_seed).spawn(count)


def process_telemetry() -> dict:
    """Deprecated: trace-cache counters for *this process only*.

    Use :func:`merged_telemetry` (fed by ``run_parallel(collect_obs=True)``
    samples), which aggregates across worker processes instead of seeing
    only the parent.  Kept as a thin shim for callers of the old API.
    """
    warnings.warn(
        "process_telemetry() sees only the parent process; use "
        "merged_telemetry() with run_parallel(collect_obs=True) samples "
        "for complete cross-worker totals",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..em.trace_cache import global_trace_cache

    cache = global_trace_cache()
    return {
        "trace_cache_hits": cache.hits,
        "trace_cache_misses": cache.misses,
        "trace_cache_entries": len(cache),
    }


def merged_telemetry(
    worker_samples: Sequence[ObsSample] = (),
    since: Optional[ObsSample] = None,
) -> dict:
    """Run-level trace-cache totals: parent *plus* every worker.

    The successor of :func:`process_telemetry`: merges the parent process's
    registry (optionally only its delta ``since`` a sample taken at run
    start) with the per-task worker samples ``run_parallel(collect_obs=
    True)`` returned.  Hit/miss totals cover per-link and batched lookups;
    ``trace_cache_entries`` sums residency over the distinct processes.
    """
    parent = current_sample()
    if since is not None:
        parent = parent.delta(since)
    merged = merge_samples([parent, *worker_samples])
    counters = merged.metrics.counters
    return {
        "trace_cache_hits": counters.get("em.trace_cache.hits", 0)
        + counters.get("em.trace_cache.batch_hits", 0),
        "trace_cache_misses": counters.get("em.trace_cache.misses", 0)
        + counters.get("em.trace_cache.batch_misses", 0),
        "trace_cache_evictions": counters.get("em.trace_cache.evictions", 0),
        "trace_cache_entries": int(
            merged.metrics.gauges.get("em.trace_cache.entries", 0)
        ),
        "processes": len({parent.pid, *(s.pid for s in worker_samples)}),
    }


#: Process pools kept alive across :func:`run_parallel` calls, keyed by
#: worker count.  Pool startup costs ~0.2 s (fork + import) — more than a
#: whole small figure run — so paying it once per session instead of once
#: per call is what makes parallel runs of short workloads actually faster
#: than serial (the fig4 regression BENCH_trace.json used to record).
#: Workers hold no experiment state the results depend on: task functions
#: are pure functions of their pickled payloads, and observability is
#: shipped as per-task deltas, so reuse is invisible to outputs.
_SHARED_POOLS: dict[int, ProcessPoolExecutor] = {}


def _shared_pool(num_workers: int) -> ProcessPoolExecutor:
    """The persistent pool for ``num_workers``, creating it on first use."""
    pool = _SHARED_POOLS.get(num_workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=num_workers)
        _SHARED_POOLS[num_workers] = pool
    return pool


def _dispose_pool(num_workers: int) -> None:
    """Drop (and shut down) a pool, e.g. after its workers died."""
    pool = _SHARED_POOLS.pop(num_workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down every persistent worker pool (registered via atexit)."""
    for num_workers in list(_SHARED_POOLS):
        _dispose_pool(num_workers)


atexit.register(shutdown_shared_pools)


def shared_pool(jobs: Optional[int]) -> Optional[ProcessPoolExecutor]:
    """The persistent shared executor for a ``jobs`` request, or ``None``.

    The public seam for long-running drivers (the serving layer) that
    schedule their own work — e.g. via
    ``loop.run_in_executor(shared_pool(jobs), fn, ...)`` — instead of
    going through :func:`run_parallel`.  Serial requests (resolved worker
    count 1) return ``None`` so callers can run inline.  The pool is the
    same one :func:`run_parallel` uses: created once, reused across
    callers, shut down at interpreter exit.
    """
    num_workers = resolve_jobs(jobs)
    if num_workers <= 1:
        return None
    return _shared_pool(num_workers)


def warm_pool(jobs: Optional[int]) -> int:
    """Pre-start the worker pool a later :func:`run_parallel` will use.

    Returns the resolved worker count.  Benchmarks call this before
    timing so they measure steady-state parallel throughput, not one-off
    pool startup; long-running drivers may call it to move startup cost
    ahead of the first measured figure.
    """
    num_workers = resolve_jobs(jobs)
    if num_workers > 1:
        _shared_pool(num_workers)
    return num_workers


class _ObservedTask:
    """Picklable task wrapper shipping a per-task observability delta.

    Runs in the worker process: snapshots the worker's registry/tracer
    before and after the task, wraps the task in a ``task.<fn name>`` span,
    and returns ``(result, delta)``.  Per-task deltas (not cumulative
    snapshots) mean a worker that handles many tasks is never
    double-counted when the parent merges all samples.
    """

    __slots__ = ("fn", "span_name")

    def __init__(self, fn: Callable[[TaskT], ResultT]) -> None:
        self.fn = fn
        self.span_name = f"task.{getattr(fn, '__name__', 'task')}"

    def __call__(self, task: TaskT) -> Tuple[ResultT, ObsSample]:
        before = current_sample()
        # reprolint: disable=RPL006 -- per-task span names derive from the
        # wrapped function's __name__ at runtime; the `task.` prefix is the
        # statically known part.
        with global_tracer().span(self.span_name):
            result = self.fn(task)
        return result, current_sample().delta(before)


#: The request-scoped span a pool worker wraps its task in.  The emitted
#: record carries the worker's pid and the parent (batch) span id from the
#: shipped context, which is what lets a cross-process timeline stitch.
_SPAN_WORKER = "task.worker"


def traced_call(wire, fn, *args):
    """Run ``fn(*args)`` stitched into a request trace (pool-worker entry).

    ``wire`` is a :meth:`~repro.obs.context.RequestContext.to_wire` tuple
    (or ``None`` for an untraced call).  The call runs under the shipped
    context inside a ``task.worker`` request span, and every request-scoped
    span the task emits is captured and returned as plain dicts alongside
    the result — the event-loop process merges them into its
    :class:`~repro.obs.context.RequestTraceStore`, completing the
    cross-process timeline.  Tracing never changes ``fn``'s result: the
    wrapper adds clock reads only, and none at all when ``wire`` is
    ``None`` or observability is disabled in the worker.
    """
    if wire is None:
        return fn(*args), ()
    context = RequestContext.from_wire(wire)
    with RequestCapture(context.request_id) as capture:
        with bind_context(context):
            with request_span(_SPAN_WORKER, context):
                result = fn(*args)
    return result, tuple(record.as_dict() for record in capture.records)


def run_parallel(
    fn: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    jobs: Optional[int] = None,
    chunksize: int = 1,
    collect_obs: bool = False,
):
    """Map ``fn`` over ``tasks``, optionally across worker processes.

    Results come back in task order regardless of completion order.  With
    ``jobs`` resolving to 1 (the default) the map runs in-process — no
    executor, no pickling — so the serial path is exactly the historical
    per-item loop.

    Parameters
    ----------
    fn:
        A module-level (picklable) function of one task.
    tasks:
        The task payloads; each must be picklable when ``jobs > 1``.
    jobs:
        Worker processes: ``None``/``1`` serial, ``<= 0`` all CPUs.
    chunksize:
        Tasks handed to a worker per dispatch (larger amortises IPC for
        many small tasks).
    collect_obs:
        When true, return ``(results, worker_samples)`` where
        ``worker_samples`` is one :class:`~repro.obs.records.ObsSample`
        delta per task executed in a *worker* process.  The serial path
        returns an empty sample list — everything it records is already in
        the parent registry, so a caller measuring its own parent delta
        (e.g. :class:`~repro.obs.records.RunRecorder`) sees each event
        exactly once at any ``jobs`` value.

    Returns
    -------
    list, or ``(list, list[ObsSample])`` when ``collect_obs`` is true.
    """
    task_list = list(tasks)
    num_workers = resolve_jobs(jobs)
    if num_workers <= 1 or len(task_list) <= 1:
        if not collect_obs:
            return [fn(task) for task in task_list]
        # Serial tasks record straight into the parent registry/tracer (the
        # per-task span included), so the caller's own parent delta already
        # covers them — returning samples too would double count.
        wrapped = _ObservedTask(fn)
        return [wrapped(task)[0] for task in task_list], []
    num_workers = min(num_workers, len(task_list))
    mapped_fn = _ObservedTask(fn) if collect_obs else fn
    try:
        pool = _shared_pool(num_workers)
        mapped = list(pool.map(mapped_fn, task_list, chunksize=chunksize))
    except BrokenProcessPool:
        # A worker died (OOM, signal).  Replace the pool once and retry —
        # task functions are pure, so a retry is safe.
        _dispose_pool(num_workers)
        pool = _shared_pool(num_workers)
        mapped = list(pool.map(mapped_fn, task_list, chunksize=chunksize))
    if not collect_obs:
        return mapped
    results: List[ResultT] = [result for result, _ in mapped]
    samples = [sample for _, sample in mapped]
    return results, samples
