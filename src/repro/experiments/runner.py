"""Parallel experiment runner: fan independent tasks across processes.

The figure experiments decompose along embarrassingly parallel axes —
placements (Figure 4), scenario seeds (Figure 7), repetitions (Figure 6),
grid placements (coverage suites).  This module is the one place that owns
how those axes fan out:

* :func:`run_parallel` maps a module-level task function over a task list,
  serially for ``jobs=1`` (no pool, no pickling — bit-identical to the
  historical loops) or on a ``concurrent.futures.ProcessPoolExecutor``
  otherwise, preserving task order either way.
* :func:`derive_seeds` derives per-task random seeds deterministically with
  ``numpy.random.SeedSequence.spawn`` — the statistically sound way to give
  parallel tasks independent streams from one base seed.  Results depend
  only on ``(base_seed, task index)``, never on worker scheduling, so any
  ``jobs`` value reproduces any other.

Task functions must be module-level (picklable) and tasks/results must
survive a round-trip through pickle; every experiment's task payload here
is a tuple of frozen value dataclasses and ints, and every result a frozen
dataclass of arrays.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

__all__ = [
    "available_cpus",
    "resolve_jobs",
    "derive_seeds",
    "run_parallel",
    "process_telemetry",
]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def available_cpus() -> int:
    """CPUs available to this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a worker count.

    ``None`` and ``1`` mean serial; ``0`` or negative mean "all available
    CPUs"; any other positive value is taken literally.
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return available_cpus()
    return int(jobs)


def derive_seeds(base_seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences from one base seed.

    ``SeedSequence.spawn`` guarantees the children's streams are mutually
    independent and fully determined by ``(base_seed, index)`` — the
    per-task seeding contract that makes parallel results identical at any
    worker count.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return np.random.SeedSequence(base_seed).spawn(count)


def process_telemetry() -> dict:
    """Process-level counters experiments attach to their result records.

    Currently the geometry trace cache (:mod:`repro.em.trace_cache`) —
    hits, misses and residency for *this* process.  Worker processes of
    :func:`run_parallel` hold their own caches whose counters are not
    aggregated here, so with ``jobs > 1`` these numbers describe only the
    parent; they are observability data, not part of any experiment's
    deterministic result payload.
    """
    from ..em.trace_cache import global_trace_cache

    cache = global_trace_cache()
    return {
        "trace_cache_hits": cache.hits,
        "trace_cache_misses": cache.misses,
        "trace_cache_entries": len(cache),
    }


def run_parallel(
    fn: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[ResultT]:
    """Map ``fn`` over ``tasks``, optionally across worker processes.

    Results come back in task order regardless of completion order.  With
    ``jobs`` resolving to 1 (the default) the map runs in-process — no
    executor, no pickling — so the serial path is exactly the historical
    per-item loop.

    Parameters
    ----------
    fn:
        A module-level (picklable) function of one task.
    tasks:
        The task payloads; each must be picklable when ``jobs > 1``.
    jobs:
        Worker processes: ``None``/``1`` serial, ``<= 0`` all CPUs.
    chunksize:
        Tasks handed to a worker per dispatch (larger amortises IPC for
        many small tasks).
    """
    task_list = list(tasks)
    num_workers = resolve_jobs(jobs)
    if num_workers <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    num_workers = min(num_workers, len(task_list))
    with ProcessPoolExecutor(max_workers=num_workers) as pool:
        return list(pool.map(fn, task_list, chunksize=chunksize))
