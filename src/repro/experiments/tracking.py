"""Tracking a time-varying channel: re-optimisation policies under motion.

§2 frames PRESS's hardest constraint as the channel coherence time set by
people moving through the space.  This experiment makes the constraint
operational: a person walks through the §3 lab while a PRESS-enhanced link
runs, and different controller policies compete on time-averaged worst-
subcarrier SNR:

* **static** — optimise once at t=0, never again;
* **periodic** — re-run the search every ``reoptimize_interval_s``;
* **bandit** — an epsilon-greedy learner re-selects every step, paying one
  measurement per step instead of periodic sweeps;
* **model-based** — re-identifies the linear channel model (N+1
  measurements, :mod:`repro.core.prediction`) every interval and picks the
  predicted-best configuration: exhaustive-quality decisions at a fraction
  of the sounding cost.

The walker is re-traced each step, so the ambient channel genuinely
decorrelates; whatever a policy knew goes stale at the §2 rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.array import PressArray
from ..core.configuration import ArrayConfiguration
from ..core.learning import EpsilonGreedyBandit
from ..core.search import ExhaustiveSearch, Searcher
from ..em.mobility import TimeVaryingScene, walking_person
from ..em.geometry import Point
from ..sdr.testbed import Testbed
from .common import StudyConfig, build_nlos_setup, used_subcarrier_mask

__all__ = ["TrackingResult", "run_tracking"]


@dataclass(frozen=True)
class TrackingResult:
    """Time series of worst-subcarrier SNR for each policy.

    Attributes
    ----------
    times_s:
        Sample instants.
    min_snr_db:
        Policy name -> per-instant worst-subcarrier SNR.
    measurements:
        Policy name -> total over-the-air measurements spent.
    """

    times_s: np.ndarray
    min_snr_db: dict[str, np.ndarray]
    measurements: dict[str, int]

    def mean_min_snr_db(self, policy: str) -> float:
        return float(np.mean(self.min_snr_db[policy]))


def run_tracking(
    duration_s: float = 20.0,
    step_s: float = 0.5,
    walker_speed_mph: float = 2.0,
    reoptimize_interval_s: float = 5.0,
    placement_seed: int = 2,
    config: StudyConfig = StudyConfig(),
    searcher: Optional[Searcher] = None,
    seed: int = 0,
) -> TrackingResult:
    """Race the three policies over one walking-person realisation."""
    if duration_s <= 0 or step_s <= 0:
        raise ValueError("duration_s and step_s must be positive")
    if reoptimize_interval_s <= 0:
        raise ValueError("reoptimize_interval_s must be positive")
    base_setup = build_nlos_setup(placement_seed, config)
    mask = used_subcarrier_mask()
    scene = TimeVaryingScene(
        base=base_setup.testbed.scene,
        movers=(
            walking_person(
                Point(config.room_width_m * 0.6, config.room_height_m * 0.4),
                direction_rad=2.3,
                bounds=(config.room_width_m, config.room_height_m),
                speed_mph=walker_speed_mph,
            ),
        ),
    )
    array: PressArray = base_setup.array
    space = array.configuration_space()
    searcher = searcher or ExhaustiveSearch()
    times = np.arange(0.0, duration_s, step_s)

    def testbed_at(time_s: float) -> Testbed:
        return Testbed(scene=scene.scene_at(time_s), array=array)

    def min_snr(testbed: Testbed, configuration: ArrayConfiguration) -> float:
        observation = testbed.measure_csi(
            base_setup.tx_device, base_setup.rx_device, configuration
        )
        return float(observation.snr_db[mask].min())

    results: dict[str, np.ndarray] = {}
    measurements: dict[str, int] = {}

    # Static: one search at t=0.
    testbed0 = testbed_at(0.0)
    static_search = searcher.search(space, lambda c: min_snr(testbed0, c))
    static_config = static_search.best
    series = np.array([min_snr(testbed_at(t), static_config) for t in times])
    results["static"] = series
    measurements["static"] = static_search.num_evaluations

    # Periodic: re-search every interval, hold in between.
    periodic_config = static_config
    spent = static_search.num_evaluations
    next_reopt = reoptimize_interval_s
    periodic_series = []
    for t in times:
        testbed = testbed_at(float(t))
        if t >= next_reopt:
            search = searcher.search(space, lambda c: min_snr(testbed, c))
            periodic_config = search.best
            spent += search.num_evaluations
            next_reopt += reoptimize_interval_s
        periodic_series.append(min_snr(testbed, periodic_config))
    results["periodic"] = np.array(periodic_series)
    measurements["periodic"] = spent

    # Model-based: re-identify the linear model every interval (N+1
    # soundings), then pick the predicted-best configuration for free.
    from ..core.objectives import MinSnrObjective
    from ..core.prediction import (
        fit_channel_model,
        identification_configurations,
        predict_and_pick,
    )

    schedule = identification_configurations(array)
    model_config = static_config
    model_spent = 0
    next_ident = 0.0
    model_series = []
    for t in times:
        testbed = testbed_at(float(t))
        if t >= next_ident:
            cfrs = [
                testbed.channel(
                    base_setup.tx_device, base_setup.rx_device, c
                ).cfr()[mask]
                for c in schedule
            ]
            model = fit_channel_model(
                array, schedule, cfrs, testbed.frequency_hz
            )
            model_config, _ = predict_and_pick(array, model, MinSnrObjective())
            model_spent += len(schedule)
            next_ident += reoptimize_interval_s
        model_series.append(min_snr(testbed, model_config))
    results["model-based"] = np.array(model_series)
    measurements["model-based"] = model_spent

    # Bandit: one exploratory or exploiting measurement per step; the link
    # then runs on the bandit's current best estimate.
    bandit = EpsilonGreedyBandit(space, epsilon=0.2, forgetting=0.6, seed=seed)
    bandit_series = []
    for t in times:
        testbed = testbed_at(float(t))
        bandit.step(lambda c: min_snr(testbed, c))
        best = bandit.best_known()
        assert best is not None
        bandit_series.append(min_snr(testbed, best))
    results["bandit"] = np.array(bandit_series)
    measurements["bandit"] = bandit.total_pulls

    return TrackingResult(
        times_s=times, min_snr_db=results, measurements=measurements
    )
