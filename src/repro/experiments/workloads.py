"""Traffic workloads: the set of senders and receivers changes (§2).

"But furthermore, depending on traffic patterns, PRESS will very likely
reap additional performance benefits from switching strategies on
packet-level timescales of one to two milliseconds, as the set of senders
and receivers changes."

This module generates on/off traffic for a set of links (exponential
holding times, the classic on/off source model) and evaluates dynamic
PRESS strategies over the resulting epochs:

* **static-joint** — one configuration optimised once for all links,
  regardless of who is active;
* **reactive-joint** — re-optimise jointly for the active set whenever it
  changes (fresh search per epoch);
* **cached** — like reactive, but memoise the chosen configuration per
  active set, so recurring traffic patterns pay the search once — §2's
  "jointly optimize over a large set of likely communication links,
  obviating the need to change the PRESS array".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.configuration import ArrayConfiguration, ConfigurationSpace
from ..core.joint import LinkObjective
from ..core.search import ExhaustiveSearch, Searcher

__all__ = [
    "TrafficEpoch",
    "generate_traffic",
    "DynamicStrategyResult",
    "evaluate_dynamic_strategies",
]


@dataclass(frozen=True)
class TrafficEpoch:
    """A maximal interval with a constant set of active links."""

    start_s: float
    duration_s: float
    active_links: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")


def generate_traffic(
    link_names: Sequence[str],
    duration_s: float,
    rng: np.random.Generator,
    mean_on_s: float = 4.0,
    mean_off_s: float = 4.0,
) -> list[TrafficEpoch]:
    """On/off traffic per link, merged into constant-activity epochs.

    Each link alternates between on and off states with exponential holding
    times; epochs are the maximal intervals between any link's transitions.
    Epochs where no link is active are included (the array idles).
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if mean_on_s <= 0 or mean_off_s <= 0:
        raise ValueError("mean_on_s and mean_off_s must be positive")
    if not link_names:
        raise ValueError("need at least one link")
    # Per-link timelines of (time, is_on) transitions.
    transition_times: set[float] = {0.0, duration_s}
    state_changes: dict[str, list[tuple[float, bool]]] = {}
    for name in link_names:
        on = bool(rng.random() < mean_on_s / (mean_on_s + mean_off_s))
        t = 0.0
        changes = [(0.0, on)]
        while t < duration_s:
            hold = float(
                rng.exponential(mean_on_s if on else mean_off_s)
            )
            t += max(hold, 1e-6)
            if t >= duration_s:
                break
            on = not on
            changes.append((t, on))
            transition_times.add(t)
        state_changes[name] = changes
    boundaries = sorted(transition_times)

    def active_at(time_s: float, name: str) -> bool:
        state = False
        for change_time, is_on in state_changes[name]:
            if change_time <= time_s:
                state = is_on
            else:
                break
        return state

    epochs = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if end - start <= 1e-9:
            continue
        midpoint = (start + end) / 2.0
        active = tuple(
            name for name in link_names if active_at(midpoint, name)
        )
        epochs.append(
            TrafficEpoch(start_s=start, duration_s=end - start, active_links=active)
        )
    return epochs


@dataclass(frozen=True)
class DynamicStrategyResult:
    """Outcome of one dynamic strategy over a workload.

    Attributes
    ----------
    strategy:
        Strategy name.
    time_weighted_score:
        Mean per-active-link score, weighted by epoch duration (idle
        epochs excluded).
    num_searches:
        How many searches the strategy ran.
    num_measurements:
        Total over-the-air soundings.
    """

    strategy: str
    time_weighted_score: float
    num_searches: int
    num_measurements: int


def _joint_score(
    links: dict[str, LinkObjective],
    active: Sequence[str],
) -> Callable[[ArrayConfiguration], float]:
    def score(configuration: ArrayConfiguration) -> float:
        return float(
            np.mean([links[name].score(configuration) for name in active])
        )

    return score


def evaluate_dynamic_strategies(
    links: Sequence[LinkObjective],
    space: ConfigurationSpace,
    epochs: Sequence[TrafficEpoch],
    searcher: Searcher = ExhaustiveSearch(),
) -> dict[str, DynamicStrategyResult]:
    """Race the three dynamic strategies over one traffic realisation."""
    if not links:
        raise ValueError("need at least one link")
    if not epochs:
        raise ValueError("need at least one epoch")
    by_name = {link.name: link for link in links}

    def epoch_quality(
        epoch: TrafficEpoch, configuration: ArrayConfiguration
    ) -> Optional[float]:
        if not epoch.active_links:
            return None
        return float(
            np.mean(
                [by_name[name].score(configuration) for name in epoch.active_links]
            )
        )

    def weighted(results: list[tuple[float, Optional[float]]]) -> float:
        total_time = sum(duration for duration, quality in results if quality is not None)
        if total_time == 0:
            return 0.0
        return (
            sum(
                duration * quality
                for duration, quality in results
                if quality is not None
            )
            / total_time
        )

    outcomes: dict[str, DynamicStrategyResult] = {}

    # Static-joint: optimise once for all links.
    static_search = searcher.search(
        space, _joint_score(by_name, [link.name for link in links])
    )
    static_samples = [
        (epoch.duration_s, epoch_quality(epoch, static_search.best))
        for epoch in epochs
    ]
    outcomes["static-joint"] = DynamicStrategyResult(
        strategy="static-joint",
        time_weighted_score=weighted(static_samples),
        num_searches=1,
        num_measurements=static_search.num_evaluations * len(links),
    )

    # Reactive-joint: fresh search per active-set change.
    samples = []
    searches = 0
    measurements = 0
    previous_active: Optional[tuple[str, ...]] = None
    configuration: Optional[ArrayConfiguration] = None
    for epoch in epochs:
        if epoch.active_links and epoch.active_links != previous_active:
            result = searcher.search(
                space, _joint_score(by_name, epoch.active_links)
            )
            configuration = result.best
            searches += 1
            measurements += result.num_evaluations * len(epoch.active_links)
            previous_active = epoch.active_links
        samples.append(
            (
                epoch.duration_s,
                epoch_quality(epoch, configuration)
                if configuration is not None
                else None,
            )
        )
    outcomes["reactive-joint"] = DynamicStrategyResult(
        strategy="reactive-joint",
        time_weighted_score=weighted(samples),
        num_searches=searches,
        num_measurements=measurements,
    )

    # Cached: memoise the configuration per active set.
    cache: dict[tuple[str, ...], ArrayConfiguration] = {}
    samples = []
    searches = 0
    measurements = 0
    for epoch in epochs:
        if epoch.active_links:
            if epoch.active_links not in cache:
                result = searcher.search(
                    space, _joint_score(by_name, epoch.active_links)
                )
                cache[epoch.active_links] = result.best
                searches += 1
                measurements += result.num_evaluations * len(epoch.active_links)
            configuration = cache[epoch.active_links]
            samples.append((epoch.duration_s, epoch_quality(epoch, configuration)))
        else:
            samples.append((epoch.duration_s, None))
    outcomes["cached"] = DynamicStrategyResult(
        strategy="cached",
        time_weighted_score=weighted(samples),
        num_searches=searches,
        num_measurements=measurements,
    )
    return outcomes
