"""MIMO substrate: channel matrices, conditioning, capacity, precoding, detection."""

from .capacity import capacity_bits, ofdm_capacity_bits, waterfilling_capacity_bits
from .channel_matrix import MimoChannel, condition_number_db, condition_numbers_db
from .detection import mmse_detect, post_detection_snr_db, zf_detect
from .precoding import (
    mmse_precoder,
    precoding_power_penalty_db,
    zero_forcing_precoder,
)

__all__ = [
    "MimoChannel",
    "condition_number_db",
    "condition_numbers_db",
    "capacity_bits",
    "waterfilling_capacity_bits",
    "ofdm_capacity_bits",
    "zero_forcing_precoder",
    "mmse_precoder",
    "precoding_power_penalty_db",
    "zf_detect",
    "mmse_detect",
    "post_detection_snr_db",
]
