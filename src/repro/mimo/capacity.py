"""MIMO channel capacity.

Quantifies the paper's claim that the condition number is "critically
important to the channel capacity" (§3.2.3): Shannon capacity with equal
power allocation and with waterfilling, per subcarrier and averaged over an
OFDM channel.
"""

from __future__ import annotations

import numpy as np

__all__ = ["capacity_bits", "waterfilling_capacity_bits", "ofdm_capacity_bits"]


def capacity_bits(matrix: np.ndarray, snr_linear: float) -> float:
    """Equal-power MIMO capacity log2 det(I + (SNR/Nt) H H*) in bits/s/Hz.

    ``snr_linear`` is the total transmit SNR; power is split evenly across
    transmit antennas (no CSI at the transmitter).
    """
    if snr_linear < 0:
        raise ValueError(f"snr_linear must be non-negative, got {snr_linear}")
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    num_tx = matrix.shape[1]
    gram = matrix @ matrix.conj().T
    eye = np.eye(matrix.shape[0])
    sign, logdet = np.linalg.slogdet(eye + (snr_linear / num_tx) * gram)
    if sign <= 0:
        raise ArithmeticError("capacity determinant became non-positive")
    return float(logdet / np.log(2.0))


def waterfilling_capacity_bits(matrix: np.ndarray, snr_linear: float) -> float:
    """Capacity with waterfilling power allocation over the eigenmodes.

    Requires transmitter CSI; always at least the equal-power capacity.
    """
    if snr_linear < 0:
        raise ValueError(f"snr_linear must be non-negative, got {snr_linear}")
    matrix = np.asarray(matrix, dtype=complex)
    gains = np.linalg.svd(matrix, compute_uv=False) ** 2
    gains = gains[gains > 1e-15]
    if gains.size == 0 or snr_linear == 0:
        return 0.0
    # Waterfilling: p_i = max(mu - 1/(snr * g_i), 0), sum p_i = 1.
    inv = 1.0 / (snr_linear * gains)
    order = np.argsort(inv)
    inv_sorted = inv[order]
    active = gains.size
    while active > 0:
        mu = (1.0 + inv_sorted[:active].sum()) / active
        if mu > inv_sorted[active - 1]:
            break
        active -= 1
    powers = np.maximum(mu - inv_sorted[:active], 0.0)
    capacity = np.sum(np.log2(1.0 + snr_linear * gains[order][:active] * powers))
    return float(capacity)


def ofdm_capacity_bits(matrices: np.ndarray, snr_linear: float) -> float:
    """Mean equal-power capacity across a stack of per-subcarrier matrices."""
    matrices = np.asarray(matrices, dtype=complex)
    if matrices.ndim != 3:
        raise ValueError(f"expected (subcarriers, rx, tx), got shape {matrices.shape}")
    return float(np.mean([capacity_bits(h, snr_linear) for h in matrices]))
