"""Per-subcarrier MIMO channel matrices and conditioning metrics.

§3.2.3 measures "the 2x2 channel matrix for each of the 64 PRESS
configurations" and plots the distribution of the channel-matrix condition
number across subcarriers (Figure 8) — "critically important to the channel
capacity".  This module assembles H per subcarrier from per-antenna-pair
multipath components and computes the conditioning statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..em.paths import SignalPath, paths_to_cfr

__all__ = ["MimoChannel", "condition_number_db", "condition_numbers_db"]


def condition_number_db(matrix: np.ndarray) -> float:
    """Condition number (ratio of extreme singular values) in dB.

    20*log10(sigma_max / sigma_min) — the dB convention of Figure 8 and the
    Demel/Kita MIMO-conditioning literature.  A singular matrix returns
    +inf-like large value capped at 200 dB to keep statistics finite.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    singular = np.linalg.svd(matrix, compute_uv=False)
    smallest = singular[-1]
    if smallest <= 1e-12 * singular[0]:
        return 200.0
    return float(20.0 * np.log10(singular[0] / smallest))


def condition_numbers_db(matrices: np.ndarray) -> np.ndarray:
    """Condition number in dB for a stack of matrices (..., rx, tx)."""
    matrices = np.asarray(matrices, dtype=complex)
    singular = np.linalg.svd(matrices, compute_uv=False)
    largest = singular[..., 0]
    smallest = singular[..., -1]
    ratio = np.where(smallest > 1e-12 * largest, largest / np.maximum(smallest, 1e-300), 1e10)
    return np.minimum(20.0 * np.log10(ratio), 200.0)


@dataclass(frozen=True)
class MimoChannel:
    """A MIMO channel: per-(rx, tx) antenna pair multipath components.

    Attributes
    ----------
    paths:
        ``paths[rx][tx]`` is the list of multipath components from transmit
        antenna ``tx`` to receive antenna ``rx``.
    frequencies_hz:
        Baseband subcarrier grid the matrices are evaluated on.
    """

    paths: tuple[tuple[tuple[SignalPath, ...], ...], ...]
    frequencies_hz: np.ndarray

    @staticmethod
    def from_lists(
        paths: Sequence[Sequence[Sequence[SignalPath]]],
        frequencies_hz: np.ndarray,
    ) -> "MimoChannel":
        """Build from nested lists, validating rectangularity."""
        num_rx = len(paths)
        if num_rx == 0:
            raise ValueError("need at least one receive antenna")
        num_tx = len(paths[0])
        if num_tx == 0:
            raise ValueError("need at least one transmit antenna")
        for row in paths:
            if len(row) != num_tx:
                raise ValueError("ragged path matrix: rows must have equal length")
        frozen = tuple(tuple(tuple(cell) for cell in row) for row in paths)
        return MimoChannel(paths=frozen, frequencies_hz=np.asarray(frequencies_hz, float))

    @property
    def num_rx(self) -> int:
        return len(self.paths)

    @property
    def num_tx(self) -> int:
        return len(self.paths[0])

    def matrices(self, time_s: float = 0.0) -> np.ndarray:
        """Channel matrices per subcarrier, shape (num_subcarriers, rx, tx)."""
        num_freq = self.frequencies_hz.size
        h = np.zeros((num_freq, self.num_rx, self.num_tx), dtype=complex)
        for i in range(self.num_rx):
            for j in range(self.num_tx):
                h[:, i, j] = paths_to_cfr(self.paths[i][j], self.frequencies_hz, time_s)
        return h

    def condition_numbers_db(self, time_s: float = 0.0) -> np.ndarray:
        """Per-subcarrier condition numbers in dB (the Figure 8 statistic)."""
        return condition_numbers_db(self.matrices(time_s))
