"""Linear MIMO detection (receiver side)."""

from __future__ import annotations

import numpy as np

__all__ = ["zf_detect", "mmse_detect", "post_detection_snr_db"]


def zf_detect(received: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Zero-forcing detection: x_hat = pinv(H) y."""
    matrix = np.asarray(matrix, dtype=complex)
    received = np.asarray(received, dtype=complex)
    return np.linalg.pinv(matrix) @ received


def mmse_detect(received: np.ndarray, matrix: np.ndarray, noise_var: float) -> np.ndarray:
    """MMSE detection: (H*H + n I)^-1 H* y."""
    if noise_var < 0:
        raise ValueError(f"noise_var must be non-negative, got {noise_var}")
    matrix = np.asarray(matrix, dtype=complex)
    received = np.asarray(received, dtype=complex)
    gram = matrix.conj().T @ matrix + noise_var * np.eye(matrix.shape[1])
    return np.linalg.solve(gram, matrix.conj().T @ received)


def post_detection_snr_db(matrix: np.ndarray, snr_linear: float) -> np.ndarray:
    """Per-stream SNR after ZF detection.

    Stream k sees snr / [ (H*H)^-1 ]_kk / Nt — the noise enhancement that a
    poorly conditioned channel (high Figure-8 condition number) inflicts.
    """
    if snr_linear < 0:
        raise ValueError(f"snr_linear must be non-negative, got {snr_linear}")
    matrix = np.asarray(matrix, dtype=complex)
    num_tx = matrix.shape[1]
    gram = matrix.conj().T @ matrix
    inv = np.linalg.inv(gram + 1e-15 * np.eye(num_tx))
    enhancement = np.real(np.diag(inv))
    per_stream = snr_linear / num_tx / np.maximum(enhancement, 1e-300)
    return 10.0 * np.log10(np.maximum(per_stream, 1e-30))
