"""Linear MIMO precoding (transmitter side).

Zero-forcing and MMSE precoders for the multi-user downlink of §1's
"Improving Large MIMO performance" scenario: when the channel is poorly
conditioned, ZF precoding burns transmit power to invert it — which is why
a PRESS array that re-conditions the channel restores throughput "without
additional AP processing complexity".
"""

from __future__ import annotations

import numpy as np

__all__ = ["zero_forcing_precoder", "mmse_precoder", "precoding_power_penalty_db"]


def zero_forcing_precoder(matrix: np.ndarray) -> np.ndarray:
    """ZF precoder: pseudo-inverse of H, normalised to unit total power.

    Returns W such that H @ W is (proportional to) identity; columns are
    jointly scaled so ||W||_F^2 = number of streams.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    pinv = np.linalg.pinv(matrix)
    norm = np.linalg.norm(pinv, "fro")
    if norm == 0:
        raise ValueError("cannot precode an all-zero channel")
    streams = matrix.shape[0]
    return pinv * np.sqrt(streams) / norm


def mmse_precoder(matrix: np.ndarray, noise_var: float) -> np.ndarray:
    """Regularised ZF (MMSE / RZF) precoder, unit total power."""
    if noise_var < 0:
        raise ValueError(f"noise_var must be non-negative, got {noise_var}")
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    num_users = matrix.shape[0]
    gram = matrix.conj().T @ matrix + noise_var * np.eye(matrix.shape[1])
    w = np.linalg.solve(gram, matrix.conj().T)
    norm = np.linalg.norm(w, "fro")
    if norm == 0:
        raise ValueError("cannot precode an all-zero channel")
    return w * np.sqrt(num_users) / norm


def precoding_power_penalty_db(matrix: np.ndarray) -> float:
    """Transmit-power penalty of ZF inversion relative to a well-conditioned channel.

    The Frobenius norm of the (unnormalised) pseudo-inverse, referenced to
    the channel's mean singular value — grows directly with the condition
    number, making it a throughput-facing proxy for Figure 8's metric.
    """
    matrix = np.asarray(matrix, dtype=complex)
    singular = np.linalg.svd(matrix, compute_uv=False)
    if singular[-1] <= 1e-15:
        return 200.0
    mean_gain = float(np.mean(singular**2))
    inversion_cost = float(np.sum(1.0 / singular**2))
    streams = singular.size
    return float(10.0 * np.log10(mean_gain * inversion_cost / streams))
