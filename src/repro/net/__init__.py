"""Network layer: nodes/links, interference (SINR), harmonization metrics."""

from .alignment import (
    alignment_cosine,
    isolation_db,
    mean_alignment_cosine,
    post_nulling_inr_db,
)
from .harmonization import (
    HarmonizationPlan,
    best_partition,
    opposite_selectivity_db,
    partitioned_sum_rate_bits,
    subband_contrast_db,
)
from .interference import LinkQuality, sinr_db, sum_rate_bits
from .mac import MacConfig, MacResult, MacStation, simulate_csma
from .network import NetworkPair, Node, WirelessLink

__all__ = [
    "Node",
    "WirelessLink",
    "NetworkPair",
    "LinkQuality",
    "sinr_db",
    "sum_rate_bits",
    "subband_contrast_db",
    "opposite_selectivity_db",
    "HarmonizationPlan",
    "partitioned_sum_rate_bits",
    "best_partition",
    "alignment_cosine",
    "mean_alignment_cosine",
    "post_nulling_inr_db",
    "isolation_db",
    "MacConfig",
    "MacStation",
    "MacResult",
    "simulate_csma",
]
