"""Interference alignment and spatial partitioning metrics (§1).

"Another instance of network harmonization is interference alignment:
aligning the interference that two networks cause at a receiver in a third
network, so that that receiver may remove the interference from both
interfering networks in a single nulling step.  A third possibility is
simply to reduce interference between different pairs of wireless
conversations, spatially partitioning the space."

For a multi-antenna bystander receiving interference vectors h_1(f) and
h_2(f) from two networks, alignment quality is how close the two vectors
are to collinear: perfectly aligned interference occupies one spatial
dimension and a single zero-forcing null removes both.  We measure it with
the chordal distance / principal angle between the vectors per subcarrier.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "alignment_cosine",
    "mean_alignment_cosine",
    "post_nulling_inr_db",
    "isolation_db",
]


def alignment_cosine(h1: np.ndarray, h2: np.ndarray) -> float:
    """|<h1, h2>| / (|h1| |h2|): 1 = perfectly aligned, 0 = orthogonal."""
    h1 = np.asarray(h1, dtype=complex).ravel()
    h2 = np.asarray(h2, dtype=complex).ravel()
    if h1.shape != h2.shape:
        raise ValueError(f"shape mismatch: {h1.shape} vs {h2.shape}")
    n1 = np.linalg.norm(h1)
    n2 = np.linalg.norm(h2)
    if n1 == 0 or n2 == 0:
        raise ValueError("cannot measure alignment of a zero vector")
    return float(abs(np.vdot(h1, h2)) / (n1 * n2))


def mean_alignment_cosine(
    h1_per_subcarrier: np.ndarray, h2_per_subcarrier: np.ndarray
) -> float:
    """Mean alignment over subcarriers; arrays shaped (subcarriers, antennas)."""
    h1 = np.asarray(h1_per_subcarrier, dtype=complex)
    h2 = np.asarray(h2_per_subcarrier, dtype=complex)
    if h1.shape != h2.shape or h1.ndim != 2:
        raise ValueError(
            f"expected matching (subcarriers, antennas) arrays, got {h1.shape}, {h2.shape}"
        )
    return float(
        np.mean([alignment_cosine(a, b) for a, b in zip(h1, h2)])
    )


def post_nulling_inr_db(
    h1: np.ndarray,
    h2: np.ndarray,
    interferer_power_w: float,
    noise_power_w: float,
) -> float:
    """Residual interference-to-noise ratio after one spatial null.

    The bystander points its single zero-forcing null at the stronger
    interferer (h1); the residual is h2's component orthogonal to... the
    projection of h2 *onto the nulled dimension is removed*, so what leaks
    is h2's part orthogonal to the null — i.e. aligned interference leaks
    nothing.  Returns 10 log10(residual interference power / noise).
    """
    if interferer_power_w <= 0 or noise_power_w <= 0:
        raise ValueError("powers must be positive")
    h1 = np.asarray(h1, dtype=complex).ravel()
    h2 = np.asarray(h2, dtype=complex).ravel()
    if h1.shape != h2.shape:
        raise ValueError(f"shape mismatch: {h1.shape} vs {h2.shape}")
    n1 = np.linalg.norm(h1)
    if n1 == 0:
        raise ValueError("cannot null a zero interference vector")
    # Project h2 off the h1 direction: the nulling combiner annihilates
    # everything in span(h1).
    parallel = (np.vdot(h1, h2) / n1**2) * h1
    residual = h2 - parallel
    residual_power = interferer_power_w * float(np.linalg.norm(residual) ** 2)
    return float(10.0 * np.log10(max(residual_power / noise_power_w, 1e-30)))


def isolation_db(
    signal_gains: Sequence[float],
    interference_gains: Sequence[float],
) -> float:
    """Spatial-partitioning quality: mean signal-to-interference gain ratio.

    ``signal_gains`` are each conversation's own |H|^2 (linear) and
    ``interference_gains`` the cross-conversation leakages; partitioning
    succeeds when the ratio is large.
    """
    signal = np.asarray(list(signal_gains), dtype=float)
    interference = np.asarray(list(interference_gains), dtype=float)
    if signal.size == 0 or interference.size == 0:
        raise ValueError("need at least one signal and one interference gain")
    if np.any(signal <= 0) or np.any(interference <= 0):
        raise ValueError("gains must be positive (linear power gains)")
    return float(10.0 * np.log10(np.mean(signal) / np.mean(interference)))
