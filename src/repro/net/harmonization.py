"""Network harmonization metrics (§1, §3.2.2, Figure 7).

Harmonization splits the band between two networks so each gets the half
where its communication channel is strong and its neighbour's interference
is weak.  These metrics quantify how well a pair of PRESS configurations
achieves that: per-half-band contrast, the opposite-selectivity criterion
of Figure 7, and the spectrum-partitioned sum rate of the Figure 2 picture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "subband_contrast_db",
    "opposite_selectivity_db",
    "HarmonizationPlan",
    "partitioned_sum_rate_bits",
]


def subband_contrast_db(snr_db: np.ndarray) -> float:
    """Mean(upper half-band SNR) - mean(lower half-band), in dB.

    Positive: the channel favours the upper half; negative: the lower.
    """
    snr = np.asarray(snr_db, dtype=float)
    if snr.size < 2:
        raise ValueError("need at least two subcarriers")
    half = snr.size // 2
    return float(np.mean(snr[half:]) - np.mean(snr[:half]))


def opposite_selectivity_db(snr_a_db: np.ndarray, snr_b_db: np.ndarray) -> float:
    """How opposite two channels' frequency selectivity is (Figure 7).

    The product of the two configurations' sub-band contrasts, sign-
    flipped: large and positive when one favours the lower half and the
    other the upper half ("each one favors its own half of the band").
    Measured in dB^2-like units; only comparisons are meaningful.
    """
    return float(-subband_contrast_db(snr_a_db) * subband_contrast_db(snr_b_db))


@dataclass(frozen=True)
class HarmonizationPlan:
    """A frequency split between two networks.

    Attributes
    ----------
    boundary:
        Subcarrier index where the band splits; network A gets
        ``[0, boundary)``, network B the rest.
    """

    boundary: int

    def __post_init__(self) -> None:
        if self.boundary <= 0:
            raise ValueError(f"boundary must be positive, got {self.boundary}")

    def masks(self, num_subcarriers: int) -> tuple[np.ndarray, np.ndarray]:
        """Boolean subcarrier masks for networks A and B."""
        if self.boundary >= num_subcarriers:
            raise ValueError(
                f"boundary {self.boundary} >= num_subcarriers {num_subcarriers}"
            )
        a = np.zeros(num_subcarriers, dtype=bool)
        a[: self.boundary] = True
        return a, ~a


def partitioned_sum_rate_bits(
    snr_a_db: np.ndarray,
    snr_b_db: np.ndarray,
    plan: HarmonizationPlan,
) -> float:
    """Sum Shannon rate when A uses its sub-band and B the complement.

    ``snr_a_db``/``snr_b_db`` are each network's communication-channel SNRs
    (interference-free, because the split makes transmissions orthogonal).
    """
    snr_a = np.asarray(snr_a_db, dtype=float)
    snr_b = np.asarray(snr_b_db, dtype=float)
    if snr_a.shape != snr_b.shape:
        raise ValueError(f"shape mismatch: {snr_a.shape} vs {snr_b.shape}")
    mask_a, mask_b = plan.masks(snr_a.size)
    rate_a = float(np.sum(np.log2(1.0 + 10.0 ** (snr_a[mask_a] / 10.0))))
    rate_b = float(np.sum(np.log2(1.0 + 10.0 ** (snr_b[mask_b] / 10.0))))
    return (rate_a + rate_b) / snr_a.size


def best_partition(
    snr_a_db: np.ndarray,
    snr_b_db: np.ndarray,
) -> tuple[HarmonizationPlan, float]:
    """The boundary maximising the partitioned sum rate."""
    snr_a = np.asarray(snr_a_db, dtype=float)
    best_plan = HarmonizationPlan(boundary=snr_a.size // 2)
    best_rate = partitioned_sum_rate_bits(snr_a_db, snr_b_db, best_plan)
    for boundary in range(1, snr_a.size):
        plan = HarmonizationPlan(boundary=boundary)
        rate = partitioned_sum_rate_bits(snr_a_db, snr_b_db, plan)
        if rate > best_rate:
            best_plan, best_rate = plan, rate
    return best_plan, best_rate
