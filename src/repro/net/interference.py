"""Interference accounting: per-subcarrier SINR across co-located networks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..constants import dbm_to_watts, linear_to_db, thermal_noise_power_w

__all__ = ["sinr_db", "sum_rate_bits", "LinkQuality"]


@dataclass(frozen=True)
class LinkQuality:
    """Per-subcarrier signal and interference channel gains for one receiver.

    Attributes
    ----------
    signal_gain:
        |H_signal|^2 per subcarrier (linear).
    interference_gains:
        One |H_int|^2 array per concurrent interferer.
    """

    signal_gain: np.ndarray
    interference_gains: tuple[np.ndarray, ...] = ()

    def __post_init__(self) -> None:
        for gains in self.interference_gains:
            if np.asarray(gains).shape != np.asarray(self.signal_gain).shape:
                raise ValueError("interference gain shape mismatch")


def sinr_db(
    quality: LinkQuality,
    tx_power_dbm: float,
    num_subcarriers: int,
    bandwidth_hz: float,
    noise_figure_db: float = 7.0,
    interferer_power_dbm: float | None = None,
) -> np.ndarray:
    """Per-subcarrier SINR when interferers transmit concurrently.

    All transmitters split their power evenly over subcarriers; the noise
    floor is thermal over one subcarrier bandwidth.
    """
    if num_subcarriers <= 0:
        raise ValueError(f"num_subcarriers must be positive, got {num_subcarriers}")
    signal_power = dbm_to_watts(tx_power_dbm) / num_subcarriers
    if interferer_power_dbm is None:
        interferer_power_dbm = tx_power_dbm
    interferer_power = dbm_to_watts(interferer_power_dbm) / num_subcarriers
    noise = thermal_noise_power_w(bandwidth_hz / num_subcarriers, noise_figure_db)
    signal = signal_power * np.asarray(quality.signal_gain, dtype=float)
    interference = np.zeros_like(signal)
    for gains in quality.interference_gains:
        interference = interference + interferer_power * np.asarray(gains, dtype=float)
    return np.asarray(linear_to_db(signal / (interference + noise)))


def sum_rate_bits(sinrs_db: Sequence[np.ndarray]) -> float:
    """Aggregate Shannon rate (bits/s/Hz summed over links, mean over band)."""
    total = 0.0
    for sinr in sinrs_db:
        sinr = np.asarray(sinr, dtype=float)
        total += float(np.mean(np.log2(1.0 + 10.0 ** (sinr / 10.0))))
    return total
