"""A slotted CSMA/CA MAC simulator.

The §1 harmonization argument is ultimately a MAC-layer argument: two
co-channel networks that hear each other serialise on the medium (each
gets half the airtime), and two that *don't* hear each other collide at
their receivers.  Splitting the band — which PRESS makes profitable by
shaping each network's half — removes the contention entirely.  This
module simulates that mechanism with a DCF-style slotted CSMA/CA: binary
exponential backoff, carrier sensing by cross-channel gain, collisions,
and per-network throughput accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["MacConfig", "MacStation", "MacResult", "simulate_csma"]


@dataclass(frozen=True)
class MacConfig:
    """DCF-flavoured MAC timing (802.11a-like defaults).

    Attributes
    ----------
    slot_time_s:
        Backoff slot duration.
    difs_s:
        Idle period sensed before a transmission attempt.
    cw_min, cw_max:
        Contention-window bounds (slots).
    frame_airtime_s:
        Time one data frame (plus ACK and SIFS) occupies the medium.
    payload_bits:
        Information bits delivered by one successful frame.
    max_retries:
        Attempts before a frame is dropped.
    """

    slot_time_s: float = 9e-6
    difs_s: float = 34e-6
    cw_min: int = 15
    cw_max: int = 1023
    frame_airtime_s: float = 300e-6
    payload_bits: int = 12000
    max_retries: int = 7

    def __post_init__(self) -> None:
        if self.slot_time_s <= 0 or self.difs_s < 0 or self.frame_airtime_s <= 0:
            raise ValueError("timing parameters must be positive")
        if not 1 <= self.cw_min <= self.cw_max:
            raise ValueError(f"need 1 <= cw_min <= cw_max, got {self.cw_min}, {self.cw_max}")
        if self.payload_bits <= 0:
            raise ValueError(f"payload_bits must be positive, got {self.payload_bits}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")


@dataclass
class MacStation:
    """One saturated transmitter.

    Attributes
    ----------
    name:
        Station label.
    can_hear:
        Names of stations whose transmissions this one carrier-senses
        (controls deferral).
    interferes_with:
        Names of stations whose concurrent transmissions corrupt THIS
        station's frame at its receiver (controls collisions).  Hidden
        terminals are stations in ``interferes_with`` but not ``can_hear``:
        they are not deferred to, so they overlap and collide.  When
        ``None``, defaults to ``can_hear``.
    success_probability:
        Probability an uncollided frame is received (link quality; PER
        complement).
    """

    name: str
    can_hear: frozenset[str] = field(default_factory=frozenset)
    interferes_with: Optional[frozenset[str]] = None
    success_probability: float = 1.0

    @property
    def interferers(self) -> frozenset[str]:
        return self.interferes_with if self.interferes_with is not None else self.can_hear

    def __post_init__(self) -> None:
        if not 0.0 <= self.success_probability <= 1.0:
            raise ValueError(
                f"success_probability must be in [0, 1], got {self.success_probability}"
            )


@dataclass(frozen=True)
class MacResult:
    """Outcome of a CSMA simulation.

    Attributes
    ----------
    delivered_bits:
        Per-station successfully delivered bits.
    collisions:
        Per-station frames lost to collisions.
    attempts:
        Per-station transmission attempts.
    duration_s:
        Simulated time.
    """

    delivered_bits: dict[str, int]
    collisions: dict[str, int]
    attempts: dict[str, int]
    duration_s: float

    def throughput_mbps(self, name: str) -> float:
        return self.delivered_bits[name] / self.duration_s / 1e6

    def total_throughput_mbps(self) -> float:
        return sum(self.delivered_bits.values()) / self.duration_s / 1e6

    def collision_rate(self, name: str) -> float:
        attempts = self.attempts[name]
        if attempts == 0:
            return 0.0
        return self.collisions[name] / attempts


def simulate_csma(
    stations: Sequence[MacStation],
    duration_s: float,
    rng: np.random.Generator,
    config: MacConfig = MacConfig(),
) -> MacResult:
    """Slot-synchronous CSMA/CA with saturated stations.

    Time advances in backoff slots; a transmission freezes everyone who can
    hear it for the frame airtime.  Stations that cannot hear an ongoing
    transmission keep counting down and may start overlapping frames —
    the hidden-terminal collision case.  Overlapping frames between
    mutually audible stations also collide (simultaneous countdown
    expiry); whether an overlap corrupts a given frame is decided by the
    sender's ``interferes_with`` set.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if not stations:
        raise ValueError("need at least one station")
    names = [station.name for station in stations]
    if len(set(names)) != len(names):
        raise ValueError(f"station names must be unique, got {names}")
    by_name = {station.name: station for station in stations}

    delivered = {name: 0 for name in names}
    collisions = {name: 0 for name in names}
    attempts = {name: 0 for name in names}
    backoff = {
        name: int(rng.integers(0, config.cw_min + 1)) for name in names
    }
    retries = {name: 0 for name in names}
    # Remaining airtime of each in-flight frame, and whether it has been
    # stomped by an overlapping transmission the receiver can hear.
    in_flight: dict[str, float] = {}
    collided: set[str] = set()

    frame_slots = max(1, int(round(config.frame_airtime_s / config.slot_time_s)))
    difs_slots = max(1, int(round(config.difs_s / config.slot_time_s)))
    total_slots = int(duration_s / config.slot_time_s)

    def hears_any_active(name: str) -> bool:
        station = by_name[name]
        return any(other in station.can_hear for other in in_flight)

    slot = 0
    while slot < total_slots:
        slot += 1
        # Advance in-flight frames by one slot.
        finished = []
        for name in list(in_flight):
            in_flight[name] -= 1
            if in_flight[name] <= 0:
                finished.append(name)
        for name in finished:
            del in_flight[name]
            station = by_name[name]
            if name in collided:
                collided.discard(name)
                collisions[name] += 1
                retries[name] += 1
                if retries[name] > config.max_retries:
                    retries[name] = 0
                window = min(
                    config.cw_max,
                    (config.cw_min + 1) * 2 ** min(retries[name], 10) - 1,
                )
                backoff[name] = int(rng.integers(0, window + 1)) + difs_slots
            else:
                if rng.random() < station.success_probability:
                    delivered[name] += config.payload_bits
                retries[name] = 0
                backoff[name] = int(rng.integers(0, config.cw_min + 1)) + difs_slots
        # Stations not transmitting count down unless the medium they hear
        # is busy.
        starters = []
        for name in names:
            if name in in_flight:
                continue
            if hears_any_active(name):
                continue  # medium busy: freeze the countdown
            backoff[name] -= 1
            if backoff[name] <= 0:
                starters.append(name)
        for name in starters:
            attempts[name] += 1
            in_flight[name] = frame_slots
        # Collision marking: a frame is corrupted when any interferer of
        # its sender transmits concurrently.  Mutually audible stations
        # only overlap on simultaneous countdown expiry; hidden terminals
        # (interferer but not heard) overlap freely and collide often.
        active = list(in_flight)
        for first in active:
            for second in active:
                if first == second:
                    continue
                if second in by_name[first].interferers:
                    collided.add(first)
    return MacResult(
        delivered_bits=delivered,
        collisions=collisions,
        attempts=attempts,
        duration_s=duration_s,
    )
