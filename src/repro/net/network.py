"""Network-level abstractions: APs, clients and links sharing a space.

Figure 2's scenario: two co-located networks (AP 1 - Client 1 and
AP 2 - Client 2) whose communication *and* interference channels all pass
through the same programmable environment.  This module names those pieces
so the interference and harmonization analyses can talk about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..em.geometry import Point
from ..sdr.device import SdrDevice

__all__ = ["Node", "WirelessLink", "NetworkPair"]


@dataclass(frozen=True)
class Node:
    """A network endpoint (AP or client) backed by an SDR device."""

    device: SdrDevice
    role: str = "client"  # "ap" or "client"
    network_id: int = 0

    def __post_init__(self) -> None:
        if self.role not in ("ap", "client"):
            raise ValueError(f"role must be 'ap' or 'client', got {self.role}")

    @property
    def name(self) -> str:
        return self.device.name

    @property
    def position(self) -> Point:
        return self.device.position


@dataclass(frozen=True)
class WirelessLink:
    """A directed transmitter -> receiver pair.

    ``is_interference`` marks cross-network (bystander) links, the bottom
    half of Figure 2.
    """

    tx: Node
    rx: Node

    @property
    def name(self) -> str:
        return f"{self.tx.name}->{self.rx.name}"

    @property
    def is_interference(self) -> bool:
        return self.tx.network_id != self.rx.network_id


@dataclass(frozen=True)
class NetworkPair:
    """Two co-located single-link networks (the Figure 2 topology).

    Attributes
    ----------
    ap1, client1:
        Network 1's endpoints.
    ap2, client2:
        Network 2's endpoints.
    """

    ap1: Node
    client1: Node
    ap2: Node
    client2: Node

    def __post_init__(self) -> None:
        if self.ap1.network_id != self.client1.network_id:
            raise ValueError("ap1 and client1 must share a network_id")
        if self.ap2.network_id != self.client2.network_id:
            raise ValueError("ap2 and client2 must share a network_id")
        if self.ap1.network_id == self.ap2.network_id:
            raise ValueError("the two networks must have distinct network_ids")

    def communication_links(self) -> tuple[WirelessLink, WirelessLink]:
        """H11 (AP1->C1) and H22 (AP2->C2)."""
        return (
            WirelessLink(tx=self.ap1, rx=self.client1),
            WirelessLink(tx=self.ap2, rx=self.client2),
        )

    def interference_links(self) -> tuple[WirelessLink, WirelessLink]:
        """H21 (AP1->C2) and H12 (AP2->C1)."""
        return (
            WirelessLink(tx=self.ap1, rx=self.client2),
            WirelessLink(tx=self.ap2, rx=self.client1),
        )

    def all_links(self) -> Iterator[WirelessLink]:
        yield from self.communication_links()
        yield from self.interference_links()
