"""Unified observability: metrics registry, span tracing, run records.

See DESIGN.md "Observability" for the instrument naming scheme, span
hierarchy, and run-record schema.  Quick tour:

* :func:`global_registry` — process-local counters/gauges/histograms that
  every subsystem (``em.trace_cache``, ``em.raytracer``, ``core.basis``,
  ``control.protocol``, ``core.controller``) registers instruments in.
* :func:`global_tracer` — context-manager spans for coarse phases.
* :class:`RunRecorder` — assembles one schema-validated JSONL run record
  per experiment, merging parent and worker observability deltas.
* :func:`set_enabled` / ``REPRO_OBS=0`` — global on/off switch; results
  are bit-identical either way (instruments never touch random streams).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
    enabled,
    global_registry,
    log_bin_edges,
    merge_snapshots,
    reset_metrics,
    set_enabled,
)
from .records import (
    SCHEMA_VERSION,
    ObsSample,
    RunRecorder,
    append_record,
    current_sample,
    merge_samples,
    read_records,
    run_metadata,
    validate_record,
)
from .tracing import (
    SpanRecord,
    SpanSummary,
    SpanTracer,
    global_tracer,
    merge_span_summaries,
    reset_tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricsRegistry",
    "MetricsSnapshot",
    "enabled",
    "global_registry",
    "log_bin_edges",
    "merge_snapshots",
    "reset_metrics",
    "set_enabled",
    "SpanRecord",
    "SpanSummary",
    "SpanTracer",
    "global_tracer",
    "merge_span_summaries",
    "reset_tracing",
    "SCHEMA_VERSION",
    "ObsSample",
    "RunRecorder",
    "append_record",
    "current_sample",
    "merge_samples",
    "read_records",
    "run_metadata",
    "validate_record",
]


def reset_observability() -> None:
    """Zero the global registry and tracer (tests/benchmarks)."""
    reset_metrics()
    reset_tracing()


__all__.append("reset_observability")
