"""Unified observability: metrics registry, span tracing, run records.

See DESIGN.md "Observability" for the instrument naming scheme, span
hierarchy, and run-record schema.  Quick tour:

* :func:`global_registry` — process-local counters/gauges/histograms that
  every subsystem (``em.trace_cache``, ``em.raytracer``, ``core.basis``,
  ``control.protocol``, ``core.controller``) registers instruments in.
* :func:`global_tracer` — context-manager spans for coarse phases.
* :class:`RunRecorder` — assembles one schema-validated JSONL run record
  per experiment, merging parent and worker observability deltas.
* :func:`set_enabled` / ``REPRO_OBS=0`` — global on/off switch; results
  are bit-identical either way (instruments never touch random streams).
"""

from .context import (
    RequestCapture,
    RequestContext,
    RequestTraceStore,
    bind_context,
    current_context,
    emit_request_span,
    new_request_id,
    request_span,
    stitch_timeline,
)
from .metrics import (
    Counter,
    CounterHandle,
    Gauge,
    GaugeHandle,
    Histogram,
    HistogramHandle,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
    counter_handle,
    enabled,
    gauge_handle,
    global_registry,
    histogram_handle,
    log_bin_edges,
    merge_snapshots,
    monotonic_s,
    reset_metrics,
    set_enabled,
)
from .records import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ObsSample,
    RunRecorder,
    append_record,
    current_sample,
    merge_samples,
    read_records,
    run_metadata,
    validate_record,
)
from .tracing import (
    SpanRecord,
    SpanSummary,
    SpanTracer,
    global_tracer,
    merge_span_summaries,
    new_span_id,
    reset_tracing,
)

__all__ = [
    "Counter",
    "CounterHandle",
    "Gauge",
    "GaugeHandle",
    "Histogram",
    "HistogramHandle",
    "HistogramState",
    "MetricsRegistry",
    "MetricsSnapshot",
    "counter_handle",
    "enabled",
    "gauge_handle",
    "global_registry",
    "histogram_handle",
    "log_bin_edges",
    "merge_snapshots",
    "monotonic_s",
    "reset_metrics",
    "set_enabled",
    "SpanRecord",
    "SpanSummary",
    "SpanTracer",
    "global_tracer",
    "merge_span_summaries",
    "new_span_id",
    "reset_tracing",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "ObsSample",
    "RunRecorder",
    "append_record",
    "current_sample",
    "merge_samples",
    "read_records",
    "run_metadata",
    "validate_record",
    "RequestCapture",
    "RequestContext",
    "RequestTraceStore",
    "bind_context",
    "current_context",
    "emit_request_span",
    "new_request_id",
    "request_span",
    "stitch_timeline",
]


def reset_observability(clear: bool = False) -> None:
    """Zero the global registry and tracer (tests/benchmarks).

    ``clear=True`` replaces both objects outright, dropping instruments
    and sinks registered since import — full isolation between test
    phases.  Library modules hold stale-proof handles
    (:func:`counter_handle` and friends), so their recording continues
    seamlessly into the fresh registry.
    """
    reset_metrics(clear=clear)
    reset_tracing(clear=clear)


__all__.append("reset_observability")
