"""Request-scoped tracing: contexts, request spans, cross-process stitching.

The classic :class:`~repro.obs.tracing.SpanTracer` spans pair open/close
through a per-process name stack — correct for straight-line phases
(a geometry trace, a sweep), but wrong the moment two requests interleave
across ``await`` points inside the asyncio serving layer.  This module is
the request-scoped layer on top:

* a :class:`RequestContext` (request id + the id of the currently open
  span) rides a :mod:`contextvars` variable, so every asyncio task —
  and, via :func:`RequestContext.to_wire`, every process-pool worker —
  knows which request it is working for;
* :func:`request_span` opens a span *under that context*: it allocates a
  process-unique span id, re-binds the context so children attach to it,
  and emits a stitched :class:`~repro.obs.tracing.SpanRecord`
  (``span_id``/``parent_id``/``request_id``/``pid``) into the global
  tracer — no shared name stack, so interleaving cannot mis-parent;
* :class:`RequestTraceStore` collects stitched records per request id (a
  bounded, eviction-oldest store the service drains into run records);
* :class:`RequestCapture` grabs one request's records in a worker so the
  pool can ship them back to the event-loop process for merging.

A request's full serve→batch→evaluate/search timeline reconstructs from
the merged records by following ``parent_id`` chains — the ids embed the
minting pid, so links remain unambiguous across processes even though
``start_s`` clocks do not compare across them.

Determinism contract: ids come from per-process monotonic counters (no
entropy), clock reads happen only when observability is enabled, and no
code in this module touches a random stream — results are bit-identical
with request tracing on or off.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import enabled
from .tracing import SpanRecord, global_tracer, new_span_id

__all__ = [
    "RequestCapture",
    "RequestContext",
    "RequestTraceStore",
    "bind_context",
    "current_context",
    "new_request_id",
    "request_span",
]


@dataclass(frozen=True)
class RequestContext:
    """Which request the current code is working for.

    ``parent_span_id`` is the id of the innermost open request span —
    the span a :func:`request_span` opened next will attach to (empty
    for the root).  Contexts are immutable values: opening a child span
    *re-binds* the context variable rather than mutating anything, which
    is what makes propagation across asyncio tasks and pickled worker
    payloads safe.
    """

    request_id: str
    parent_span_id: str = ""

    def to_wire(self) -> Tuple[str, str]:
        """Picklable form shipped to pool workers."""
        return (self.request_id, self.parent_span_id)

    @classmethod
    def from_wire(cls, wire: Tuple[str, str]) -> "RequestContext":
        request_id, parent_span_id = wire
        return cls(request_id=str(request_id), parent_span_id=str(parent_span_id))


_CONTEXT: ContextVar[Optional[RequestContext]] = ContextVar(
    "repro_obs_request_context", default=None
)

#: Per-process monotonic request-id sequence (no entropy — RPL003).
_REQUEST_SEQ = 0


def new_request_id() -> str:
    """Mint a process-unique request id (``"r<pid hex>-<seq hex>"``)."""
    global _REQUEST_SEQ
    _REQUEST_SEQ += 1
    return f"r{os.getpid():x}-{_REQUEST_SEQ:x}"


def current_context() -> Optional[RequestContext]:
    """The active request context, or ``None`` outside any request."""
    return _CONTEXT.get()


@contextmanager
def bind_context(context: Optional[RequestContext]):
    """Bind ``context`` as the active request context for the block."""
    token = _CONTEXT.set(context)
    try:
        yield context
    finally:
        _CONTEXT.reset(token)


class _RequestSpan:
    """Context manager for one request-scoped span.

    Hand-rolled like ``_SpanContext``: two clock reads plus a contextvar
    set/reset per span.  On exit it emits a stitched record through
    :meth:`SpanTracer.emit` — never the tracer's name stack.
    """

    __slots__ = ("_name", "_context", "_span_id", "_token", "_start")

    def __init__(self, name: str, context: RequestContext) -> None:
        self._name = name
        self._context = context
        self._span_id = new_span_id()

    def __enter__(self) -> "_RequestSpan":
        self._token = _CONTEXT.set(
            replace(self._context, parent_span_id=self._span_id)
        )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        _CONTEXT.reset(self._token)
        tracer = global_tracer()
        context = self._context
        tracer.emit(
            SpanRecord(
                name=self._name,
                start_s=self._start - tracer.epoch,
                duration_s=end - self._start,
                parent=None,
                depth=0,
                span_id=self._span_id,
                parent_id=context.parent_span_id or None,
                request_id=context.request_id,
                pid=_pid(),
            )
        )
        return None


class _NullRequestSpan:
    """No-op request span: zero clock reads when disabled or contextless."""

    __slots__ = ()

    def __enter__(self) -> "_NullRequestSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_REQUEST_SPAN = _NullRequestSpan()


def _pid() -> int:
    return os.getpid()


def request_span(name: str, context: Optional[RequestContext] = None):
    """A context manager timing one request-scoped phase.

    Uses ``context`` when given, else the bound :func:`current_context`.
    Without a context, or with observability disabled, returns a shared
    no-op (zero clock reads) — request tracing costs nothing on paths
    that are not serving a traced request.
    """
    if not enabled():
        return _NULL_REQUEST_SPAN
    if context is None:
        context = _CONTEXT.get()
        if context is None:
            return _NULL_REQUEST_SPAN
    return _RequestSpan(name, context)


def emit_request_span(
    name: str,
    context: RequestContext,
    start_monotonic_s: float,
    end_monotonic_s: float,
    span_id: Optional[str] = None,
    parent_span_id: Optional[str] = None,
) -> Optional[str]:
    """Emit one stitched span from explicit monotonic timestamps.

    For phases whose start and end happen in *different* call frames
    (queue wait: stamped at submit, closed at batch flush) where a
    context manager cannot bracket the phase.  Returns the emitted span
    id, or ``None`` when observability is disabled.  ``parent_span_id``
    overrides the context's parent (e.g. to hang several members'
    records off one shared batch span).
    """
    if not enabled():
        return None
    tracer = global_tracer()
    sid = span_id if span_id is not None else new_span_id()
    parent = (
        parent_span_id
        if parent_span_id is not None
        else (context.parent_span_id or None)
    )
    tracer.emit(
        SpanRecord(
            name=name,
            start_s=start_monotonic_s - tracer.epoch,
            duration_s=end_monotonic_s - start_monotonic_s,
            parent=None,
            depth=0,
            span_id=sid,
            parent_id=parent,
            request_id=context.request_id,
            pid=_pid(),
        )
    )
    return sid


__all__.append("emit_request_span")


class RequestTraceStore:
    """Bounded per-request collection of stitched span records.

    The serving layer attaches one of these as a tracer sink for its
    lifetime: every request-scoped span emitted in-process lands here,
    and worker-captured records are merged in explicitly via
    :meth:`extend`.  At most ``capacity`` distinct requests are kept;
    when full, the *oldest* request's records are evicted wholesale (a
    live service keeps the most recent timelines, which is what an
    operator tailing the stream wants).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._traces: "OrderedDict[str, List[SpanRecord]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._traces)

    def sink(self, record: SpanRecord) -> None:
        """Tracer-sink entry: keep request-scoped records only."""
        if record.request_id is None:
            return
        self.add(record)

    def add(self, record: SpanRecord) -> None:
        if record.request_id is None:
            return
        records = self._traces.get(record.request_id)
        if records is None:
            records = self._traces[record.request_id] = []
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
        records.append(record)

    def extend(self, records: Iterable[SpanRecord]) -> None:
        """Merge records captured elsewhere (workers) into the store."""
        for record in records:
            self.add(record)

    def traces(self) -> Dict[str, Tuple[SpanRecord, ...]]:
        """Current request timelines, insertion-ordered."""
        return {
            request_id: tuple(records)
            for request_id, records in self._traces.items()
        }

    def drain(self) -> Dict[str, Tuple[SpanRecord, ...]]:
        """Return and clear the stored timelines."""
        traces = self.traces()
        self._traces.clear()
        return traces


class RequestCapture:
    """Capture one request's stitched spans within a ``with`` block.

    Worker processes wrap their task in one of these so the pool result
    can carry the worker-side timeline back to the event-loop process::

        with bind_context(ctx), RequestCapture(ctx.request_id) as capture:
            result = fn(*args)
        return result, [r.as_dict() for r in capture.records]
    """

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        self.records: List[SpanRecord] = []

    def _sink(self, record: SpanRecord) -> None:
        if record.request_id == self.request_id:
            self.records.append(record)

    def __enter__(self) -> "RequestCapture":
        global_tracer().add_sink(self._sink)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global_tracer().remove_sink(self._sink)
        return None


def stitch_timeline(
    records: Iterable[SpanRecord],
) -> List[SpanRecord]:
    """Order one request's records into a parent-before-child timeline.

    Pure structural reconstruction: roots (no ``parent_id``, or parent
    not present in the set) come first, children follow their parents
    depth-first in emission order.  It deliberately never compares
    ``start_s`` across records — records from different processes have
    different epochs, and the ``parent_id`` chain is the only
    cross-process ground truth.
    """
    pool = list(records)
    by_parent: Dict[Optional[str], List[SpanRecord]] = {}
    ids = {record.span_id for record in pool if record.span_id}
    for record in pool:
        parent = record.parent_id if record.parent_id in ids else None
        by_parent.setdefault(parent, []).append(record)
    ordered: List[SpanRecord] = []
    visited: set = set()

    def _walk(parent: Optional[str]) -> None:
        for record in by_parent.get(parent, []):
            ordered.append(record)
            if record.span_id and record.span_id not in visited:
                visited.add(record.span_id)
                _walk(record.span_id)

    _walk(None)
    # Records whose parent chain is cyclic/broken still surface at the end.
    if len(ordered) < len(pool):
        seen = {id(record) for record in ordered}
        ordered.extend(r for r in pool if id(r) not in seen)
    return ordered


__all__.append("stitch_timeline")
