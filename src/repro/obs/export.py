"""Telemetry export: OpenMetrics text rendering and JSONL snapshot streams.

Two export surfaces sit on top of the metrics registry:

* :func:`render_openmetrics` — a point-in-time OpenMetrics-style text
  exposition of a :class:`~repro.obs.metrics.MetricsSnapshot` (counters,
  gauges, cumulative histogram buckets).  It is a pure renderer: feed it
  any snapshot (live registry, run record, merged workers) and diff the
  text in tests.
* :class:`TelemetryStreamer` — a periodic JSONL stream of snapshot
  *samples* (cumulative counters/gauges plus per-histogram quantile
  digests).  The serving layer appends one line per interval;
  ``repro top`` tails the file and renders rates from consecutive
  samples via :func:`derive_rates`.

Quantiles come from :func:`histogram_quantile`, which interpolates inside
the fixed log-spaced bins — deterministic for a given bin state, accurate
to bin resolution (3 bins/decade by default, so within ~2.2x worst case;
use finer ``bins_per_decade`` where SLOs need tighter estimates).

Like everything in ``repro/obs/``, nothing here touches the wall clock or
any random stream: timestamps are monotonic uptimes, and rendering a
snapshot is a pure function of its contents.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, TextIO

from .metrics import (
    HistogramState,
    MetricsSnapshot,
    global_registry,
    monotonic_s,
)

__all__ = [
    "TelemetryStreamer",
    "derive_rates",
    "histogram_quantile",
    "read_telemetry",
    "render_openmetrics",
    "summarize_histogram",
]

#: Quantiles carried in every telemetry histogram digest.
DIGEST_QUANTILES = (0.5, 0.95, 0.99)


def histogram_quantile(state: HistogramState, q: float) -> float:
    """Estimate the ``q`` quantile of a log-binned histogram.

    Walks the cumulative bin counts to the bin containing rank
    ``q * count`` and interpolates linearly inside it.  The underflow bin
    is bounded below by the observed minimum and the overflow bin above
    by the observed maximum, so estimates never leave the observed value
    range.  Returns ``nan`` for an empty histogram.  Deterministic: same
    bin state, same estimate, always.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if state.count <= 0:
        return math.nan
    rank = q * state.count
    cumulative = 0
    for index, bin_count in enumerate(state.counts):
        cumulative += bin_count
        if bin_count <= 0 or cumulative < rank:
            continue
        if index == 0:
            lo, hi = state.min, state.edges[0]
        elif index == len(state.edges):
            lo, hi = state.edges[-1], state.max
        else:
            lo, hi = state.edges[index - 1], state.edges[index]
        lo = max(lo, state.min)
        hi = min(hi, state.max)
        if hi <= lo:
            return lo
        fraction = (rank - (cumulative - bin_count)) / bin_count
        return lo + fraction * (hi - lo)
    return state.max


def summarize_histogram(
    state: HistogramState, quantiles: Iterable[float] = DIGEST_QUANTILES
) -> dict:
    """The telemetry digest of one histogram (count/sum/extrema/quantiles)."""
    digest = {
        "count": state.count,
        "sum": state.sum,
        "min": state.min if state.count else None,
        "max": state.max if state.count else None,
    }
    for q in quantiles:
        value = histogram_quantile(state, q)
        digest[f"p{q * 100:g}"] = None if math.isnan(value) else value
    return digest


def _metric_name(name: str) -> str:
    """Dotted instrument name -> OpenMetrics metric name."""
    return name.replace(".", "_")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return format(float(value), ".10g")


def render_openmetrics(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot as OpenMetrics-style text exposition.

    Counters become ``<name>_total``, gauges plain samples, histograms
    cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``.
    Bucket boundaries are the registered log-spaced edges; the underflow
    bin folds into the first bucket and the overflow bin into ``+Inf``
    (bin membership is ``edge <= value < next_edge``, so ``le`` labels
    are exact up to values landing precisely on an edge).  Families are
    emitted in sorted name order — the output is canonical for a given
    snapshot and safe to diff in tests.
    """
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        state = snapshot.histograms[name]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for index, edge in enumerate(state.edges):
            cumulative += state.counts[index]
            lines.append(
                f'{metric}_bucket{{le="{_format_value(edge)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {state.count}')
        lines.append(f"{metric}_sum {_format_value(state.sum)}")
        lines.append(f"{metric}_count {state.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class TelemetryStreamer:
    """Append point-in-time snapshot samples to a JSONL telemetry stream.

    Each :meth:`write_sample` appends one JSON object::

        {"seq": 3, "uptime_s": 1.52, "counters": {...}, "gauges": {...},
         "histograms": {"serve.evaluate.request_latency_s":
             {"count": 41, "sum": 0.8, "min": ..., "max": ...,
              "p50": ..., "p95": ..., "p99": ...}}}

    Counters and gauges are *cumulative* — consumers (``repro top``,
    :func:`derive_rates`) difference consecutive samples to get rates, so
    a reader joining mid-stream needs only two lines to show activity.
    ``uptime_s`` is monotonic time since the streamer was built (never
    the wall clock).  The file is opened in append mode and flushed per
    sample so a tailing reader sees whole lines.
    """

    def __init__(self, path: str, registry=None) -> None:
        self.path = str(path)
        self._registry = registry
        self._seq = 0
        self._epoch = monotonic_s()
        self._file: Optional[TextIO] = None

    def _snapshot(self) -> MetricsSnapshot:
        registry = self._registry if self._registry is not None else global_registry()
        return registry.snapshot()

    def sample(self) -> dict:
        """Build one sample dict (without writing it)."""
        snapshot = self._snapshot()
        sample = {
            "seq": self._seq,
            "uptime_s": monotonic_s() - self._epoch,
            "counters": dict(sorted(snapshot.counters.items())),
            "gauges": dict(sorted(snapshot.gauges.items())),
            "histograms": {
                name: summarize_histogram(state)
                for name, state in sorted(snapshot.histograms.items())
            },
        }
        self._seq += 1
        return sample

    def write_sample(self) -> dict:
        """Append one sample line to the stream; returns the sample."""
        sample = self.sample()
        if self._file is None:
            self._file = open(self.path, "a", encoding="utf-8")
        json.dump(sample, self._file, sort_keys=True)
        self._file.write("\n")
        self._file.flush()
        return sample

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TelemetryStreamer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        return None


def read_telemetry(path: str) -> List[dict]:
    """Read every complete sample from a telemetry JSONL stream.

    A trailing partial line (a sample mid-write by a live streamer) is
    skipped rather than raised on, so tailing readers never crash on a
    torn write.
    """
    samples: List[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    sample = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(sample, dict):
                    samples.append(sample)
    except FileNotFoundError:
        return []
    return samples


def _counter_delta(prev: Mapping, curr: Mapping, name: str) -> float:
    return float(curr.get(name, 0)) - float(prev.get(name, 0))


def derive_rates(previous: Optional[dict], current: dict) -> Dict[str, float]:
    """Serving rates from two consecutive telemetry samples.

    Returns a flat dict of derived quantities ``repro top`` renders:
    ``requests_per_s``, ``rejections_per_s``, ``batch_efficiency``
    (requests per flushed batch), ``session_hit_rate``, ``queue_depth``
    and ``sessions``.  With no previous sample (reader just joined),
    rates are computed against an all-zero baseline at uptime zero —
    i.e. run-lifetime averages.
    """
    prev_counters: Mapping = {}
    prev_uptime = 0.0
    if previous is not None:
        prev_counters = previous.get("counters", {})
        prev_uptime = float(previous.get("uptime_s", 0.0))
    counters = current.get("counters", {})
    gauges = current.get("gauges", {})
    elapsed = float(current.get("uptime_s", 0.0)) - prev_uptime
    requests = _counter_delta(prev_counters, counters, "serve.requests")
    rejections = _counter_delta(prev_counters, counters, "serve.rejections")
    batches = _counter_delta(prev_counters, counters, "serve.batches")
    batched = _counter_delta(prev_counters, counters, "serve.batched_requests")
    hits = _counter_delta(prev_counters, counters, "serve.session_hits")
    misses = _counter_delta(prev_counters, counters, "serve.session_misses")
    lookups = hits + misses
    return {
        "elapsed_s": elapsed,
        "requests_per_s": requests / elapsed if elapsed > 0 else 0.0,
        "rejections_per_s": rejections / elapsed if elapsed > 0 else 0.0,
        "batch_efficiency": batched / batches if batches > 0 else 0.0,
        "session_hit_rate": hits / lookups if lookups > 0 else 0.0,
        "queue_depth": float(gauges.get("serve.pending", 0.0)),
        "sessions": float(gauges.get("serve.sessions", 0.0)),
    }
